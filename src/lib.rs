//! # papi-repro — umbrella crate
//!
//! Reproduction of *"Memory Traffic and Complete Application Profiling with
//! PAPI Multi-Component Measurements"* (Barry, Jagode, Danalis, Dongarra) on
//! a fully simulated POWER9 / Summit software stack.
//!
//! This crate re-exports the workspace's public API surface so that
//! examples, integration tests and downstream users can depend on a single
//! crate. See the README for a tour and `DESIGN.md` for the system
//! inventory.
//!
//! * [`arch`] — POWER9 machine descriptions (Summit / Tellico).
//! * [`memsim`] — the memory-hierarchy + nest-counter simulator.
//! * [`pcp`] — the simulated Performance Co-Pilot daemon and client.
//! * [`wire`] — the networked PMCD: binary PDU protocol, multi-client TCP
//!   server, `WireClient` transport, wall-clock sampling scheduler.
//! * [`perfuncore`] — direct (privileged) nest counter access.
//! * [`papi`] — the PAPI-style multi-component middleware (the paper's
//!   central artifact).
//! * [`kernels`] — GEMV / capped GEMV / GEMM benchmarks and their analytic
//!   traffic models.
//! * [`fft3d`] — the distributed, GPU-accelerated 3D-FFT mini-app.
//! * [`qmc`] — the QMCPACK-like Monte Carlo mini-app.
//! * [`nvml`] / [`ib`] — GPU power and InfiniBand substrates.
//! * [`ranks`] — the MPI-like distributed execution substrate.
//! * [`profiling`] — the multi-component timeline profiler (Figs. 11–12).
//! * [`refute`] — the CounterPoint-style model-refutation harness.

pub use blas_kernels as kernels;
pub use fft3d;
pub use ib_sim as ib;
pub use nvml_sim as nvml;
pub use p9_arch as arch;
pub use p9_memsim as memsim;
pub use papi_profiling as profiling;
pub use papi_sim as papi;
pub use pcp_sim as pcp;
pub use pcp_wire as wire;
pub use perf_uncore_sim as perfuncore;
pub use qmc_mini as qmc;
pub use ranksim as ranks;
pub use refute;
