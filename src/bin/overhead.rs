//! Quantifies the observability layer's own cost, then decomposes the
//! direct-vs-wire fetch latency end to end — the `papi-validate` of the
//! self-instrumentation layer.
//!
//! Part 1 measures the tracer against its documented budget
//! (DESIGN.md §9): per-span recording cost must stay at or below
//! [`SPAN_BUDGET_NS`], and steady-state recording must not allocate
//! (checked with a counting global allocator). The process exits
//! nonzero on either violation, so CI can gate on it.
//!
//! Part 2 answers the paper's question about our own stack: how much
//! does the *indirection* cost? It times the same 16-metric nest fetch
//! through the in-process daemon and through the TCP wire, and (when
//! built with `--features obs`) decomposes the wire RTT *mechanically*:
//! every fetch PDU carries a trace id, the server echoes it in its
//! handling span, and [`obs::stitch::mean_critical_path`] splits the
//! stitched round trip into server fetch/dispatch, codec, and wire
//! shares that sum to the RTT exactly — no hand arithmetic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use p9_memsim::SimMachine;
use pcp_sim::{PcpContext, PmApi, Pmcd, PmcdConfig, Pmns};
use pcp_wire::{PmcdServer, WireClient, WireConfig};

/// DESIGN.md §9 budget: recording one span must cost at most this much
/// on top of an empty loop iteration.
const SPAN_BUDGET_NS: f64 = 50.0;

/// Spans per timed batch — half the ring, so the timed loop exercises
/// the push fast path rather than the saturated drop path.
const BATCH: usize = 4096;
const BATCHES: usize = 256;

/// Fetch round-trips per latency-decomposition run.
const FETCHES: usize = 2000;

struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn main() -> ExitCode {
    let mut pass = true;
    println!("# obs overhead report");

    // ------------------------------------------------------------------
    // Part 1: tracer cost against the budget.
    // ------------------------------------------------------------------
    // Startup: ring creation, registration, clock calibration. All
    // allocation is allowed to happen here, once.
    {
        let _warm = obs::span!("overhead.warmup"); // obs-ok: this binary measures the tracer
        obs::instant!("overhead.warmup_instant"); // obs-ok: this binary measures the tracer
    }
    obs::counter!("overhead.counter").inc();
    obs::histogram!("overhead.hist").record(1);
    let _ = obs::clock::calibration();
    drop(obs::drain());

    // Baseline: the same loop shape with no span.
    let mut base_ns = 0u128;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for i in 0..BATCH {
            std::hint::black_box(i);
        }
        base_ns += t0.elapsed().as_nanos();
    }

    let mut span_ns = 0u128;
    let mut steady_allocs = 0u64;
    for _ in 0..BATCHES {
        let a0 = ALLOC_CALLS.load(Ordering::SeqCst);
        let t0 = Instant::now();
        for i in 0..BATCH {
            let _span = obs::span!("overhead.span", i as u64); // obs-ok: the measured site
            std::hint::black_box(i);
        }
        span_ns += t0.elapsed().as_nanos();
        steady_allocs += ALLOC_CALLS.load(Ordering::SeqCst) - a0;
        // Drain outside the timed region so the ring never saturates.
        drop(obs::drain());
    }

    let total = (BATCHES * BATCH) as f64;
    let per_span = (span_ns.saturating_sub(base_ns)) as f64 / total;
    println!("spans recorded:            {}", BATCHES * BATCH);
    println!(
        "raw loop cost:             {:>8.2} ns/iter",
        span_ns as f64 / total
    );
    println!(
        "baseline loop cost:        {:>8.2} ns/iter",
        base_ns as f64 / total
    );
    println!(
        "per-span overhead:         {:>8.2} ns (budget {SPAN_BUDGET_NS} ns)",
        per_span
    );
    println!("steady-state allocations:  {steady_allocs}");

    if per_span > SPAN_BUDGET_NS {
        println!("FAIL: per-span overhead {per_span:.2} ns exceeds budget {SPAN_BUDGET_NS} ns");
        pass = false;
    } else {
        println!("PASS: per-span overhead within budget");
    }
    if steady_allocs > 0 {
        println!("FAIL: tracer allocated {steady_allocs} times after startup");
        pass = false;
    } else {
        println!("PASS: zero steady-state allocations");
    }

    // Metric primitives, for the record (no budget gate; they are a
    // single relaxed RMW each).
    let t0 = Instant::now();
    for i in 0..BATCHES * BATCH {
        obs::counter!("overhead.counter").inc();
        obs::histogram!("overhead.hist").record(i as u64);
    }
    println!(
        "counter+histogram record:  {:>8.2} ns/pair",
        t0.elapsed().as_nanos() as f64 / total
    );

    // ------------------------------------------------------------------
    // Part 2: direct vs wire fetch latency decomposition.
    // ------------------------------------------------------------------
    println!();
    println!("# fetch latency decomposition (16-metric nest batch)");

    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 11);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    // Zero modeled latency: this run times the real implementation, not
    // the simulated indirection model.
    let daemon = Pmcd::spawn_system(
        pmns.clone(),
        sockets.clone(),
        PmcdConfig {
            fetch_latency_s: 0.0,
            fetch_touch: false,
        },
    )
    .expect("spawn in-process daemon");
    let ctx = PcpContext::connect(daemon.handle(), None);
    let server =
        PmcdServer::bind_system("127.0.0.1:0", pmns.clone(), sockets, WireConfig::default())
            .expect("bind wire server");
    let wire = WireClient::connect(server.local_addr()).expect("connect wire client");

    let requests: Vec<_> = pmns
        .children("")
        .iter()
        .map(|n| {
            (
                pmns.lookup(n).expect("nest metric"),
                pmns.instance_of_socket(0),
            )
        })
        .collect();

    for _ in 0..50 {
        ctx.pm_fetch(&requests).expect("direct warmup");
        wire.pm_fetch(&requests).expect("wire warmup");
    }

    drop(obs::drain());
    let t0 = Instant::now();
    for _ in 0..FETCHES {
        ctx.pm_fetch(&requests).expect("direct fetch");
    }
    let direct_ns = t0.elapsed().as_nanos() as f64 / FETCHES as f64;
    let direct_events = obs::drain();

    let t0 = Instant::now();
    for _ in 0..FETCHES {
        wire.pm_fetch(&requests).expect("wire fetch");
    }
    let wire_ns = t0.elapsed().as_nanos() as f64 / FETCHES as f64;
    let wire_events = obs::drain();

    println!("direct in-process fetch:   {:>10.0} ns/fetch", direct_ns);
    println!("wire TCP fetch:            {:>10.0} ns/fetch", wire_ns);

    // Mechanical decomposition from trace-id-stitched spans: every
    // fetch PDU carried a trace id, the server echoed it, and both
    // sides' rings drained into `wire_events` — so the critical-path
    // analyzer splits the measured RTT with no hand arithmetic, and its
    // shares sum to the stitched RTT exactly (obs::stitch).
    match obs::stitch::mean_critical_path(&wire_events) {
        Some(mean) => {
            let stitched = obs::stitch::trace_ids(&wire_events).len();
            println!(
                "stitched round trips:      {stitched} of {FETCHES} ({} ns mean RTT)",
                mean.rtt_ns
            );
            for (component, ns) in &mean.components {
                println!("  {component:<24} {ns:>10} ns/fetch");
            }
            debug_assert_eq!(mean.total(), mean.rtt_ns);
            let daemon_spans = direct_events
                .iter()
                .filter(|e| e.label == "pmcd.fetch")
                .count();
            println!(
                "direct daemon fetch spans: {daemon_spans} (in-process daemon traced end to end)"
            );
        }
        None => {
            println!("  (build with --features obs to stitch the client/server critical path)");
        }
    }
    println!(
        "indirection ratio:         {:>10.2}x (wire / direct)",
        wire_ns / direct_ns.max(1.0)
    );

    if pass {
        println!();
        println!("PASS: obs overhead within budget, zero steady-state allocations");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
