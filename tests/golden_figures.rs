//! Golden-figure regression suite: every experiment of the catalog is
//! re-run in the mode its committed reference (`results/GOLDEN_<tag>.json`)
//! was recorded in, and the composed output is compared column-by-column.
//!
//! Text columns must match exactly. Numeric columns of the measurement
//! figures (fig2…fig12, ablation) are allowed a relative error of 1e-6 —
//! the model is deterministic, so this slack only covers float-formatting
//! differences, never physics drift. Regenerate the references with
//! `cargo run --release -p repro-bench --bin repro -- --quick --write-golden`
//! after an *intentional* model change, and say so in the commit.

use std::fs;
use std::path::PathBuf;

use obs::chrome::{parse_json, Json};
use repro_bench::runner::run_experiments;
use repro_bench::{experiments, Args, Mode};

/// Relative tolerance for numeric columns of measurement figures.
const NUMERIC_REL_EPS: f64 = 1e-6;

fn golden_path(tag: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join(format!("GOLDEN_{tag}.json"))
}

/// Read a committed golden reference: (recorded mode, recorded output).
fn read_golden(tag: &str) -> (Mode, String) {
    let path = golden_path(tag);
    let doc = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden reference {} ({e}); regenerate with \
             `repro --quick --write-golden`",
            path.display()
        )
    });
    let Json::Obj(fields) = parse_json(&doc).expect("golden reference is valid JSON") else {
        panic!("golden reference {} is not a JSON object", path.display());
    };
    let get = |key: &str| -> &str {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                Json::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .unwrap_or_else(|| panic!("golden reference has no string field '{key}'"))
    };
    let mode = match get("mode") {
        "quick" => Mode::Quick,
        "full" => Mode::Full,
        _ => Mode::Default,
    };
    (mode, get("output").to_owned())
}

/// Whether a tag's numeric columns get the measurement tolerance; all
/// other experiments (schematics, tables, listings) must match exactly.
fn is_measurement(tag: &str) -> bool {
    matches!(
        tag,
        "fig2"
            | "fig3"
            | "fig4"
            | "fig5"
            | "fig6"
            | "fig7"
            | "fig8"
            | "fig9"
            | "fig10"
            | "fig11"
            | "fig12"
            | "ablation"
    )
}

fn numeric_close(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= NUMERIC_REL_EPS * scale
}

/// Compare one output line token-wise. Tokens split on commas and
/// whitespace so both CSV rows and prose headers decompose the same way.
fn compare_line(tag: &str, lineno: usize, got: &str, want: &str) {
    let split = |s: &str| -> Vec<String> {
        s.split(|c: char| c == ',' || c.is_whitespace())
            .filter(|t| !t.is_empty())
            .map(str::to_owned)
            .collect()
    };
    let g = split(got);
    let w = split(want);
    assert_eq!(
        g.len(),
        w.len(),
        "{tag} line {lineno}: token count {} != {}\n  got:  {got}\n  want: {want}",
        g.len(),
        w.len()
    );
    for (gt, wt) in g.iter().zip(&w) {
        if gt == wt {
            continue;
        }
        let numeric = gt.parse::<f64>().ok().zip(wt.parse::<f64>().ok());
        match numeric {
            Some((gn, wn)) if is_measurement(tag) && numeric_close(gn, wn) => {}
            _ => panic!(
                "{tag} line {lineno}: column '{gt}' != golden '{wt}'\n  got:  {got}\n  want: {want}"
            ),
        }
    }
}

/// Re-run `tag` in its recorded mode (with a multi-worker pool, so this
/// also exercises the parallel path) and gate it against the golden.
/// A live [`obs::Monitor`] with the canonical threshold rules
/// (DESIGN.md §11) watches the whole run; a clean catalog execution
/// must never raise an alert.
fn check_golden(tag: &'static str) {
    let (mode, want) = read_golden(tag);
    let exp = experiments::build(tag, mode, &Args::default())
        .unwrap_or_else(|| panic!("unknown experiment tag {tag}"));
    let mut monitor = obs::Monitor::new(8, repro_bench::obsreport::canonical_rules());
    monitor.tick(1_000_000_000, &obs::registry().export());
    let report = run_experiments(vec![exp], 4);
    let final_export = obs::registry().export();
    monitor.tick(61_000_000_000, &final_export);
    assert!(
        monitor.alerts().is_empty(),
        "{tag}: derived rules fired on a golden run: {:?}",
        monitor.alerts()
    );
    // Whatever the run registered became live series (schematics may
    // register nothing), and every derived counter rate over the run
    // window is finite and non-negative.
    assert_eq!(
        monitor.store().len(),
        final_export.len(),
        "{tag}: live series lag the registry"
    );
    for (name, rate) in monitor.derived() {
        assert!(
            rate.is_finite() && rate >= 0.0,
            "{tag}: derived {name} = {rate}"
        );
    }
    let er = &report.experiments[0];
    assert!(
        er.errors.is_empty(),
        "{tag} reported point errors: {:?}",
        er.errors
    );
    let got = &er.output;
    let got_lines: Vec<&str> = got.lines().collect();
    let want_lines: Vec<&str> = want.lines().collect();
    assert_eq!(
        got_lines.len(),
        want_lines.len(),
        "{tag}: line count {} != golden {}",
        got_lines.len(),
        want_lines.len()
    );
    for (i, (g, w)) in got_lines.iter().zip(&want_lines).enumerate() {
        compare_line(tag, i + 1, g, w);
    }
}

macro_rules! golden {
    ($($name:ident => $tag:literal),* $(,)?) => {
        $(
            #[test]
            fn $name() {
                check_golden($tag);
            }
        )*
    };
}

golden! {
    golden_fig1 => "fig1",
    golden_fig2 => "fig2",
    golden_fig3 => "fig3",
    golden_fig4 => "fig4",
    golden_fig5 => "fig5",
    golden_fig6 => "fig6",
    golden_fig7 => "fig7",
    golden_fig8 => "fig8",
    golden_fig9 => "fig9",
    golden_fig10 => "fig10",
    golden_fig11 => "fig11",
    golden_fig12 => "fig12",
    golden_table1 => "table1",
    golden_table2 => "table2",
    golden_ablation => "ablation",
    golden_papi_avail => "papi_avail",
    golden_refute => "refute",
}

/// The committed golden set must cover the whole catalog — a new
/// experiment without a reference fails here, not silently.
#[test]
fn golden_set_is_complete() {
    for tag in experiments::TAGS {
        assert!(
            golden_path(tag).exists(),
            "no golden reference for {tag}; run `repro --quick --write-golden`"
        );
    }
}
