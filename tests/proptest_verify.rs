//! Property tests for the verification layer.
//!
//! Two families:
//!
//! 1. **Archive monotonicity** — [`Archive::counter_monotonic`] must accept
//!    every non-decreasing counter column and pinpoint the first dip in any
//!    column that goes backwards (a free-running hardware counter never
//!    does; a dip in an archive means the recorder is broken).
//! 2. **Counter conservation** (`--features verify`) — for arbitrary
//!    GEMM/GEMV/FFT-resort shapes, the per-channel MBA byte counters must
//!    exactly equal the shadow transaction ledger the `verify` feature
//!    keeps alongside the real accounting. `run_single`/`run_parallel`
//!    already assert this after every kernel; the explicit
//!    `verify_socket_conservation` calls here exercise the `Result` path
//!    the assertions are built on.

use proptest::prelude::*;

use papi_repro::pcp::{Archive, ArchiveRecord, InstanceId, MetricId};

/// An archive with one counter column built from per-step deltas.
fn cumulative_archive(deltas: &[u64]) -> Archive {
    let mut archive = Archive::new(vec![(MetricId(1), InstanceId(0))]);
    let mut total = 0u64;
    for (i, &d) in deltas.iter().enumerate() {
        total += d;
        archive.push(ArchiveRecord {
            time_s: i as f64,
            values: vec![total],
        });
    }
    archive
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any cumulative-sum column is accepted as monotone.
    #[test]
    fn monotone_counter_columns_pass(
        deltas in prop::collection::vec(0u64..1_000_000, 1..60)
    ) {
        prop_assert_eq!(cumulative_archive(&deltas).counter_monotonic(0), None);
    }

    /// Injecting a single dip anywhere is caught, and the reported pair
    /// names the first offending adjacent records.
    #[test]
    fn counter_dips_are_pinpointed(
        deltas in prop::collection::vec(1u64..1_000_000, 2..60),
        pos_seed in any::<u64>(),
    ) {
        let mut archive = cumulative_archive(&deltas);
        // Rebuild with a dip at record `dip` (> 0): its value drops below
        // the previous record's.
        let dip = 1 + (pos_seed as usize) % (deltas.len() - 1).max(1);
        let mut records: Vec<ArchiveRecord> = archive.records().to_vec();
        records[dip].values[0] = records[dip - 1].values[0] - 1;
        // Re-monotonize everything after the dip so the *first* offending
        // pair is unambiguous.
        for i in dip + 1..records.len() {
            let prev = records[i - 1].values[0];
            records[i].values[0] = records[i].values[0].max(prev);
        }
        archive = Archive::new(archive.metrics().to_vec());
        for r in records {
            archive.push(r);
        }
        prop_assert_eq!(archive.counter_monotonic(0), Some((dip - 1, dip)));
    }
}

#[cfg(feature = "verify")]
mod conservation {
    use super::*;
    use papi_repro::arch::Machine;
    use papi_repro::fft3d::{ResortTrace, S2pf};
    use papi_repro::kernels::{CappedGemvTrace, GemmTrace};
    use papi_repro::memsim::SimMachine;

    /// The exact GEMM sizes the transport-equivalence tests run
    /// (`tests/pcp_vs_direct.rs`), now also checked for conservation.
    #[test]
    fn pcp_vs_direct_gemm_sizes_conserve() {
        for (n, seed) in [(160u64, 29), (192, 17), (512, 23)] {
            let mut m = SimMachine::quiet(Machine::tellico(), seed);
            let gemm = GemmTrace::allocate(&mut m, n);
            m.run_single(0, |core| gemm.run(core));
            m.verify_socket_conservation(0)
                .unwrap_or_else(|e| panic!("gemm n={n}: {e}"));
        }
    }

    proptest! {
        // The kernels dominate runtime; fewer, bigger cases.
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Square GEMM of arbitrary size conserves, with and without
        /// background noise traffic.
        #[test]
        fn gemm_shapes_conserve(n in 16u64..160, seed in 0u64..1000, noisy in any::<bool>()) {
            let mut m = if noisy {
                SimMachine::tellico(seed)
            } else {
                SimMachine::quiet(Machine::tellico(), seed)
            };
            let gemm = GemmTrace::allocate(&mut m, n);
            m.run_single(0, |core| gemm.run(core));
            prop_assert!(m.verify_socket_conservation(0).is_ok());
        }

        /// Capped GEMV of arbitrary aspect ratio conserves.
        #[test]
        fn gemv_shapes_conserve(rows in 64u64..2048, cols in 16u64..256, seed in 0u64..1000) {
            let mut m = SimMachine::quiet(Machine::tellico(), seed);
            let gemv = CappedGemvTrace::allocate(&mut m, rows, cols);
            m.run_single(0, |core| gemv.run(core));
            prop_assert!(m.verify_socket_conservation(0).is_ok());
        }

        /// The FFT's S2PF resort phase conserves for arbitrary process
        /// grids (n must divide evenly by both grid extents).
        #[test]
        fn fft_resort_shapes_conserve(
            k in 1usize..5,
            r_exp in 0u32..3,
            c_exp in 0u32..3,
            seed in 0u64..1000,
        ) {
            let (r, c) = (1usize << r_exp, 1usize << c_exp);
            let n = k * r * c * 4;
            let mut m = SimMachine::quiet(Machine::tellico(), seed);
            let s2pf = S2pf::for_grid(&mut m, n, r, c);
            m.run_single(0, |core| s2pf.run(core));
            prop_assert!(m.verify_socket_conservation(0).is_ok());
        }
    }
}
