//! Malformed-PDU storm against a live daemon (robustness satellite):
//! hostile clients flood the PMCD with every class of garbage frame the
//! codec rejects — bad magic, unknown version, unknown type, hostile
//! declared length, undecodable payload, truncated frame — while a
//! concurrent scraper keeps reading the exposition over both transports
//! (PDU `Exposition` and the HTTP sidecar). Required behaviour:
//!
//! * no worker panics and no hostile connection wedges the pool;
//! * every scrape captured mid-storm parses and is byte-identical to the
//!   quiescent render outside the operational counters that legitimately
//!   move (`pmcd.pdu.*`, client gauges, queue depth);
//! * every rejected frame is counted — `pmcd.pdu.error` grows by exactly
//!   the number of malformed frames sent, and the count is visible
//!   through the scrape itself;
//! * a valid client's nest-counter fetch is unperturbed by the storm.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use obs::openmetrics::{parse, strip_timestamp, Value};
use papi_repro::arch::Machine;
use papi_repro::memsim::SimMachine;
use papi_repro::pcp::{PmApi, Pmns};
use papi_repro::wire::pdu::{Pdu, HEADER_LEN};
use papi_repro::wire::{PmcdServer, ScrapeListener, WireClient, WireConfig};

const HOSTILE_THREADS: usize = 3;
const ROUNDS_PER_THREAD: usize = 8;

/// One representative of every malformed-frame class the codec rejects.
/// Each is a mangling of a perfectly valid `Lookup` frame, so the only
/// thing wrong with a frame is the one field under test.
fn mangled_frames(max_payload: u32) -> Vec<Vec<u8>> {
    let valid = Pdu::Lookup {
        name: "perfevent".into(),
    }
    .encode();
    assert!(valid.len() > HEADER_LEN + 3);

    let mut bad_magic = valid.clone();
    bad_magic[0] = 0xde;
    bad_magic[1] = 0xad;

    let mut bad_version = valid.clone();
    bad_version[2] = 0x7f;

    let mut bad_type = valid.clone();
    bad_type[3] = 0xee;

    let mut oversized = valid.clone();
    oversized[4..8].copy_from_slice(&(max_payload + 1).to_be_bytes());

    // Valid header, undecodable payload: the declared length is honest
    // but the string length field inside points past the end.
    let mut garbage_payload = valid.clone();
    for b in &mut garbage_payload[HEADER_LEN..] {
        *b = 0xff;
    }

    // Valid header, payload cut short; the connection then drops, so the
    // server sees EOF mid-frame.
    let truncated = valid[..valid.len() - 3].to_vec();

    vec![
        bad_magic,
        bad_version,
        bad_type,
        oversized,
        garbage_payload,
        truncated,
    ]
}

/// Deliver one hostile frame: connect, write, half-close so the server
/// never stalls waiting for more, then drain whatever reply it sends
/// (an `Error{BadPdu}` frame) until the daemon hangs up.
fn hostile_hit(addr: SocketAddr, frame: &[u8]) {
    let mut stream = TcpStream::connect(addr).expect("hostile connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    // The daemon may reject and close before the write completes; a
    // broken pipe here is the server doing its job.
    let _ = stream.write_all(frame);
    let _ = stream.shutdown(Shutdown::Write);
    let mut sink = [0u8; 256];
    loop {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn http_scrape(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("scrape connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: storm\r\nConnection: close\r\n\r\n")
        .expect("scrape request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("scrape read");
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    response
        .split_once("\r\n\r\n")
        .expect("http body")
        .1
        .to_string()
}

/// Counters that legitimately move while a storm and a scraper run; every
/// other line of the exposition must stay byte-identical.
const MOVING: &[&str] = &[
    "pmcd_pdu_in",
    "pmcd_pdu_out",
    "pmcd_pdu_error",
    "pmcd_client_current",
    "pmcd_client_total",
    "pmcd_queue_depth",
    "pmcd_obs_wire_scrape_requests",
];

/// The storm-invariant portion of an exposition document, after proving
/// the whole document still parses as OpenMetrics.
fn quiescent_view(text: &str) -> String {
    parse(text).expect("exposition must parse even mid-storm");
    strip_timestamp(text)
        .lines()
        .filter(|l| {
            // Counter sample lines carry the `_total` render suffix that
            // their `# TYPE` lines do not; match either form.
            let name = l
                .trim_start_matches("# TYPE ")
                .split(['{', ' '])
                .next()
                .unwrap_or("");
            let bare = name.strip_suffix("_total").unwrap_or(name);
            !MOVING.contains(&name) && !MOVING.contains(&bare)
        })
        .map(|l| format!("{l}\n"))
        .collect()
}

fn int_sample(text: &str, name: &str) -> u64 {
    let doc = parse(text).expect("exposition parses");
    match doc
        .samples
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no sample named {name}"))
        .value
    {
        Value::Int(v) => v,
        Value::Float(f) => panic!("{name} rendered as float {f}"),
    }
}

#[test]
fn malformed_pdu_storm_does_not_perturb_a_live_scrape() {
    let mut machine = SimMachine::quiet(Machine::summit(), 7);
    let region = machine.alloc(2 << 20);
    let base = region.base();
    machine.run_single(0, |core| core.load_seq(base, 2 << 20));

    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let config = WireConfig::default();
    let max_payload = config.max_payload;
    let mut server = PmcdServer::bind_system("127.0.0.1:0", pmns.clone(), sockets, config)
        .expect("bind pmcd server");
    let http = ScrapeListener::bind("127.0.0.1:0", &server).expect("bind scrape listener");

    let metric = pmns
        .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
        .expect("nest metric resolves");
    let inst = pmns.instance_of_socket(0);

    // Quiescent reference. The HTTP warm-up comes first so the sidecar's
    // always-on request counter exists in the registry before the
    // baseline — the storm comparison is then about values, never about
    // which series exist.
    let _warm_up = http_scrape(http.local_addr());
    let valid_client = WireClient::connect(server.local_addr()).expect("valid client");
    let nest_before = valid_client
        .pm_fetch(&[(metric, inst)])
        .expect("pre-storm fetch");
    assert!(nest_before[0] > 0, "no traffic behind the nest counter");
    let baseline = quiescent_view(&valid_client.scrape_exposition().expect("baseline scrape"));
    assert!(
        baseline.contains("pmcd_fetch_count") && baseline.contains("pmcd_client_rejected"),
        "baseline lost its invariant lines:\n{baseline}"
    );
    let errs_before = server.stats().pdu_error;

    // The storm: hostile floods and a live scraper, concurrently.
    let pdu_addr = server.local_addr();
    let http_addr = http.local_addr();
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let scraper = {
        let done = done.clone();
        std::thread::spawn(move || {
            let client = WireClient::connect(pdu_addr).expect("scraper connect");
            let mut texts = Vec::new();
            while !done.load(std::sync::atomic::Ordering::SeqCst) {
                texts.push(client.scrape_exposition().expect("scrape during storm"));
                texts.push(http_scrape(http_addr));
                std::thread::sleep(Duration::from_millis(1));
            }
            texts
        })
    };
    let frames = mangled_frames(max_payload);
    let hostiles: Vec<_> = (0..HOSTILE_THREADS)
        .map(|_| {
            let frames = frames.clone();
            std::thread::spawn(move || {
                for _ in 0..ROUNDS_PER_THREAD {
                    for frame in &frames {
                        hostile_hit(pdu_addr, frame);
                    }
                }
            })
        })
        .collect();
    for h in hostiles {
        h.join().expect("hostile thread panicked");
    }
    done.store(true, std::sync::atomic::Ordering::SeqCst);
    let storm_scrapes = scraper.join().expect("scraper thread panicked");
    assert!(
        storm_scrapes.len() >= 4,
        "scraper barely ran ({} scrapes)",
        storm_scrapes.len()
    );

    // Every mid-storm scrape parses and matches the quiescent render
    // byte for byte outside the moving counters.
    for (i, text) in storm_scrapes.iter().enumerate() {
        assert_eq!(
            quiescent_view(text),
            baseline,
            "scrape {i} of {} diverged from the quiescent render",
            storm_scrapes.len()
        );
    }

    // Every malformed frame was counted, none twice. The last hostile
    // thread may still be draining through a worker when join returns,
    // so give the counter a bounded moment to settle.
    let expected = errs_before + (HOSTILE_THREADS * ROUNDS_PER_THREAD * frames.len()) as u64;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.stats().pdu_error < expected && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        server.stats().pdu_error,
        expected,
        "reject accounting drifted"
    );

    // The count is visible through the scrape itself, and the post-storm
    // document has settled back to the quiescent view.
    let post = valid_client.scrape_exposition().expect("post-storm scrape");
    assert_eq!(int_sample(&post, "pmcd_pdu_error"), expected);
    assert_eq!(quiescent_view(&post), baseline);

    // A valid client is unperturbed: same nest counter, same connection.
    let nest_after = valid_client
        .pm_fetch(&[(metric, inst)])
        .expect("post-storm fetch");
    assert_eq!(nest_before, nest_after, "storm perturbed a nest counter");

    server.shutdown();
}
