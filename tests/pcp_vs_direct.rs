//! The paper's headline claim: measurements taken via PCP are as accurate
//! as those taken directly from the hardware counters.
//!
//! On Tellico both paths are live simultaneously; we measure one kernel
//! through *both* at once and through each in isolation on identical
//! machines, and require agreement.

use papi_repro::kernels::GemmTrace;
use papi_repro::memsim::SimMachine;
use papi_repro::papi::papi::setup_node;
use papi_repro::papi::EventSet;

fn pcp_events() -> Vec<String> {
    // Tellico sockets expose 64 CPUs; the nest qualifier is cpu63.
    (0..8)
        .flat_map(|ch| {
            [
                format!(
                    "pcp:::perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_READ_BYTES.value:cpu63"
                ),
                format!(
                    "pcp:::perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_WRITE_BYTES.value:cpu63"
                ),
            ]
        })
        .collect()
}

fn uncore_events() -> Vec<String> {
    (0..8)
        .flat_map(|ch| {
            [
                format!("power9_nest_mba{ch}::PM_MBA{ch}_READ_BYTES:cpu=0"),
                format!("power9_nest_mba{ch}::PM_MBA{ch}_WRITE_BYTES:cpu=0"),
            ]
        })
        .collect()
}

/// Both paths read the same counters at the same instants: the deltas must
/// be *identical*, not merely close.
#[test]
fn simultaneous_pcp_and_direct_reads_agree_exactly() {
    let mut machine = SimMachine::quiet(papi_repro::arch::Machine::tellico(), 17);
    let setup = setup_node(&machine, Vec::new());

    let mut es_pcp = EventSet::new();
    for e in pcp_events() {
        es_pcp.add_event(&e).unwrap();
    }
    let mut es_direct = EventSet::new();
    for e in uncore_events() {
        es_direct.add_event(&e).unwrap();
    }

    let gemm = GemmTrace::allocate(&mut machine, 192);
    es_pcp.start(&setup.papi).unwrap();
    es_direct.start(&setup.papi).unwrap();
    machine.run_single(0, |core| gemm.run(core));
    // Read while still running (no stop-side overhead yet): both views of
    // the same instant must agree exactly.
    let direct = es_direct.read().unwrap();
    let pcp = es_pcp.read().unwrap();
    let d_total: i64 = direct.iter().sum();
    let p_total: i64 = pcp.iter().sum();
    assert_eq!(d_total, p_total, "pcp {pcp:?} vs direct {direct:?}");
    es_pcp.stop().unwrap();
    es_direct.stop().unwrap();
}

/// With realistic noise, the two paths measured on *identical but
/// independent* machines produce statistically equivalent results: same
/// expectation, same order of residual error (the noise is in the machine,
/// not the measurement path).
#[test]
fn isolated_paths_have_equivalent_accuracy() {
    let n = 512u64;
    let expect = papi_repro::kernels::gemm_expected(n).read_bytes;

    let measure = |use_pcp: bool| -> f64 {
        let mut machine = SimMachine::new(
            papi_repro::arch::Machine::tellico(),
            papi_repro::memsim::NoiseConfig::tellico(),
            23,
        );
        let setup = setup_node(&machine, Vec::new());
        let mut es = EventSet::new();
        let events = if use_pcp {
            pcp_events()
        } else {
            uncore_events()
        };
        for e in events {
            es.add_event(&e).unwrap();
        }
        // Warm-up + measured repetition, as the harness does.
        let warm = GemmTrace::allocate(&mut machine, n);
        machine.run_single(0, |core| warm.run(core));
        let t = GemmTrace::allocate(&mut machine, n);
        es.start(&setup.papi).unwrap();
        machine.run_single(0, |core| t.run(core));
        let vals = es.stop().unwrap();
        vals.iter().step_by(2).sum::<i64>() as f64
    };

    let via_pcp = measure(true);
    let via_direct = measure(false);
    let err_pcp = (via_pcp - expect).abs() / expect;
    let err_direct = (via_direct - expect).abs() / expect;
    // Neither path is an outlier relative to the other.
    assert!(
        (err_pcp - err_direct).abs() < 0.15,
        "pcp err {err_pcp:.3} vs direct err {err_direct:.3}"
    );
}

/// Transport equivalence: the same kernel measured through the in-process
/// `PcpContext` and through a `WireClient` talking TCP to a loopback
/// `PmcdServer` must report *identical* byte counts — the wire protocol
/// adds a real network hop but zero measurement error.
#[test]
fn wire_and_inprocess_transports_report_identical_byte_counts() {
    use papi_repro::papi::component::Component;
    use papi_repro::papi::components::PcpComponent;
    use papi_repro::papi::EventName;
    use papi_repro::pcp::{PcpContext, PmApi, Pmcd, PmcdConfig, Pmns};
    use papi_repro::wire::{PmcdServer, WireClient, WireConfig};

    let mut machine = SimMachine::quiet(papi_repro::arch::Machine::tellico(), 29);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();

    // Both transports front the very same counters.
    let daemon = Pmcd::spawn_system(
        pmns.clone(),
        sockets.clone(),
        PmcdConfig {
            fetch_latency_s: 0.0,
            fetch_touch: false,
        },
    )
    .expect("spawn pmcd");
    let server = PmcdServer::bind_system(
        "127.0.0.1:0",
        pmns.clone(),
        sockets.clone(),
        WireConfig::default(),
    )
    .expect("bind pmcd server");

    let inproc = PcpComponent::with_client(
        PcpContext::connect(daemon.handle(), None),
        pmns.clone(),
        sockets.clone(),
    );
    let wire = PcpComponent::with_client(
        WireClient::connect(server.local_addr()).unwrap(),
        pmns.clone(),
        sockets.clone(),
    );

    let events: Vec<EventName> = pcp_events()
        .iter()
        .map(|e| EventName::parse(e).unwrap())
        .collect();
    let mut g_in = inproc.create_group(&events).unwrap();
    let mut g_wire = wire.create_group(&events).unwrap();

    g_in.start().unwrap();
    g_wire.start().unwrap();
    let gemm = GemmTrace::allocate(&mut machine, 160);
    machine.run_single(0, |core| gemm.run(core));
    let v_in = g_in.read().unwrap();
    let v_wire = g_wire.read().unwrap();
    assert_eq!(v_in, v_wire, "transports disagree");
    assert!(v_in.iter().sum::<i64>() > 0, "kernel produced no traffic");
    assert_eq!(g_in.stop().unwrap(), g_wire.stop().unwrap());

    // Raw PMAPI parity too: name resolution, descriptors, listings and
    // batched fetches agree metric-for-metric.
    let ctx = PcpContext::connect(daemon.handle(), None);
    let client = WireClient::connect(server.local_addr()).unwrap();
    let names = ctx.pm_get_children("perfevent").unwrap();
    assert_eq!(names, client.pm_get_children("perfevent").unwrap());
    let reqs: Vec<_> = names
        .iter()
        .map(|n| {
            let a = ctx.pm_lookup_name(n).unwrap();
            let b = client.pm_lookup_name(n).unwrap();
            assert_eq!(a, b, "{n}");
            assert_eq!(ctx.pm_get_desc(a).unwrap(), client.pm_get_desc(b).unwrap());
            (a, pmns.instance_of_socket(0))
        })
        .collect();
    assert_eq!(
        ctx.pm_fetch(&reqs).unwrap(),
        client.pm_fetch(&reqs).unwrap()
    );
}

/// The PCP indirection has a *time* cost (daemon round-trips) even though
/// it has no accuracy cost.
#[test]
fn pcp_reads_cost_wall_time() {
    let machine = SimMachine::quiet(papi_repro::arch::Machine::tellico(), 5);
    let setup = setup_node(&machine, Vec::new());
    let shared = machine.socket_shared(0);

    let mut es = EventSet::new();
    for e in pcp_events() {
        es.add_event(&e).unwrap();
    }
    es.start(&setup.papi).unwrap();
    let t0 = shared.now_seconds();
    for _ in 0..10 {
        es.read().unwrap();
    }
    let dt_pcp = shared.now_seconds() - t0;
    es.stop().unwrap();

    let mut es = EventSet::new();
    for e in uncore_events() {
        es.add_event(&e).unwrap();
    }
    es.start(&setup.papi).unwrap();
    let t0 = shared.now_seconds();
    for _ in 0..10 {
        es.read().unwrap();
    }
    let dt_direct = shared.now_seconds() - t0;
    es.stop().unwrap();

    assert!(
        dt_pcp > dt_direct + 10.0 * 50e-6,
        "pcp {dt_pcp}s vs direct {dt_direct}s"
    );
}
