//! The paper's headline claim: measurements taken via PCP are as accurate
//! as those taken directly from the hardware counters.
//!
//! On Tellico both paths are live simultaneously; we measure one kernel
//! through *both* at once and through each in isolation on identical
//! machines, and require agreement.

use papi_repro::kernels::GemmTrace;
use papi_repro::memsim::SimMachine;
use papi_repro::papi::papi::setup_node;
use papi_repro::papi::EventSet;

fn pcp_events() -> Vec<String> {
    // Tellico sockets expose 64 CPUs; the nest qualifier is cpu63.
    (0..8)
        .flat_map(|ch| {
            [
                format!(
                    "pcp:::perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_READ_BYTES.value:cpu63"
                ),
                format!(
                    "pcp:::perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_WRITE_BYTES.value:cpu63"
                ),
            ]
        })
        .collect()
}

fn uncore_events() -> Vec<String> {
    (0..8)
        .flat_map(|ch| {
            [
                format!("power9_nest_mba{ch}::PM_MBA{ch}_READ_BYTES:cpu=0"),
                format!("power9_nest_mba{ch}::PM_MBA{ch}_WRITE_BYTES:cpu=0"),
            ]
        })
        .collect()
}

/// Both paths read the same counters at the same instants: the deltas must
/// be *identical*, not merely close.
#[test]
fn simultaneous_pcp_and_direct_reads_agree_exactly() {
    let mut machine = SimMachine::quiet(papi_repro::arch::Machine::tellico(), 17);
    let setup = setup_node(&machine, Vec::new());

    let mut es_pcp = EventSet::new();
    for e in pcp_events() {
        es_pcp.add_event(&e).unwrap();
    }
    let mut es_direct = EventSet::new();
    for e in uncore_events() {
        es_direct.add_event(&e).unwrap();
    }

    let gemm = GemmTrace::allocate(&mut machine, 192);
    es_pcp.start(&setup.papi).unwrap();
    es_direct.start(&setup.papi).unwrap();
    machine.run_single(0, |core| gemm.run(core));
    // Read while still running (no stop-side overhead yet): both views of
    // the same instant must agree exactly.
    let direct = es_direct.read().unwrap();
    let pcp = es_pcp.read().unwrap();
    let d_total: i64 = direct.iter().sum();
    let p_total: i64 = pcp.iter().sum();
    assert_eq!(d_total, p_total, "pcp {pcp:?} vs direct {direct:?}");
    es_pcp.stop().unwrap();
    es_direct.stop().unwrap();
}

/// With realistic noise, the two paths measured on *identical but
/// independent* machines produce statistically equivalent results: same
/// expectation, same order of residual error (the noise is in the machine,
/// not the measurement path).
#[test]
fn isolated_paths_have_equivalent_accuracy() {
    let n = 512u64;
    let expect = papi_repro::kernels::gemm_expected(n).read_bytes;

    let measure = |use_pcp: bool| -> f64 {
        let mut machine = SimMachine::new(
            papi_repro::arch::Machine::tellico(),
            papi_repro::memsim::NoiseConfig::tellico(),
            23,
        );
        let setup = setup_node(&machine, Vec::new());
        let mut es = EventSet::new();
        let events = if use_pcp { pcp_events() } else { uncore_events() };
        for e in events {
            es.add_event(&e).unwrap();
        }
        // Warm-up + measured repetition, as the harness does.
        let warm = GemmTrace::allocate(&mut machine, n);
        machine.run_single(0, |core| warm.run(core));
        let t = GemmTrace::allocate(&mut machine, n);
        es.start(&setup.papi).unwrap();
        machine.run_single(0, |core| t.run(core));
        let vals = es.stop().unwrap();
        vals.iter().step_by(2).sum::<i64>() as f64
    };

    let via_pcp = measure(true);
    let via_direct = measure(false);
    let err_pcp = (via_pcp - expect).abs() / expect;
    let err_direct = (via_direct - expect).abs() / expect;
    // Neither path is an outlier relative to the other.
    assert!(
        (err_pcp - err_direct).abs() < 0.15,
        "pcp err {err_pcp:.3} vs direct err {err_direct:.3}"
    );
}

/// The PCP indirection has a *time* cost (daemon round-trips) even though
/// it has no accuracy cost.
#[test]
fn pcp_reads_cost_wall_time() {
    let machine = SimMachine::quiet(papi_repro::arch::Machine::tellico(), 5);
    let setup = setup_node(&machine, Vec::new());
    let shared = machine.socket_shared(0);

    let mut es = EventSet::new();
    for e in pcp_events() {
        es.add_event(&e).unwrap();
    }
    es.start(&setup.papi).unwrap();
    let t0 = shared.now_seconds();
    for _ in 0..10 {
        es.read().unwrap();
    }
    let dt_pcp = shared.now_seconds() - t0;
    es.stop().unwrap();

    let mut es = EventSet::new();
    for e in uncore_events() {
        es.add_event(&e).unwrap();
    }
    es.start(&setup.papi).unwrap();
    let t0 = shared.now_seconds();
    for _ in 0..10 {
        es.read().unwrap();
    }
    let dt_direct = shared.now_seconds() - t0;
    es.stop().unwrap();

    assert!(
        dt_pcp > dt_direct + 10.0 * 50e-6,
        "pcp {dt_pcp}s vs direct {dt_direct}s"
    );
}
