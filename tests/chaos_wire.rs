//! Daemon crash/restart mid-archive, end to end over the wire (ROADMAP
//! item 5c): a `SamplingScheduler` logs nest counters through a TCP
//! `WireClient` while the PMCD it talks to is killed and respawned over a
//! *fresh* machine (counters reset to zero, as after a host reboot). The
//! archive must come through gapless — no halted group, timestamps still
//! monotone, store parity intact — and counter-delta saturation must turn
//! the reset into a zero delta rather than an underflow.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use obs::metrics::ExportSemantics;
use papi_repro::arch::Machine;
use papi_repro::memsim::SimMachine;
use papi_repro::pcp::{InstanceId, MetricId, PcpError, Pmns};
use papi_repro::pcp::{MetricDesc, PmApi};
use papi_repro::wire::logger::archive_from_store;
use papi_repro::wire::{PmcdServer, SamplingScheduler, ScheduleSpec, WireClient, WireConfig};
use store::Store;

/// A `PmApi` that re-dials its (swappable) target on connection failure.
///
/// The scheduler halts a group permanently on the first fetch error, so a
/// logger that should survive a daemon restart must bring reconnection
/// with it — exactly what pmlogger does in real PCP deployments. Fetches
/// retry against the current target for a bounded grace window (far
/// longer than the respawn gap in this test), then give up with the
/// underlying error.
struct ReconnectingClient {
    target: Arc<Mutex<SocketAddr>>,
    conn: Mutex<Option<WireClient>>,
}

const RETRY_EVERY: Duration = Duration::from_millis(5);
const GIVE_UP_AFTER: Duration = Duration::from_secs(10);

impl ReconnectingClient {
    fn new(target: Arc<Mutex<SocketAddr>>) -> Self {
        ReconnectingClient {
            target,
            conn: Mutex::new(None),
        }
    }

    fn with_conn<T>(&self, op: impl Fn(&WireClient) -> Result<T, PcpError>) -> Result<T, PcpError> {
        let deadline = std::time::Instant::now() + GIVE_UP_AFTER;
        let mut last_err;
        loop {
            let attempt = {
                let mut conn = self.conn.lock().unwrap();
                if conn.is_none() {
                    let addr = *self.target.lock().unwrap();
                    match WireClient::connect(addr) {
                        Ok(c) => *conn = Some(c),
                        Err(e) => {
                            drop(conn);
                            last_err = e;
                            if std::time::Instant::now() > deadline {
                                return Err(last_err);
                            }
                            std::thread::sleep(RETRY_EVERY);
                            continue;
                        }
                    }
                }
                let result = op(conn.as_ref().expect("just connected"));
                if result.is_err() {
                    // Whatever happened, the connection is suspect: drop
                    // it so the next attempt re-dials the current target.
                    *conn = None;
                }
                result
            };
            match attempt {
                Ok(v) => return Ok(v),
                Err(e) => {
                    last_err = e;
                    if std::time::Instant::now() > deadline {
                        return Err(last_err);
                    }
                    std::thread::sleep(RETRY_EVERY);
                }
            }
        }
    }
}

impl PmApi for ReconnectingClient {
    fn pm_lookup_name(&self, name: &str) -> Result<MetricId, PcpError> {
        self.with_conn(|c| c.pm_lookup_name(name))
    }
    fn pm_get_desc(&self, id: MetricId) -> Result<MetricDesc, PcpError> {
        self.with_conn(|c| c.pm_get_desc(id))
    }
    fn pm_get_children(&self, prefix: &str) -> Result<Vec<String>, PcpError> {
        self.with_conn(|c| c.pm_get_children(prefix))
    }
    fn pm_fetch(&self, requests: &[(MetricId, InstanceId)]) -> Result<Vec<u64>, PcpError> {
        self.with_conn(|c| c.pm_fetch(requests))
    }
}

/// The sampling cadence. Must stay *longer* than the server's read
/// timeout tick below: a worker serving a fetch stream only notices the
/// shutdown flag when a read times out, so the "kill between scheduler
/// samples" premise of this test needs real idle gaps on the wire.
const SAMPLE_EVERY: Duration = Duration::from_millis(100);

fn bind_server(machine: &SimMachine, pmns: &Pmns) -> PmcdServer {
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let config = WireConfig {
        read_timeout: Duration::from_millis(20),
        ..WireConfig::default()
    };
    PmcdServer::bind_system("127.0.0.1:0", pmns.clone(), sockets, config).expect("bind pmcd server")
}

fn drive_traffic(machine: &mut SimMachine, bytes: u64) {
    let region = machine.alloc(bytes);
    let base = region.base();
    machine.run_single(0, |core| core.load_seq(base, bytes));
}

fn wait_for_samples(sched: &SamplingScheduler, group: &str, at_least: usize) -> usize {
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let n = sched
            .sample_counts()
            .into_iter()
            .find(|(name, _)| name == group)
            .map(|(_, n)| n)
            .unwrap_or(0);
        if n >= at_least || std::time::Instant::now() > deadline {
            return n;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn daemon_crash_and_respawn_yields_gapless_monotone_archive() {
    // Phase 1: a machine with real traffic behind a live PMCD.
    let mut machine1 = SimMachine::quiet(Machine::summit(), 11);
    drive_traffic(&mut machine1, 4 << 20);
    let pmns = Pmns::for_machine(machine1.arch());
    let mut server1 = bind_server(&machine1, &pmns);

    let metric = pmns
        .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
        .expect("nest metric resolves");
    let inst = pmns.instance_of_socket(0);

    let target = Arc::new(Mutex::new(server1.local_addr()));
    let store = Arc::new(Store::default());
    let metrics = vec![(metric, inst)];
    let sched = SamplingScheduler::start_with_store(
        ReconnectingClient::new(target.clone()),
        vec![ScheduleSpec {
            name: "chaos".into(),
            metrics: metrics.clone(),
            interval: SAMPLE_EVERY,
        }],
        store.clone(),
    )
    .expect("scheduler starts");

    let before_crash = wait_for_samples(&sched, "chaos", 3);
    assert!(before_crash >= 3, "no samples before crash");

    // Phase 2: kill the daemon mid-archive. In-flight fetches now fail
    // and the client spins in its reconnect loop.
    server1.shutdown();

    // Phase 3: respawn over a *fresh* machine — counters restart from
    // zero exactly like a rebooted host — and point the client at it.
    let mut machine2 = SimMachine::quiet(Machine::summit(), 12);
    let server2 = bind_server(&machine2, &pmns);
    *target.lock().unwrap() = server2.local_addr();
    drive_traffic(&mut machine2, 1 << 20);

    let after_restart = wait_for_samples(&sched, "chaos", before_crash + 3);
    assert!(
        after_restart >= before_crash + 3,
        "archive did not keep growing after the restart ({before_crash} -> {after_restart})"
    );

    let mut out = sched.stop();
    let (name, archive, err) = out.remove(0);
    assert_eq!(name, "chaos");
    assert!(err.is_none(), "group halted: {err:?}");

    // Gapless: every tick made it into one archive...
    assert!(archive.len() >= before_crash + 3);
    // ...with monotone timestamps right across the crash window.
    let times: Vec<f64> = archive.records().iter().map(|r| r.time_s).collect();
    assert!(
        times.windows(2).all(|w| w[1] > w[0]),
        "timestamps not strictly monotone across restart"
    );

    // The crash is visible in the raw values: machine1 had 4 MiB of
    // traffic behind the counters (512 KiB on channel 0, the one we
    // archive), machine2 starts near zero.
    let values: Vec<u64> = archive.records().iter().map(|r| r.values[0]).collect();
    let peak_before = *values.iter().max().unwrap();
    assert!(
        peak_before >= (4 << 20) / 8,
        "pre-crash counter never observed (peak {peak_before})"
    );
    assert!(
        values.windows(2).any(|w| w[1] < w[0]),
        "counter reset not captured — did the respawn actually happen?"
    );

    // Counter-delta saturation pins the reset to a zero delta: replaying
    // the archived samples through obs' window derivations (the same
    // path the live monitor uses) must never underflow or go negative.
    let mut ring = obs::SeriesStore::new(archive.len().max(2));
    for rec in archive.records() {
        ring.push(
            "chaos.nest.read",
            ExportSemantics::Counter,
            (rec.time_s * 1e9) as u64,
            rec.values[0],
        );
    }
    let series = ring.get("chaos.nest.read").expect("series exists");
    let samples: Vec<_> = series.iter().collect();
    for window in 2..=samples.len() {
        let mut sub = obs::SeriesStore::new(window);
        for s in &samples[samples.len() - window..] {
            sub.push("w", ExportSemantics::Counter, s.t_ns, s.value);
        }
        let sub_series = sub.get("w").expect("window series");
        let d = obs::derive::delta(sub_series).expect("delta over window");
        assert!(d >= 0, "saturating counter delta went negative: {d}");
        let r = obs::derive::rate(sub_series).expect("rate over window");
        assert!(r.is_finite() && r >= 0.0, "rate {r} over {window} samples");
    }

    // Store parity survives the crash too: the store-backed record
    // stream rebuilds the wall-clock log sample for sample.
    let rebuilt = archive_from_store(&store, "chaos", metrics).expect("rebuild from store");
    assert_eq!(rebuilt.len(), archive.len(), "store lost samples");
    for (a, b) in rebuilt.records().iter().zip(archive.records()) {
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.values, b.values);
    }
}
