//! Property tests for the parallel reproduction engine.
//!
//! 1. **Scheduling determinism** — for random experiment subsets, seeds
//!    and worker counts, the composed outputs of an N-worker pool are
//!    byte-identical to the 1-worker reference. Every point builds its
//!    own seeded machine, so this must hold for *any* interleaving.
//! 2. **Fast-path equivalence** — the memory-hierarchy fast path
//!    (sector-mix hoisting, prefetch shortcut, batched MBA accounting)
//!    is an optimisation, not a model change: on randomized GEMM, GEMV
//!    and re-sort shapes it must produce exactly the counters and cycle
//!    counts of the reference path.

use proptest::prelude::*;

use papi_repro::fft3d::resort::{LocalDims, ResortTrace, S1cfNest1, S2cf};
use papi_repro::kernels::{CappedGemvTrace, GemmTrace};
use papi_repro::memsim::{CoreSim, CounterSnapshot, SimMachine};
use repro_bench::runner::{run_experiments, Experiment, Point, PointOutput, RunnerError};
use repro_bench::{experiments, figures, point_seed, Args, Mode, System};

/// Cheap catalog members: all-text experiments plus the small schematic,
/// so a case stays in the milliseconds even at 8 synthetic points.
const CHEAP_TAGS: &[&str] = &["fig1", "table1", "table2", "papi_avail"];

fn perr(point: String, e: impl std::fmt::Display) -> RunnerError {
    RunnerError::Point {
        experiment: "synthetic".into(),
        point,
        message: e.to_string(),
    }
}

/// A synthetic experiment of randomized GEMM/GEMV sweep points, built
/// the same way the registry builds the real figures.
fn synthetic(gemm_sizes: &[u64], gemv_sizes: &[u64], base_seed: u64) -> Experiment {
    let mut exp = Experiment::new("synthetic", "randomized gemm/gemv points");
    exp.push(Point::fixed("# synthetic sweep"));
    for (i, &n) in gemm_sizes.iter().enumerate() {
        let seed = point_seed(base_seed, "synthetic-gemm", i as u64);
        exp.push(Point::run(format!("gemm n={n}"), move || {
            let row = figures::gemm_point(System::Summit, 1, n, 1, seed)
                .map_err(|e| perr(format!("gemm n={n}"), e))?;
            Ok(PointOutput::with_bytes(row.csv_line(), row.sim_bytes()))
        }));
    }
    for (i, &m) in gemv_sizes.iter().enumerate() {
        let seed = point_seed(base_seed, "synthetic-gemv", i as u64);
        exp.push(Point::run(format!("gemv m={m}"), move || {
            let row = figures::gemv_point(System::Summit, 1, m, seed)
                .map_err(|e| perr(format!("gemv m={m}"), e))?;
            Ok(PointOutput::with_bytes(row.csv_line(), row.sim_bytes()))
        }));
    }
    exp
}

/// Build the randomized work list twice (points are single-shot
/// closures), run with 1 and with `workers` workers, return both
/// composed catalogs.
fn run_twice(
    subset: &[usize],
    gemm_sizes: &[u64],
    gemv_sizes: &[u64],
    seed: u64,
    workers: usize,
) -> (Vec<String>, Vec<String>) {
    let build = || -> Vec<Experiment> {
        let mut v: Vec<Experiment> = subset
            .iter()
            .filter_map(|&i| {
                experiments::build(
                    CHEAP_TAGS[i % CHEAP_TAGS.len()],
                    Mode::Quick,
                    &Args::default(),
                )
            })
            .collect();
        v.push(synthetic(gemm_sizes, gemv_sizes, seed));
        v
    };
    let outputs = |workers: usize| -> Vec<String> {
        let report = run_experiments(build(), workers);
        assert!(
            report.experiments.iter().all(|e| e.errors.is_empty()),
            "unexpected point errors"
        );
        report.experiments.into_iter().map(|e| e.output).collect()
    };
    (outputs(1), outputs(workers))
}

/// Run a kernel on a fresh machine with the given fast-path setting;
/// return the socket counter snapshot and the core's cycle count.
fn run_with_fast_path(
    setup: impl FnOnce(&mut SimMachine) -> Box<dyn Fn(&mut CoreSim)>,
    seed: u64,
    fast: bool,
) -> (CounterSnapshot, u64) {
    let mut m = SimMachine::quiet(papi_repro::arch::Machine::summit(), seed);
    m.set_fast_path(fast);
    let kernel = setup(&mut m);
    let mut cycles = 0;
    m.run_single(0, |core| {
        kernel(core);
        cycles = core.cycles();
    });
    m.flush_socket(0);
    let snap = m.socket_shared(0).counters().snapshot();
    (snap, cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// N-worker output is byte-identical to the 1-worker reference, for
    /// random subsets, sweep shapes, seeds and pool widths.
    #[test]
    fn parallel_output_matches_serial(
        subset in prop::collection::vec(0usize..4, 1..4),
        gemm_sizes in prop::collection::vec(16u64..80, 1..4),
        gemv_sizes in prop::collection::vec(32u64..256, 1..4),
        seed in any::<u64>(),
        workers in 2usize..8,
    ) {
        let (serial, parallel) =
            run_twice(&subset, &gemm_sizes, &gemv_sizes, seed, workers);
        prop_assert_eq!(serial, parallel);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Fast path vs reference path: identical counters and cycles on a
    /// randomized single-threaded GEMM.
    #[test]
    fn fast_path_matches_reference_gemm(n in 8u64..96, seed in any::<u64>()) {
        let make = move |m: &mut SimMachine| -> Box<dyn Fn(&mut CoreSim)> {
            let t = GemmTrace::allocate(m, n);
            Box::new(move |core| t.run(core))
        };
        prop_assert_eq!(
            run_with_fast_path(make, seed, true),
            run_with_fast_path(make, seed, false)
        );
    }

    /// Fast path vs reference path on a randomized capped GEMV.
    #[test]
    fn fast_path_matches_reference_gemv(
        rows in 32u64..512,
        cols in 16u64..256,
        seed in any::<u64>(),
    ) {
        let make = move |m: &mut SimMachine| -> Box<dyn Fn(&mut CoreSim)> {
            let t = CappedGemvTrace::allocate(m, rows, cols);
            Box::new(move |core| t.run(core))
        };
        prop_assert_eq!(
            run_with_fast_path(make, seed, true),
            run_with_fast_path(make, seed, false)
        );
    }

    /// Fast path vs reference path on randomized re-sort shapes (the
    /// strided S1CF nest and the locality-friendly S2CF merge).
    #[test]
    fn fast_path_matches_reference_resort(
        n in 2usize..12,
        s2 in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let n = n * 8; // grid-compatible local dims for a 2x4 grid
        let make = move |m: &mut SimMachine| -> Box<dyn Fn(&mut CoreSim)> {
            if s2 {
                let t = S2cf::for_grid(m, n, 2, 4);
                Box::new(move |core| t.run(core))
            } else {
                let t = S1cfNest1::allocate(m, LocalDims::for_grid(n, 2, 4));
                Box::new(move |core| t.run(core))
            }
        };
        prop_assert_eq!(
            run_with_fast_path(make, seed, true),
            run_with_fast_path(make, seed, false)
        );
    }
}
