//! Property-based tests over the whole stack.

use proptest::prelude::*;

use papi_repro::fft3d::{distributed_fft3d, naive_dft3d, Complex};
use papi_repro::memsim::{sector_of, SimMachine};
use papi_repro::ranks::ProcessGrid;

fn quiet() -> SimMachine {
    SimMachine::quiet(papi_repro::arch::Machine::tiny(64), 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Counters are monotonic and always multiples of the 64-byte
    /// transaction granule, for arbitrary load/store mixes.
    #[test]
    fn counters_monotonic_and_granular(
        ops in prop::collection::vec((any::<bool>(), 0u64..1_000_000, 1u64..64), 1..300)
    ) {
        let mut m = quiet();
        let shared = m.socket_shared(0);
        let mut last_r = 0;
        let mut last_w = 0;
        for (is_load, addr, len) in ops {
            m.run_single(0, |core| {
                if is_load {
                    core.load(addr, len);
                } else {
                    core.store(addr, len);
                }
            });
            let r = shared.counters().total_read();
            let w = shared.counters().total_write();
            prop_assert!(r >= last_r && w >= last_w, "counters went backwards");
            prop_assert_eq!(r % 64, 0);
            prop_assert_eq!(w % 64, 0);
            last_r = r;
            last_w = w;
        }
    }

    /// Every distinct sector loaded from a cold machine costs at least one
    /// compulsory 64-byte read.
    #[test]
    fn compulsory_miss_lower_bound(
        addrs in prop::collection::vec(0u64..4_000_000, 1..400)
    ) {
        let mut m = quiet();
        let shared = m.socket_shared(0);
        let mut sectors: Vec<u64> = addrs.iter().map(|&a| sector_of(a)).collect();
        m.run_single(0, |core| {
            for &a in &addrs {
                core.load(a, 8);
            }
        });
        sectors.sort_unstable();
        sectors.dedup();
        prop_assert!(
            shared.counters().total_read() >= 64 * sectors.len() as u64,
            "reads {} below compulsory bound {}",
            shared.counters().total_read(),
            64 * sectors.len() as u64
        );
    }

    /// After a full flush, every distinct stored-to sector has been written
    /// at least once, and total writes never exceed one transaction per
    /// store operation (plus its sector spill).
    #[test]
    fn store_writeback_bounds(
        stores in prop::collection::vec((0u64..2_000_000, 1u64..32), 1..300)
    ) {
        let mut m = quiet();
        let shared = m.socket_shared(0);
        m.run_single(0, |core| {
            for &(a, l) in &stores {
                core.store(a, l);
            }
        });
        m.flush_socket(0);
        let mut sectors: Vec<u64> = stores.iter().map(|&(a, _)| sector_of(a)).collect();
        sectors.sort_unstable();
        sectors.dedup();
        let w = shared.counters().total_write();
        prop_assert!(
            w >= 64 * sectors.len() as u64,
            "writes {w} below {} distinct sectors",
            sectors.len()
        );
        // Generous upper bound: two transactions per store op (sector
        // spill + RMW re-writes).
        prop_assert!(w <= 64 * 2 * (stores.len() as u64 + sectors.len() as u64));
    }

    /// Identical seeds and traces give bit-identical counters (the whole
    /// simulator is deterministic).
    #[test]
    fn determinism(addrs in prop::collection::vec(0u64..1_000_000, 1..200), seed in 0u64..1000) {
        let run = |seed: u64| {
            let mut m = SimMachine::new(
                papi_repro::arch::Machine::tiny(64),
                papi_repro::memsim::NoiseConfig::summit(),
                seed,
            );
            let shared = m.socket_shared(0);
            shared.measurement_touch();
            m.run_single(0, |core| {
                for &a in &addrs {
                    core.load(a, 8);
                }
            });
            (shared.counters().snapshot(), shared.now_cycles())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// The distributed FFT agrees with the naive 3-D DFT for arbitrary
    /// inputs and every grid that divides N = 4.
    #[test]
    fn distributed_fft_matches_naive(
        values in prop::collection::vec(-10.0f64..10.0, 64),
        grid_pick in 0usize..4
    ) {
        let n = 4;
        let input: Vec<Complex> = values
            .chunks(1)
            .enumerate()
            .map(|(i, v)| Complex::new(v[0], ((i * 7) % 5) as f64 - 2.0))
            .collect();
        let grids = [(1, 1), (2, 2), (1, 4), (4, 1)];
        let (r, c) = grids[grid_pick];
        let fast = distributed_fft3d(&input, n, ProcessGrid::new(r, c));
        let slow = naive_dft3d(&input, n);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7, "{a:?} vs {b:?}");
        }
    }

    /// S1CF followed by its inverse index mapping restores the pencil; the
    /// routine is a pure permutation for any dims.
    #[test]
    fn s1cf_is_permutation(p in 1usize..5, r in 1usize..5, c in 1usize..6) {
        use papi_repro::fft3d::resort::{s1cf_ref, LocalDims};
        let d = LocalDims::new(p, r, c);
        let input: Vec<Complex> =
            (0..d.len()).map(|i| Complex::new(i as f64, 0.0)).collect();
        let mut out = vec![Complex::ZERO; d.len()];
        s1cf_ref(&input, &mut out, d);
        let mut seen: Vec<i64> = out.iter().map(|z| z.re as i64).collect();
        seen.sort_unstable();
        let expect: Vec<i64> = (0..d.len() as i64).collect();
        prop_assert_eq!(seen, expect);
    }

    /// PAPI event names printed by components always re-parse to the same
    /// component.
    #[test]
    fn event_grammar_roundtrip(ch in 0usize..8, cpu in 0u32..176, write in any::<bool>()) {
        use papi_repro::papi::EventName;
        let word = if write { "WRITE" } else { "READ" };
        let pcp = format!(
            "pcp:::perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_{word}_BYTES.value:cpu{cpu}"
        );
        let e = EventName::parse(&pcp).unwrap();
        prop_assert_eq!(e.component(), "pcp");
        prop_assert_eq!(e.raw(), pcp.as_str());

        let uncore = format!("power9_nest_mba{ch}::PM_MBA{ch}_{word}_BYTES:cpu={cpu}");
        let e = EventName::parse(&uncore).unwrap();
        prop_assert_eq!(e.component(), "perf_uncore");
    }
}
