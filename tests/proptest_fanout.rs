//! Property-based tests for fan-out trace stitching: for arbitrary
//! fleets (1..=64 hosts), arbitrary per-host server clock skew (up to
//! ±1 hour) and arbitrary fan-out widths (1..=8 workers), the stitched
//! [`obs::stitch::FanoutTrace`] conserves time exactly and renders
//! byte-identically regardless of how work was spread over workers.

use proptest::prelude::*;

use obs::stitch::{
    fanout_child_id, FanoutTrace, HOST_SCRAPE_SPAN, PASS_FANOUT_SPAN, PASS_INGEST_SPAN,
    PASS_MERGE_SPAN, PASS_SPAN, SERVER_SCRAPE_SPAN,
};
use obs::trace::{Kind, SpanEvent};

const HOUR_NS: u64 = 3_600_000_000_000;

fn span(label: &'static str, tid: u64, start_ns: u64, dur_ns: u64, arg: u64) -> SpanEvent {
    SpanEvent {
        label,
        tid,
        start_ns,
        dur_ns,
        arg,
        kind: Kind::Span,
    }
}

/// One synthetic host scrape: aggregator-side queue delay and scrape
/// duration, the host's server render duration, and the signed skew of
/// the host's clock relative to the aggregator.
#[derive(Clone, Debug)]
struct HostPlan {
    queue_ns: u64,
    scrape_ns: u64,
    server_ns: u64,
    skew_ns: i64,
}

/// Build the merged event list one pass would drain, with host spans
/// assigned to `width` worker threads round-robin. Width only moves
/// spans between threads — it must never change the stitched result.
fn pass_events(pass_id: u64, hosts: &[HostPlan], width: u64) -> Vec<SpanEvent> {
    let base = 1_000_000u64;
    let mut events = Vec::new();
    let mut fanout_end = base;
    for (i, h) in hosts.iter().enumerate() {
        let child = fanout_child_id(pass_id, i as u64);
        let start = base + h.queue_ns;
        events.push(span(
            HOST_SCRAPE_SPAN,
            2 + (i as u64 % width),
            start,
            h.scrape_ns,
            child,
        ));
        // The host's own render span sits on the host's clock: shift it
        // by the skew (saturating at 0 — a clock can't go negative).
        let server_start = start.saturating_add_signed(h.skew_ns);
        events.push(span(
            SERVER_SCRAPE_SPAN,
            1_000 + i as u64,
            server_start,
            h.server_ns,
            child,
        ));
        fanout_end = fanout_end.max(start + h.scrape_ns);
    }
    let fanout_ns = fanout_end - base;
    let merge_ns = 40_000u64;
    let ingest_ns = 15_000u64;
    let other_ns = 5_000u64;
    events.push(span(PASS_FANOUT_SPAN, 1, base, fanout_ns, 0));
    events.push(span(PASS_MERGE_SPAN, 1, base + fanout_ns, merge_ns, 0));
    events.push(span(
        PASS_INGEST_SPAN,
        1,
        base + fanout_ns + merge_ns,
        ingest_ns,
        0,
    ));
    events.push(span(
        PASS_SPAN,
        1,
        base,
        fanout_ns + merge_ns + ingest_ns + other_ns,
        pass_id,
    ));
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Conservation is exact for any fleet shape, any per-host clock
    /// skew up to ±1 hour, and any fan-out width: phase shares sum to
    /// the pass wall time, per-host components sum to the host chain,
    /// and the canonical rendering is byte-identical across widths.
    #[test]
    fn stitch_conserves_time_and_ignores_worker_layout(
        pass_id in 1u64..1 << 40,
        hosts in prop::collection::vec(
            (
                0u64..2_000_000,              // queue delay
                1u64..50_000_000,             // scrape duration
                0u64..100_000_000,            // server render (may exceed the scrape)
                -(HOUR_NS as i64)..HOUR_NS as i64, // host clock skew
            ),
            1..=64,
        ),
        widths in prop::collection::vec(1u64..=8, 2),
    ) {
        let hosts: Vec<HostPlan> = hosts
            .into_iter()
            .map(|(queue_ns, scrape_ns, server_ns, skew_ns)| HostPlan {
                queue_ns,
                scrape_ns,
                server_ns,
                skew_ns,
            })
            .collect();

        let mut summaries = Vec::new();
        for &width in &widths {
            let events = pass_events(pass_id, &hosts, width);
            let trace = FanoutTrace::stitch(&events, pass_id, hosts.len())
                .expect("pass span present");

            // Exact conservation at the pass level...
            prop_assert_eq!(trace.total(), trace.wall_ns);
            // ...and per host: components sum to the chain, and the
            // chain itself is the aggregator-side queue + scrape time,
            // untouched by the host's (possibly wild) clock skew.
            prop_assert_eq!(trace.hosts.len(), hosts.len());
            for (h, plan) in trace.hosts.iter().zip(&hosts) {
                let parts: u64 = h.components.iter().map(|(_, v)| v).sum();
                prop_assert_eq!(parts, h.chain_ns);
                prop_assert_eq!(h.chain_ns, plan.queue_ns + plan.scrape_ns);
                prop_assert!(h.ok);
            }

            // The straggler is an argmax over chains.
            let best = trace.straggler_share().expect("nonempty fleet");
            prop_assert!(trace.hosts.iter().all(|h| h.chain_ns <= best.chain_ns));
            prop_assert!(trace.skew_ratio_permille() >= 1000);

            summaries.push(trace.summary());
        }
        // Fan-out width moved spans across worker threads; the stitched
        // rendering must not notice.
        prop_assert_eq!(&summaries[0], &summaries[1]);
    }

    /// A torn trace (some hosts' spans lost to ring eviction) still
    /// conserves: absent hosts are simply missing, present hosts keep
    /// exact component sums, and phases still sum to the wall.
    #[test]
    fn stitch_survives_missing_host_spans(
        pass_id in 1u64..1 << 40,
        hosts in prop::collection::vec(
            (0u64..1_000_000, 1u64..10_000_000, 0u64..10_000_000, any::<bool>()),
            1..=16,
        ),
    ) {
        let plans: Vec<HostPlan> = hosts
            .iter()
            .map(|&(queue_ns, scrape_ns, server_ns, _)| HostPlan {
                queue_ns,
                scrape_ns,
                server_ns,
                skew_ns: 0,
            })
            .collect();
        let events: Vec<SpanEvent> = pass_events(pass_id, &plans, 4)
            .into_iter()
            .filter(|e| {
                if e.label != HOST_SCRAPE_SPAN {
                    return true;
                }
                // Drop the i-th host span when its keep flag is false.
                plans
                    .iter()
                    .enumerate()
                    .find(|(i, _)| fanout_child_id(pass_id, *i as u64) == e.arg)
                    .is_none_or(|(i, _)| hosts[i].3)
            })
            .collect();
        let trace = FanoutTrace::stitch(&events, pass_id, plans.len()).expect("pass span");
        prop_assert_eq!(trace.total(), trace.wall_ns);
        let kept = hosts.iter().filter(|h| h.3).count();
        prop_assert_eq!(trace.hosts.len(), kept);
        for h in &trace.hosts {
            let parts: u64 = h.components.iter().map(|(_, v)| v).sum();
            prop_assert_eq!(parts, h.chain_ns);
        }
        prop_assert_eq!(trace.straggler.is_some(), kept > 0);
    }
}
