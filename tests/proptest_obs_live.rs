//! Property-based tests for the live-monitoring layer: derivations over
//! randomized monotone series, and exposition render/parse round-trips
//! through the strict in-repo parser.

use proptest::prelude::*;

use obs::derive::{delta, ewma, rate};
use obs::metrics::ExportSemantics;
use obs::openmetrics::{parse, render, sanitize, strip_timestamp, MetricKind, OmSample, Value};
use obs::SeriesStore;

/// Build a monotone counter series from random non-negative increments
/// and random positive time steps.
fn counter_store(increments: &[(u64, u64)]) -> SeriesStore {
    let mut store = SeriesStore::new(increments.len().max(2));
    let mut t = 0u64;
    let mut v = 0u64;
    for &(dt, dv) in increments {
        t += dt;
        v = v.saturating_add(dv);
        store.push("p.count", ExportSemantics::Counter, t, v);
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over any monotone counter series, the window delta is exactly the
    /// sum of the retained increments and the rate is non-negative and
    /// consistent with delta / span.
    #[test]
    fn rate_and_delta_over_monotone_counters(
        increments in prop::collection::vec((1u64..1_000_000, 0u64..1_000_000), 2..64)
    ) {
        let store = counter_store(&increments);
        let s = store.get("p.count").unwrap();
        // The ring retains the newest `capacity` samples; recompute the
        // expected window from what actually survived.
        let oldest = s.oldest().unwrap();
        let latest = s.latest().unwrap();
        let d = delta(s).expect("two samples give a delta");
        prop_assert!(d >= 0, "counter delta must be non-negative, got {d}");
        prop_assert_eq!(d as u64, latest.value - oldest.value, "delta is sum of window increments");
        let r = rate(s).expect("two samples give a rate");
        prop_assert!(r >= 0.0, "counter rate must be non-negative, got {r}");
        let span_s = (latest.t_ns - oldest.t_ns) as f64 / 1e9;
        prop_assert!((r - d as f64 / span_s).abs() <= 1e-9 * (1.0 + r.abs()),
            "rate {r} inconsistent with delta {d} over {span_s}s");
        // EWMA stays inside the value envelope of the window.
        let e = ewma(s, 1_000_000).expect("non-empty series");
        prop_assert!(e >= oldest.value as f64 - 1e-6 && e <= latest.value as f64 + 1e-6,
            "ewma {e} outside [{}, {}]", oldest.value, latest.value);
    }

    /// Non-advancing timestamps are dropped rather than poisoning the
    /// window: whatever lands in the series keeps strictly increasing
    /// timestamps, so the rate denominator is always positive.
    #[test]
    fn series_timestamps_strictly_increase(
        steps in prop::collection::vec((0u64..3, 0u64..100), 2..48)
    ) {
        let mut store = SeriesStore::new(16);
        let mut t = 1u64;
        for &(dt, v) in &steps {
            t += dt; // dt may be zero: a non-advancing clock
            store.push("g", ExportSemantics::Instant, t, v);
        }
        let s = store.get("g").unwrap();
        let times: Vec<u64> = s.iter().map(|p| p.t_ns).collect();
        for w in times.windows(2) {
            prop_assert!(w[0] < w[1], "timestamps not strictly increasing: {times:?}");
        }
        if s.len() >= 2 {
            prop_assert!(rate(s).is_some());
        }
    }

    /// render -> parse -> render is the identity on arbitrary sample
    /// lists: names survive sanitization, u64 counters survive exactly
    /// (beyond 2^53), and the Value variant (Int vs Float) is preserved.
    #[test]
    fn exposition_round_trips_through_strict_parser(
        raw in prop::collection::vec(
            (0u32..1000, any::<bool>(), any::<u64>(), -1e12f64..1e12),
            0..24
        ),
        ts_some in any::<bool>(),
        ts_val in any::<u64>(),
    ) {
        let ts = ts_some.then_some(ts_val);
        let mut samples: Vec<OmSample> = Vec::new();
        for (i, (seed, is_counter, int_val, float_val)) in raw.iter().enumerate() {
            // Dotted names with digits and varying shapes, unique by
            // index; sanitize maps them onto the exposition charset.
            let name = sanitize(&format!("live.{seed}.probe_{i}"));
            if samples.iter().any(|s| s.name == name) {
                continue; // the strict parser (rightly) rejects duplicates
            }
            let (kind, value) = if *is_counter {
                (MetricKind::Counter, Value::Int(*int_val))
            } else if int_val % 2 == 0 {
                (MetricKind::Gauge, Value::Int(*int_val))
            } else {
                (MetricKind::Gauge, Value::Float(*float_val))
            };
            samples.push(OmSample::new(name, kind, value));
        }
        let text = render(&samples, ts);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("rejected own render: {e}\n{text}"));
        prop_assert_eq!(parsed.scrape_ts_ns, ts);
        prop_assert_eq!(&parsed.samples, &samples);
        prop_assert_eq!(render(&parsed.samples, parsed.scrape_ts_ns), text);
        // Stripping the timestamp is exactly "render without one".
        prop_assert_eq!(strip_timestamp(&text), render(&samples, None));
    }

    /// Labelled samples round-trip too, with hostile bytes in label
    /// values: backslashes, quotes and newlines render escaped and
    /// parse back to the original value. Strings are synthesised from
    /// byte choices because the vendored proptest shim has no string
    /// strategies.
    #[test]
    fn labelled_exposition_round_trips_with_hostile_values(
        raw in prop::collection::vec(
            prop::collection::vec(0u8..8, 0..12),
            1..12
        ),
        counters in prop::collection::vec(any::<bool>(), 12),
    ) {
        let alphabet = ['\\', '"', '\n', ' ', ',', '}', '{', '\u{00e9}'];
        let mut samples: Vec<OmSample> = Vec::new();
        for (i, choices) in raw.iter().enumerate() {
            let value: String = choices.iter().map(|&c| alphabet[c as usize]).collect();
            let kind = if counters[i % counters.len()] {
                MetricKind::Counter
            } else {
                MetricKind::Gauge
            };
            samples.push(
                OmSample::new(format!("fleet_probe_{i}"), kind, Value::Int(i as u64))
                    .with_label("host", format!("tellico-{i:04}"))
                    .with_label("v", value),
            );
        }
        let text = render(&samples, None);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("rejected own render: {e}\n{text}"));
        prop_assert_eq!(&parsed.samples, &samples);
        prop_assert_eq!(render(&parsed.samples, None), text);
    }
}
