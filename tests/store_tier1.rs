//! Tier-1 acceptance for the storage tier (DESIGN.md §12): the
//! compressed store really sits underneath both of its consumers — the
//! live monitoring ring and the registry-snapshot/archive path — and
//! the three layers agree on timestamps and values by construction.

use std::sync::Arc;

use obs::metrics::{ExportSemantics, Registry};
use obs::{Monitor, Snapshot};
use store::{Selector, SeriesKey, Store, StoreConfig, StoreSpill};

/// Registry snapshots ingested under a prefix+labels come back out of a
/// selector query with the snapshot's exact timestamps — the unified
/// snapshot→samples path end to end.
#[test]
fn registry_snapshots_flow_into_the_store_with_one_timestamp() {
    let reg = Registry::new();
    let traffic = reg.counter("memsim.mba.bytes");
    let store = Store::default();

    for tick in 1..=5u64 {
        traffic.add(1000 * tick);
        let snap = Snapshot::take(&reg, tick * 1_000_000_000);
        store
            .ingest_snapshot("pmcd.obs.", &[("host", "summit-17")], &snap)
            .expect("snapshot ingest");
    }
    store.flush().expect("flush");

    let got = store
        .query(
            &Selector::metric("pmcd.obs.memsim.*").with_label("host", "summit-17"),
            0,
            u64::MAX,
        )
        .expect("query");
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].key.metric(), "pmcd.obs.memsim.mba.bytes");
    assert_eq!(got[0].semantics, ExportSemantics::Counter);
    let ts: Vec<u64> = got[0].samples.iter().map(|s| s.t_ns).collect();
    assert_eq!(
        ts,
        (1..=5u64).map(|t| t * 1_000_000_000).collect::<Vec<_>>(),
        "stored timestamps are the snapshot timestamps, verbatim"
    );
    // Counter accumulates 1000*1 + ... + 1000*k.
    assert_eq!(got[0].samples[4].value, 1000 * 15);
    // The windowed rate over stored history uses the same obs::derive
    // math as the live monitor.
    let rate = got[0].derive(store::Derivation::Rate).expect("rate");
    assert!(rate > 0.0);
}

/// The live ring spills evicted points into the store and serves old
/// windows back transparently — a Monitor with a small ring still
/// answers queries over the whole run.
#[test]
fn live_monitor_reads_old_windows_from_the_store() {
    let reg = Registry::new();
    let c = reg.counter("fleet.fetches");
    let store = Arc::new(Store::new(StoreConfig {
        chunk_samples: 4,
        segment_bytes: 64,
        retention_ns: None,
    }));
    let spill = Arc::new(StoreSpill::new(Arc::clone(&store)).with_label("host", "h0"));
    let mut monitor = Monitor::new(3, Vec::new()).with_spill(spill);

    for tick in 1..=50u64 {
        c.add(7);
        let snap = Snapshot::take(&reg, tick * 1_000_000);
        monitor.tick(snap.t_ns, &snap.scalars);
    }

    // The ring holds only the newest 3 points...
    assert_eq!(
        monitor.store().get("fleet.fetches").map(|s| s.len()),
        Some(3)
    );
    // ...but the full 50-point history is reachable through window().
    let full = monitor.window("fleet.fetches", 0, u64::MAX);
    assert_eq!(full.len(), 50);
    assert!(full.windows(2).all(|w| w[1].t_ns > w[0].t_ns));
    assert_eq!(full[0].value, 7);
    assert_eq!(full[49].value, 350);
    // An old-only window is served purely from compressed storage.
    let old = monitor.window("fleet.fetches", 1_000_000, 10_000_000);
    assert_eq!(old.len(), 10);
    // Nothing was dropped on the floor.
    assert_eq!(monitor.store().evicted(), 0);
}

/// Retention-driven compaction keeps the store bounded while a fleet
/// keeps writing — and the surviving history is still exact.
#[test]
fn retention_bounds_a_long_run_without_corrupting_history() {
    let store = Store::new(StoreConfig {
        chunk_samples: 32,
        segment_bytes: 1024,
        retention_ns: Some(500_000),
    });
    let key = SeriesKey::new("long.count");
    for i in 1..=2_000u64 {
        store
            .ingest(&key, ExportSemantics::Counter, i * 1_000, i * 3)
            .expect("ingest");
    }
    store.flush().expect("flush");
    let before = store.fs().live_bytes();
    let stats = store.compact(2_000_000).expect("compact");
    assert!(stats.chunks_dropped > 0, "{stats:?}");
    assert!(store.fs().live_bytes() < before);

    let got = store
        .query(&Selector::metric("long.count"), 0, u64::MAX)
        .expect("query");
    let samples = &got[0].samples;
    // Whatever survived starts on a chunk boundary, is contiguous, and
    // every value is exactly what was written.
    assert!(!samples.is_empty());
    assert!(samples[0].t_ns >= 1_000);
    for w in samples.windows(2) {
        assert_eq!(w[1].t_ns, w[0].t_ns + 1_000);
    }
    for s in samples {
        assert_eq!(s.value, (s.t_ns / 1_000) * 3);
    }
    assert_eq!(samples[samples.len() - 1].t_ns, 2_000_000);
}
