//! Observability under parallelism (`--features obs`): the span tracer
//! and the metric registry are process-global, so a multi-worker repro
//! run drains to ONE coherent stream.
//!
//! * The merged span buffer must render to a Chrome trace that
//!   round-trips the strict parser in `obs::chrome` — worker threads
//!   interleave records, but every span still closes on its own thread.
//! * Registry counters fed from worker points must merge to exactly the
//!   sequential totals: addition commutes, interleaving must not.
#![cfg(feature = "obs")]

use obs::chrome::{chrome_trace_json, parse_chrome_trace, parse_json};
use repro_bench::figures;
use repro_bench::runner::{run_experiments, Experiment, Point, PointOutput, RunnerError};
use repro_bench::{point_seed, System};

/// A small measured sweep: every point runs a real instrumented kernel
/// (so memsim/kernels spans fire) and feeds the registry.
fn instrumented_sweep(points_counter: &'static str, bytes_counter: &'static str) -> Experiment {
    let mut exp = Experiment::new("obs-sweep", "instrumented gemm sweep");
    for (i, n) in [24u64, 32, 48, 64].into_iter().enumerate() {
        let seed = point_seed(90, "obs-sweep", i as u64);
        exp.push(Point::run(format!("n={n}"), move || {
            let row = figures::gemm_point(System::Summit, 1, n, 1, seed).map_err(|e| {
                RunnerError::Point {
                    experiment: "obs-sweep".into(),
                    point: format!("n={n}"),
                    message: e.to_string(),
                }
            })?;
            obs::registry().counter(points_counter).inc();
            obs::registry().counter(bytes_counter).add(row.sim_bytes());
            Ok(PointOutput::with_bytes(row.csv_line(), row.sim_bytes()))
        }));
    }
    exp
}

/// Per-worker span records drain into one buffer that still renders a
/// valid, parseable Chrome trace.
#[test]
fn parallel_spans_render_one_valid_chrome_trace() {
    let _ = obs::drain(); // discard spans from other tests in this binary
    let report = run_experiments(
        vec![instrumented_sweep(
            "repro.test.points_trace",
            "repro.test.bytes_trace",
        )],
        4,
    );
    assert!(report.experiments[0].errors.is_empty());

    let events = obs::drain();
    assert!(
        !events.is_empty(),
        "an instrumented run under --features obs must record spans"
    );
    let doc = chrome_trace_json(&events);
    parse_json(&doc).expect("chrome trace is well-formed JSON");
    let parsed = parse_chrome_trace(&doc).expect("chrome trace round-trips the strict parser");
    assert!(
        !parsed.is_empty(),
        "round-tripped trace lost all {} events",
        events.len()
    );
}

/// Counters fed concurrently from 4 workers equal the 1-worker totals.
#[test]
fn registry_merge_matches_sequential_totals() {
    let count = |name: &str| -> u64 {
        obs::registry()
            .export()
            .into_iter()
            .find(|e| e.name == name)
            .map_or(0, |e| e.value)
    };

    let p0 = count("repro.test.points_merge");
    let b0 = count("repro.test.bytes_merge");
    let serial = run_experiments(
        vec![instrumented_sweep(
            "repro.test.points_merge",
            "repro.test.bytes_merge",
        )],
        1,
    );
    assert!(serial.experiments[0].errors.is_empty());
    let p_serial = count("repro.test.points_merge") - p0;
    let b_serial = count("repro.test.bytes_merge") - b0;
    assert_eq!(p_serial, 4, "one increment per point");
    assert!(b_serial > 0);

    let parallel = run_experiments(
        vec![instrumented_sweep(
            "repro.test.points_merge",
            "repro.test.bytes_merge",
        )],
        4,
    );
    assert!(parallel.experiments[0].errors.is_empty());
    let p_parallel = count("repro.test.points_merge") - p0 - p_serial;
    let b_parallel = count("repro.test.bytes_merge") - b0 - b_serial;

    assert_eq!(p_parallel, p_serial, "point counts merge identically");
    assert_eq!(b_parallel, b_serial, "byte totals merge identically");
    assert_eq!(
        serial.experiments[0].output, parallel.experiments[0].output,
        "instrumentation must not perturb the composed output"
    );
}
