//! Access-control behaviour across the stack, and multi-component
//! EventSets over a running application.

use std::sync::Arc;

use papi_repro::memsim::{PrivilegeToken, SimMachine};
use papi_repro::nvml::{GpuDevice, GpuParams};
use papi_repro::papi::papi::setup_node;
use papi_repro::papi::{EventSet, PapiError};
use papi_repro::pcp::{Pmcd, PmcdConfig, Pmns};

/// The whole reason PCP exists: a Summit user cannot take the direct
/// path, but measures the very same counters through the daemon.
#[test]
fn summit_user_must_go_through_pcp() {
    let machine = SimMachine::quiet(papi_repro::arch::Machine::summit(), 61);
    let setup = setup_node(&machine, Vec::new());

    // Direct path: denied at event-set start.
    let mut direct = EventSet::new();
    direct
        .add_event("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0")
        .unwrap();
    assert!(matches!(
        direct.start(&setup.papi),
        Err(PapiError::ComponentDisabled { .. })
    ));

    // PCP path: works without any privilege.
    let mut via_pcp = EventSet::new();
    via_pcp
        .add_event("pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87")
        .unwrap();
    via_pcp.start(&setup.papi).unwrap();
    machine
        .socket_shared(0)
        .counters()
        .record_sector(0, papi_repro::memsim::Direction::Read);
    assert_eq!(via_pcp.stop().unwrap(), vec![64]);
}

/// A user cannot start their own privileged daemon…
#[test]
fn users_cannot_start_their_own_pmcd() {
    let machine = SimMachine::quiet(papi_repro::arch::Machine::summit(), 62);
    let pmns = Pmns::for_machine(machine.arch());
    let err = Pmcd::spawn(
        pmns,
        vec![machine.socket_shared(0)],
        &machine.privilege_token(), // a Summit user token
        PmcdConfig::default(),
    );
    assert!(err.is_err());
    // …while the user token on Tellico IS elevated and could.
    let tellico = SimMachine::quiet(papi_repro::arch::Machine::tellico(), 62);
    assert!(tellico.privilege_token().require_elevated().is_ok());
    let _ = PrivilegeToken::user();
}

/// One EventSet spanning three components, sampled while a GPU FFT
/// pipeline runs: every signal class must move.
#[test]
fn multi_component_eventset_observes_a_running_application() {
    use papi_repro::fft3d::gpu::GpuFft3dRank;
    use papi_repro::papi::components::{IbComponent, NvmlComponent, PcpComponent};
    use papi_repro::pcp::PcpContext;
    use papi_repro::ranks::{ClusterSim, ProcessGrid};

    let machine = SimMachine::quiet(papi_repro::arch::Machine::summit(), 63);
    let gpu = Arc::new(GpuDevice::new(
        0,
        GpuParams::default(),
        machine.socket_shared(0),
    ));
    let mut cluster = ClusterSim::new(machine, ProcessGrid::new(2, 4), 2);
    let rank = GpuFft3dRank::new(&mut cluster, Arc::clone(&gpu), 112, 2);

    let pmns = Pmns::for_machine(cluster.machine().arch());
    let sockets: Vec<_> = (0..cluster.machine().num_sockets())
        .map(|s| cluster.machine().socket_shared(s))
        .collect();
    let pmcd = Pmcd::spawn_system(pmns.clone(), sockets.clone(), PmcdConfig::default())
        .expect("spawn pmcd");
    let ctx = PcpContext::connect(pmcd.handle(), Some(cluster.machine().socket_shared(0)));
    let mut papi = papi_repro::papi::Papi::new();
    papi.register(Box::new(PcpComponent::new(ctx, pmns, sockets)));
    papi.register(Box::new(NvmlComponent::new(vec![Arc::clone(&gpu)])));
    papi.register(Box::new(IbComponent::new(
        cluster.fabric().node(0).hcas.clone(),
    )));

    // The instantaneous gauge goes first: the PCP fetch is a daemon
    // round-trip whose latency would advance the clock past short GPU
    // kernel segments before the gauge was sampled.
    let mut es = EventSet::new();
    es.add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power")
        .unwrap();
    es.add_event("pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87")
        .unwrap();
    es.add_event("infiniband:::mlx5_0_1_ext:port_recv_data")
        .unwrap();
    es.start(&papi).unwrap();

    let mut saw_power_spike = false;
    rank.run(&mut cluster, |_, _| {
        let v = es.read().unwrap();
        if v[0] > 200_000 {
            saw_power_spike = true;
        }
    });
    let finals = es.stop().unwrap();
    assert!(finals[1] > 0, "memory traffic observed: {finals:?}");
    assert!(saw_power_spike, "GPU kernel power spike observed");
    assert!(finals[2] > 0, "network traffic observed: {finals:?}");
}

/// Mixed-component reads preserve per-event ordering.
#[test]
fn mixed_eventset_value_ordering() {
    let machine = SimMachine::quiet(papi_repro::arch::Machine::summit(), 64);
    let setup = setup_node(&machine, Vec::new());
    let mut es = EventSet::new();
    es.add_event("nvml:::Tesla_V100-SXM2-16GB:device_0:power")
        .unwrap();
    es.add_event("pcp:::perfevent.hwcounters.nest_mba3_imc.PM_MBA3_WRITE_BYTES.value:cpu87")
        .unwrap();
    es.add_event("nvml:::Tesla_V100-SXM2-16GB:device_1:power")
        .unwrap();
    es.start(&setup.papi).unwrap();
    machine
        .socket_shared(0)
        .counters()
        .record_sector(3, papi_repro::memsim::Direction::Write);
    let v = es.read().unwrap();
    assert_eq!(v[0], 52_000); // idle power, device 0
    assert_eq!(v[1], 64); // channel-3 write bytes
    assert_eq!(v[2], 52_000); // idle power, device 1
    es.stop().unwrap();
}
