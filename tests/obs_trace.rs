//! End-to-end self-observability check: a GEMM `measure_traffic` run
//! traced with `--features obs` exports a Chrome-trace document that
//! round-trips through the exporter's own parser with every span
//! preserved. Without the feature the run records nothing and the
//! round trip degenerates to the empty document, which must still
//! parse — so the test is meaningful in both CI lanes.

use blas_kernels::{measure_traffic, BatchedGemmTrace, MeasureConfig, NestEvents};
use p9_memsim::SimMachine;
use papi_sim::papi::setup_node;

#[test]
fn gemm_measurement_trace_roundtrips_through_chrome_exporter() {
    let mut machine = SimMachine::summit(42);
    let setup = setup_node(&machine, Vec::new());
    let events = NestEvents::pcp(&machine);

    // Start from a clean ring so the document holds only this run.
    drop(obs::drain());

    let cfg = MeasureConfig {
        reps: 1,
        threads: 1,
        factored: true,
    };
    let sample = measure_traffic(
        &mut machine,
        &setup.papi,
        &events,
        |mach, t| BatchedGemmTrace::allocate(mach, 64, t),
        |k, tid, core| k.run_thread(tid, core),
        &cfg,
    )
    .expect("gemm measurement");
    assert!(sample.read_bytes > 0.0, "measurement must observe traffic");

    let recorded = obs::drain();
    #[cfg(feature = "obs")]
    {
        assert!(
            recorded
                .iter()
                .any(|e| e.label == "kernels.measure_traffic"),
            "instrumented build must trace the measurement driver; got {:?}",
            recorded.iter().map(|e| e.label).collect::<Vec<_>>()
        );
        assert!(
            recorded.iter().any(|e| e.label == "memsim.run_parallel"),
            "instrumented build must trace the simulator run"
        );
    }

    let doc = obs::chrome::chrome_trace_json(&recorded);
    let parsed = obs::chrome::parse_chrome_trace(&doc).expect("exporter output must parse");
    assert_eq!(parsed.len(), recorded.len(), "every event survives");
    for (p, e) in parsed.iter().zip(recorded.iter()) {
        assert_eq!(p.name, e.label);
        assert_eq!(p.tid, e.tid);
        let ts_ns = p.ts_us * 1000.0;
        assert!(
            (ts_ns - e.start_ns as f64).abs() < 1.0,
            "timestamp must survive with ns precision: {} vs {}",
            ts_ns,
            e.start_ns
        );
    }

    // The folded-stack exporter must agree on the span population
    // (instants are excluded from stacks by construction).
    let folded = obs::flame::folded_stacks(&recorded);
    let spans = recorded
        .iter()
        .filter(|e| e.kind == obs::trace::Kind::Span)
        .count();
    if spans > 0 {
        assert!(!folded.is_empty(), "spans must produce folded stacks");
    }
}
