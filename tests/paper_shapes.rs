//! End-to-end checks of the paper's qualitative findings, each run through
//! the full stack (kernel trace → memory hierarchy → nest counters → PAPI).

use papi_repro::kernels::{
    gemm_cache_bounds, gemm_expected, measure_traffic, BatchedGemmTrace, MeasureConfig, NestEvents,
};
use papi_repro::memsim::SimMachine;
use papi_repro::papi::papi::setup_node;

fn gemm_read_ratio(n: u64, threads: usize, quiet: bool, seed: u64) -> f64 {
    let mut machine = if quiet {
        SimMachine::quiet(papi_repro::arch::Machine::summit(), seed)
    } else {
        SimMachine::summit(seed)
    };
    let setup = setup_node(&machine, Vec::new());
    let events = NestEvents::pcp(&machine);
    let sample = measure_traffic(
        &mut machine,
        &setup.papi,
        &events,
        |m, t| BatchedGemmTrace::allocate(m, n, t),
        |k, tid, core| k.run_thread(tid, core),
        &MeasureConfig {
            reps: 3,
            threads,
            factored: true,
        },
    )
    .unwrap();
    sample.read_bytes / gemm_expected(n).batched(threads).read_bytes
}

/// Fig. 3b / 4b: the batched GEMM's traffic jumps once each core's ~5 MB
/// L3 share is exceeded (past the Eq. 4 bound at N ≈ 809)…
#[test]
fn batched_gemm_jumps_past_the_cache_bound() {
    let (lo, hi) = gemm_cache_bounds(papi_repro::arch::L3_PER_CORE_BYTES);
    assert_eq!((lo, hi), (467, 809));
    // N = 448 sits below Eq. 3 (all three matrices fit a 5 MB share);
    // N = 1280 is past Eq. 4.
    let below = gemm_read_ratio(448, 21, true, 31);
    let above = gemm_read_ratio(1280, 21, true, 31);
    assert!((0.9..1.3).contains(&below), "below bound: ratio {below}");
    assert!(above > 10.0, "past bound the traffic must jump: {above}");
}

/// …while the single-threaded GEMM shows NO jump at the same sizes,
/// because one active core borrows the idle cores' L3 slices (110 MB).
#[test]
fn single_thread_gemm_does_not_jump_thanks_to_slice_borrowing() {
    let below = gemm_read_ratio(448, 1, true, 32);
    let above = gemm_read_ratio(1280, 1, true, 32);
    assert!((0.9..1.3).contains(&below), "ratio {below}");
    assert!(
        (0.9..1.5).contains(&above),
        "single-threaded N=1280 must stay near expectation: {above}"
    );
}

/// Fig. 2 vs Fig. 3: one repetition of a small kernel is noise-dominated;
/// Eq. 5 repetitions recover the expectation.
#[test]
fn adaptive_repetitions_recover_small_kernel_traffic() {
    let n = 96u64;
    let one_rep = |seed| {
        let mut machine = SimMachine::summit(seed);
        let setup = setup_node(&machine, Vec::new());
        let events = NestEvents::pcp(&machine);
        measure_traffic(
            &mut machine,
            &setup.papi,
            &events,
            |m, t| BatchedGemmTrace::allocate(m, n, t),
            |k, tid, core| k.run_thread(tid, core),
            &MeasureConfig {
                reps: 1,
                threads: 1,
                factored: true,
            },
        )
        .unwrap()
        .read_bytes
    };
    let many_reps = |seed| {
        let mut machine = SimMachine::summit(seed);
        let setup = setup_node(&machine, Vec::new());
        let events = NestEvents::pcp(&machine);
        measure_traffic(
            &mut machine,
            &setup.papi,
            &events,
            |m, t| BatchedGemmTrace::allocate(m, n, t),
            |k, tid, core| k.run_thread(tid, core),
            &MeasureConfig {
                reps: papi_repro::kernels::repetitions(n),
                threads: 1,
                factored: true,
            },
        )
        .unwrap()
        .read_bytes
    };
    let expect = gemm_expected(n).read_bytes;
    // Average absolute relative error across a few seeds.
    let seeds = [41u64, 42, 43, 44, 45];
    let err1: f64 = seeds
        .iter()
        .map(|&s| (one_rep(s) - expect).abs() / expect)
        .sum::<f64>()
        / seeds.len() as f64;
    let err_n: f64 = seeds
        .iter()
        .map(|&s| (many_reps(s) - expect).abs() / expect)
        .sum::<f64>()
        / seeds.len() as f64;
    assert!(
        err_n * 5.0 < err1,
        "Eq. 5 repetitions must cut the error hard: 1 rep {err1:.3}, many {err_n:.3}"
    );
    assert!(err_n < 0.2, "residual error {err_n:.3}");
}

/// Section IV: the re-sorting routines' read:write signatures, through the
/// full measurement stack.
#[test]
fn resort_read_write_signatures() {
    use papi_repro::fft3d::resort::{LocalDims, ResortTrace, S1cfCombined, S1cfNest1, S2cf};

    fn ratio<T: ResortTrace>(t: &T, machine: &mut SimMachine) -> f64 {
        let shared = machine.socket_shared(0);
        let before = shared.counters().snapshot();
        let active = machine.arch().node.sockets[0].usable_cores;
        machine.run_parallel(0, active, |tid, core| {
            if tid == 0 {
                t.run(core);
            }
        });
        machine.flush_socket(0);
        let d = shared.counters().snapshot().delta(&before);
        d.total_read() as f64 / d.total_write() as f64
    }

    let dims = LocalDims::for_grid(224, 2, 4);

    let mut m = SimMachine::quiet(papi_repro::arch::Machine::summit(), 51);
    let nest1 = S1cfNest1::allocate(&mut m, dims);
    let r = ratio(&nest1, &mut m);
    assert!(
        (0.9..1.15).contains(&r),
        "S1CF nest 1 must be ~1:1, got {r}"
    );

    let mut m = SimMachine::quiet(papi_repro::arch::Machine::summit(), 52);
    let comb = S1cfCombined::allocate(&mut m, dims);
    let r = ratio(&comb, &mut m);
    assert!(
        (1.7..2.3).contains(&r),
        "combined S1CF must be ~2:1, got {r}"
    );

    let mut m = SimMachine::quiet(papi_repro::arch::Machine::summit(), 53);
    let s2 = S2cf::for_grid(&mut m, 224, 2, 4);
    let r = ratio(&s2, &mut m);
    assert!((0.9..1.15).contains(&r), "S2CF must be ~1:1, got {r}");
}

/// Fig. 10's bandwidth ordering: S2CF sustains higher bandwidth than S1CF
/// at the same problem size (better locality).
#[test]
fn s2cf_outperforms_s1cf_in_bandwidth() {
    use papi_repro::fft3d::resort::{LocalDims, ResortTrace, S1cfCombined, S2cf};

    fn bandwidth(run: impl FnOnce(&mut SimMachine) -> (u64, f64)) -> f64 {
        let mut m = SimMachine::quiet(papi_repro::arch::Machine::summit(), 54);
        let (bytes, secs) = run(&mut m);
        bytes as f64 / secs
    }

    let bw_s1 = bandwidth(|m| {
        let t = S1cfCombined::allocate(m, LocalDims::for_grid(336, 4, 8));
        let shared = m.socket_shared(0);
        let b = shared.counters().snapshot();
        let t0 = shared.now_seconds();
        let active = m.arch().node.sockets[0].usable_cores;
        m.run_parallel(0, active, |tid, core| {
            if tid == 0 {
                t.run(core)
            }
        });
        let d = shared.counters().snapshot().delta(&b);
        (d.total_read() + d.total_write(), shared.now_seconds() - t0)
    });
    let bw_s2 = bandwidth(|m| {
        let t = S2cf::for_grid(m, 336, 4, 8);
        let shared = m.socket_shared(0);
        let b = shared.counters().snapshot();
        let t0 = shared.now_seconds();
        let active = m.arch().node.sockets[0].usable_cores;
        m.run_parallel(0, active, |tid, core| {
            if tid == 0 {
                t.run(core)
            }
        });
        let d = shared.counters().snapshot().delta(&b);
        (d.total_read() + d.total_write(), shared.now_seconds() - t0)
    });
    assert!(
        bw_s2 > bw_s1,
        "S2CF must beat S1CF in bandwidth: {bw_s2:.3e} vs {bw_s1:.3e}"
    );
}
