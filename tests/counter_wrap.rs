//! Counter-wrap edge cases: u64 counters within one delta of
//! `u64::MAX` driven through every layer that interprets them —
//! `obs::derive` window math, compressed store ingest/query, and
//! OpenMetrics render/parse. These tests *pin* the saturation
//! semantics:
//!
//! - counter deltas are `last.saturating_sub(first)` — a counter that
//!   goes backwards (daemon restart, wrap) derives as zero, never as an
//!   underflowed garbage value;
//! - storage and exposition carry `u64` values exactly at the extremes,
//!   so saturation happens in exactly one place (derivation), not
//!   silently in transport or at rest.

use obs::metrics::ExportSemantics;
use obs::openmetrics::{parse, render, strip_timestamp, MetricKind, OmSample, Value};
use obs::SeriesStore;
use store::{Selector, SeriesKey, Store};

fn counter_series(samples: &[(u64, u64)]) -> SeriesStore {
    let mut ring = SeriesStore::new(samples.len().max(2));
    for &(t_ns, value) in samples {
        ring.push("wrap.probe", ExportSemantics::Counter, t_ns, value);
    }
    ring
}

/// One step below the top of the range: the delta is exact.
#[test]
fn delta_one_below_max_is_exact() {
    let ring = counter_series(&[(1, u64::MAX - 1), (2, u64::MAX)]);
    let s = ring.get("wrap.probe").unwrap();
    assert_eq!(obs::derive::delta(s), Some(1));
    let r = obs::derive::rate(s).unwrap();
    assert!(r > 0.0 && r.is_finite());
}

/// A counter that falls off the top (wrap or daemon restart) saturates
/// to a zero delta — the pinned semantics that makes the crash/restart
/// archive (tests/chaos_wire.rs) derivable without special cases.
#[test]
fn delta_across_a_reset_saturates_to_zero() {
    let ring = counter_series(&[(1, u64::MAX), (2, 5)]);
    let s = ring.get("wrap.probe").unwrap();
    assert_eq!(
        obs::derive::delta(s),
        Some(0),
        "reset must derive as zero, not underflow"
    );
    assert_eq!(obs::derive::rate(s), Some(0.0));
}

/// Saturation is per-window, not per-step: a reset *inside* the window
/// still derives from endpoints only. first=MAX, ..., last=MAX-1 is a
/// backwards window end to end, so it saturates to zero even though the
/// counter moved forward after the reset.
#[test]
fn reset_inside_the_window_still_saturates_on_endpoints() {
    let ring = counter_series(&[(1, u64::MAX), (2, 10), (3, u64::MAX - 1)]);
    let s = ring.get("wrap.probe").unwrap();
    assert_eq!(obs::derive::delta(s), Some(0));
}

/// Instant (gauge) semantics do NOT saturate — signed distance is the
/// point of an instant series. The two semantics must stay distinct.
#[test]
fn instant_series_keep_signed_deltas() {
    let mut ring = SeriesStore::new(2);
    ring.push("wrap.gauge", ExportSemantics::Instant, 1, 100);
    ring.push("wrap.gauge", ExportSemantics::Instant, 2, 40);
    let s = ring.get("wrap.gauge").unwrap();
    assert_eq!(obs::derive::delta(s), Some(-60));
}

/// Pinned limitation: `delta` returns `i64`, so a *forward* counter
/// delta wider than `i64::MAX` wraps in the cast (u64::MAX saturates the
/// subtraction, then reinterprets as -1). The simulator's byte counters
/// cannot move 2^63 in one window — this test documents the edge so a
/// future widening of the return type is a deliberate semantic change.
#[test]
fn full_range_forward_delta_wraps_in_the_i64_cast() {
    let ring = counter_series(&[(1, 0), (2, u64::MAX)]);
    let s = ring.get("wrap.probe").unwrap();
    assert_eq!(obs::derive::delta(s), Some(-1));
}

/// The compressed store round-trips extreme u64 values exactly —
/// including across a sealed-chunk boundary, so both the head path and
/// the delta-of-delta/XOR codec see the top of the range.
#[test]
fn store_round_trips_values_at_the_top_of_the_range() {
    let store = Store::default();
    let key = SeriesKey::new("wrap.bytes").with_label("host", "h0");
    // Enough samples to seal at least one chunk with the default config,
    // oscillating within one delta of the top.
    let n = store.config().chunk_samples * 2 + 7;
    let mut want = Vec::with_capacity(n);
    for i in 0..n {
        let t_ns = 10 + i as u64;
        let value = u64::MAX - (i as u64 % 2);
        store
            .ingest(&key, ExportSemantics::Counter, t_ns, value)
            .expect("ingest");
        want.push((t_ns, value));
    }
    store.flush().expect("flush");
    let got = store
        .query(&Selector::metric("wrap.bytes"), 0, u64::MAX)
        .expect("query");
    assert_eq!(got.len(), 1, "one series expected");
    let samples: Vec<(u64, u64)> = got[0].samples.iter().map(|s| (s.t_ns, s.value)).collect();
    assert_eq!(samples, want, "lossy codec at the top of the u64 range");
}

/// Monotone near-MAX ramps (the realistic wrap approach) also survive
/// the codec exactly.
#[test]
fn store_round_trips_a_ramp_into_max() {
    let store = Store::default();
    let key = SeriesKey::new("wrap.ramp");
    let n = 64u64;
    for i in 0..n {
        store
            .ingest(
                &key,
                ExportSemantics::Counter,
                1 + i,
                u64::MAX - (n - 1) + i,
            )
            .expect("ingest");
    }
    store.flush().expect("flush");
    let got = store
        .query(&Selector::metric("wrap.ramp"), 0, u64::MAX)
        .expect("query");
    let values: Vec<u64> = got[0].samples.iter().map(|s| s.value).collect();
    assert_eq!(values.last(), Some(&u64::MAX));
    assert!(values.windows(2).all(|w| w[1] == w[0] + 1));
}

/// OpenMetrics integers are exact at the extremes: render ∘ parse is the
/// identity for u64::MAX, and the value survives as `Int` (never
/// silently degraded to a lossy float).
#[test]
fn openmetrics_round_trips_u64_max_exactly() {
    let samples = vec![
        OmSample::new("wrap_total", MetricKind::Counter, Value::Int(u64::MAX))
            .with_label("chan", "0"),
        OmSample::new("wrap_total", MetricKind::Counter, Value::Int(u64::MAX - 1))
            .with_label("chan", "1"),
        OmSample::new("wrap_floor", MetricKind::Gauge, Value::Int(0)),
    ];
    let text = render(&samples, Some(123));
    let parsed = parse(&text).expect("render output parses");
    assert_eq!(parsed.scrape_ts_ns, Some(123));
    assert_eq!(parsed.samples, samples, "render/parse not an identity");
    // u64::MAX is not representable in f64; an exact text round-trip
    // proves no float path touched the value.
    assert!(text.contains(&u64::MAX.to_string()));
    // strip_timestamp keeps the values, drops only the scrape header.
    let stripped = strip_timestamp(&text);
    let reparsed = parse(&stripped).expect("stripped output parses");
    assert_eq!(reparsed.scrape_ts_ns, None);
    assert_eq!(reparsed.samples, samples);
}
