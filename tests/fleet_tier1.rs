//! Tier-1 acceptance for the fleet federation tier (DESIGN.md §14):
//! a small fleet scrapes end to end over the real wire, the merged
//! document is deterministic across fan-out widths, federation labels
//! survive into the store, and the single-host fault drill alerts on
//! exactly the killed host.

use fleet::{host_name, Aggregator, AggregatorConfig, Fleet};

const SEC: u64 = 1_000_000_000;

fn aggregator(fleet: &Fleet, workers: usize) -> Aggregator {
    Aggregator::new(
        fleet,
        AggregatorConfig {
            workers,
            ..AggregatorConfig::default()
        },
    )
}

/// The federation pipeline end to end: N live PMCDs → fan-out scrape →
/// relabel → merge → monitor/store — deterministic regardless of the
/// worker count, and faults isolate to the failing host.
#[test]
fn small_fleet_federates_deterministically_and_isolates_faults() {
    // Two fresh fleets from one seed, scraped with different fan-out
    // widths, must produce byte-identical merged host documents.
    let host_texts: Vec<String> = [1usize, 4]
        .iter()
        .map(|&workers| {
            let fleet = Fleet::spawn(3, 0x7E11).expect("spawn fleet");
            let mut agg = aggregator(&fleet, workers);
            fleet.tick_traffic(1);
            let report = agg.scrape_pass(SEC);
            assert_eq!(report.scraped, 3);
            assert!(report.alerts.is_empty(), "clean fleet alerted");
            report.host_text
        })
        .collect();
    assert_eq!(host_texts[0], host_texts[1]);
    for i in 0..3 {
        assert!(host_texts[0].contains(&format!(r#"host="{}""#, host_name(i))));
    }

    // One fleet, carried on: per-host series are queryable by the
    // federation label, and killing one host trips exactly its alert.
    let mut fleet = Fleet::spawn(3, 0x7E11).expect("spawn fleet");
    let mut agg = aggregator(&fleet, 4);
    fleet.tick_traffic(1);
    assert!(agg.scrape_pass(SEC).alerts.is_empty());

    fleet.kill_host(1);
    fleet.tick_traffic(2);
    let fault = agg.scrape_pass(2 * SEC);
    assert_eq!(fault.scraped, 2);
    assert_eq!(fault.stale, vec![host_name(1)]);
    assert_eq!(fault.alerts.len(), 1, "alerts: {:?}", fault.alerts);
    assert_eq!(fault.alerts[0].rule, "alert.fleet.host_stale");
    assert_eq!(fault.alerts[0].metric, "fleet.host.stale.tellico-0001");

    let sel = store::Selector::metric("pmcd_obs_host_sim_bytes").with_label("host", host_name(0));
    let got = agg.store().query(&sel, 0, u64::MAX).expect("query");
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].samples.len(), 2, "host 0 ingested on both passes");
}
