//! The paper's future work: "extend these techniques to accurately
//! measure memory traffic for other BLAS operations in upcoming IBM
//! systems (e.g. POWER10)". The measurement stack is machine-agnostic:
//! point it at a POWER10-class description and everything — PMNS, PCP
//! daemon, event sets, expectation checks — works unchanged.

use papi_repro::arch::Machine;
use papi_repro::kernels::{gemm_expected, GemmTrace};
use papi_repro::memsim::SimMachine;
use papi_repro::papi::papi::setup_node;
use papi_repro::papi::EventSet;

#[test]
fn the_full_stack_runs_on_a_power10_class_machine() {
    let arch = Machine::power10_like();
    assert_eq!(arch.node.sockets[0].usable_cores, 15);
    let mut machine = SimMachine::quiet(arch, 71);
    let setup = setup_node(&machine, Vec::new());

    // The PMNS publishes the nest metrics on this machine's own last
    // hardware thread (16 cores x SMT8 -> cpu 127).
    let mut es = EventSet::new();
    for ch in 0..8 {
        es.add_event(&format!(
            "pcp:::perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_READ_BYTES.value:cpu127"
        ))
        .unwrap();
    }

    // Warm-up + measured rep of a GEMM, as on POWER9.
    let n = 256;
    let warm = GemmTrace::allocate(&mut machine, n);
    machine.run_single(0, |core| warm.run(core));
    let t = GemmTrace::allocate(&mut machine, n);
    es.start(&setup.papi).unwrap();
    machine.run_single(0, |core| t.run(core));
    let vals = es.stop().unwrap();
    let reads: i64 = vals.iter().sum();

    let expect = gemm_expected(n).read_bytes;
    let ratio = reads as f64 / expect;
    assert!(
        (0.9..1.2).contains(&ratio),
        "POWER10-class GEMM expectation holds: ratio {ratio}"
    );
}

#[test]
fn power10_larger_l3_moves_the_cache_bounds() {
    use papi_repro::kernels::gemm_cache_bounds;
    let p9 = SimMachine::quiet(Machine::summit(), 1);
    let p10 = SimMachine::quiet(Machine::power10_like(), 1);
    // All-cores share: POWER10-class regions are larger per core.
    let p9_share = p9.l3_share(0, 21);
    let p10_share = p10.l3_share(0, 15);
    assert!(p10_share > p9_share);
    let (lo9, hi9) = gemm_cache_bounds(p9_share);
    let (lo10, hi10) = gemm_cache_bounds(p10_share);
    assert!(lo10 > lo9 && hi10 > hi9, "bounds scale with the cache");
}
