//! Live-monitoring acceptance tests (ISSUE 5 tentpole):
//!
//! * the OpenMetrics exposition is byte-identical whether rendered
//!   in-process or scraped over TCP (modulo the `# scrape_ts_ns`
//!   header), under concurrent clients;
//! * every scraped document survives the strict in-repo parser, and a
//!   scraper's consecutive documents have monotone counters;
//! * the HTTP sidecar speaks enough HTTP for `curl` and rejects what it
//!   does not speak;
//! * a traced wire fetch stitches into one cross-process critical path
//!   whose component shares sum to the measured RTT exactly.
//!
//! The global obs registry is process-wide and some of its counters
//! (`wire.scrape.*`) are bumped by the listeners under test, so the
//! tests serialize on a static lock instead of racing each other's
//! scrape traffic.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use obs::openmetrics::{parse, strip_timestamp, Exposition, MetricKind, Value};
use p9_memsim::SimMachine;
use pcp_sim::pmns::{InstanceId, Pmns};
use pcp_sim::PmApi;
use pcp_wire::{PmcdServer, ScrapeListener, WireClient, WireConfig};

static SEQ: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SEQ.lock().unwrap_or_else(|e| e.into_inner())
}

fn start_stack() -> (SimMachine, PmcdServer, ScrapeListener) {
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 7);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let server = PmcdServer::bind_system("127.0.0.1:0", pmns, sockets, WireConfig::default())
        .expect("bind server");
    let scrape = ScrapeListener::bind("127.0.0.1:0", &server).expect("bind scrape listener");
    (machine, server, scrape)
}

/// Minimal HTTP client: one GET, returns (status line, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect scrape listener");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").as_bytes())
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response has a blank line");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

/// Strict-parse one exposition document or panic with the offender.
fn must_parse(doc: &str) -> Exposition {
    parse(doc).unwrap_or_else(|e| panic!("scraped document rejected: {e}\n{doc}"))
}

/// Every counter in `later` is at least its value in `earlier`.
fn assert_monotone(earlier: &Exposition, later: &Exposition) {
    for prev in &earlier.samples {
        if prev.kind != MetricKind::Counter {
            continue;
        }
        let Some(next) = later.samples.iter().find(|s| s.name == prev.name) else {
            panic!("counter {} vanished between scrapes", prev.name);
        };
        let (Value::Int(a), Value::Int(b)) = (prev.value, next.value) else {
            panic!("counter {} is not integral", prev.name);
        };
        assert!(b >= a, "counter {} went backwards: {a} -> {b}", prev.name);
    }
}

/// Tentpole acceptance: concurrent scrapers over both transports, every
/// document strictly parsed and per-scraper monotone; then, quiesced,
/// the in-process render and a TCP scrape agree byte for byte once the
/// timestamp header is stripped.
#[test]
fn exposition_parity_under_concurrent_clients() {
    let _guard = lock();
    let (machine, server, scrape) = start_stack();
    let pmns = Pmns::for_machine(machine.arch());
    let id = pmns
        .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
        .expect("nest metric resolves");
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        // Fetch traffic keeps the self-metric counters moving while the
        // scrapers read them.
        for _ in 0..3 {
            let stop = &stop;
            let addr = server.local_addr();
            scope.spawn(move || {
                let c = WireClient::connect(addr).expect("fetch client connects");
                while !stop.load(Ordering::Relaxed) {
                    c.pm_fetch(&[(id, InstanceId(87))]).expect("fetch");
                }
            });
        }
        let mut scrapers = Vec::new();
        for i in 0..4 {
            let pdu_addr = server.local_addr();
            let http_addr = scrape.local_addr();
            scrapers.push(scope.spawn(move || {
                let c = WireClient::connect(pdu_addr).expect("scrape client connects");
                let mut prev: Option<Exposition> = None;
                for round in 0..6 {
                    // Odd scrapers alternate transports; the documents
                    // must be interchangeable.
                    let doc = if (i + round) % 2 == 0 {
                        c.scrape_exposition().expect("pdu scrape")
                    } else {
                        let (status, body) = http_get(http_addr, "/metrics");
                        assert!(status.contains("200"), "{status}");
                        body
                    };
                    let parsed = must_parse(&doc);
                    assert!(
                        parsed.scrape_ts_ns.is_some(),
                        "scrape carries its timestamp"
                    );
                    assert!(
                        parsed.samples.iter().any(|s| s.name == "pmcd_fetch_count"),
                        "self-metrics present"
                    );
                    if let Some(prev) = &prev {
                        assert_monotone(prev, &parsed);
                    }
                    prev = Some(parsed);
                }
            }));
        }
        for s in scrapers {
            s.join().expect("scraper");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesced: nothing moves the counters now, so one TCP scrape and
    // one in-process render must agree exactly modulo the timestamp.
    let (status, tcp_doc) = http_get(scrape.local_addr(), "/metrics");
    assert!(status.contains("200"), "{status}");
    let local_doc = server.exposition();
    assert_eq!(
        strip_timestamp(&tcp_doc),
        strip_timestamp(&local_doc),
        "in-process and TCP expositions diverge"
    );
    // Both carry different timestamps but the same strict structure.
    assert_ne!(tcp_doc, String::new());
    must_parse(&local_doc);
}

/// The sidecar is honest HTTP: unknown routes 404, garbage 400, and the
/// happy path carries the OpenMetrics content type.
#[test]
fn scrape_listener_speaks_minimal_http() {
    let _guard = lock();
    let (_machine, server, scrape) = start_stack();
    let _ = &server;

    let (status, body) = http_get(scrape.local_addr(), "/metrics");
    assert!(status.starts_with("HTTP/1.1 200"), "{status}");
    must_parse(&body);
    let (status, body) = http_get(scrape.local_addr(), "/");
    assert!(status.contains("200"), "{status}");
    must_parse(&body);

    let (status, _) = http_get(scrape.local_addr(), "/nope");
    assert!(status.contains("404"), "{status}");

    let mut stream = TcpStream::connect(scrape.local_addr()).expect("connect");
    stream
        .write_all(b"BREW /coffee HTCPCP/1.0\r\n\r\n")
        .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    assert!(raw.starts_with("HTTP/1.1 400"), "{raw}");
}

/// A batch fetching the same obs counter twice must answer both slots
/// from one registry snapshot, even while another thread hammers the
/// counter (satellite: the old code re-exported the registry per
/// request and could return torn batches).
#[test]
fn obs_fetches_are_snapshot_coherent_within_a_batch() {
    let _guard = lock();
    let (_machine, server, _scrape) = start_stack();
    let counter = obs::registry().counter("obslive.torn_batch_probe");
    counter.add(1);
    let c = WireClient::connect(server.local_addr()).expect("connect");
    let id = c
        .pm_lookup_name("pmcd.obs.obslive.torn_batch_probe")
        .expect("obs metric resolves over the wire");

    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                counter.inc();
            }
        });
        for _ in 0..200 {
            let values = c
                .pm_fetch(&[(id, InstanceId(0)), (id, InstanceId(0))])
                .expect("batch fetch");
            assert_eq!(
                values[0], values[1],
                "one batch answered from two registry states"
            );
        }
        stop.store(true, Ordering::Relaxed);
    });
}

/// Tentpole acceptance: the trace id stamped into the fetch PDU stitches
/// the client and server spans into one trace whose mechanical
/// decomposition conserves the measured RTT exactly, and the merged
/// event list round-trips through the strict Chrome parser.
#[test]
fn stitched_trace_decomposes_wire_fetch_latency() {
    let _guard = lock();
    let (machine, server, _scrape) = start_stack();
    let pmns = Pmns::for_machine(machine.arch());
    let id = pmns
        .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
        .expect("nest metric resolves");

    // Clean rings: the stitched document should hold only this traffic.
    drop(obs::drain());
    let c = WireClient::connect(server.local_addr()).expect("connect");
    for _ in 0..10 {
        c.pm_fetch(&[(id, InstanceId(87))]).expect("fetch");
    }
    let events = obs::drain();

    #[cfg(feature = "obs")]
    {
        let ids = obs::stitch::trace_ids(&events);
        assert!(ids.len() >= 10, "expected 10 traced fetches, got {ids:?}");
        for tid in &ids {
            let path = obs::critical_path(&events, *tid)
                .unwrap_or_else(|| panic!("trace {tid} did not stitch"));
            assert_eq!(
                path.total(),
                path.rtt_ns,
                "decomposition must conserve the RTT exactly: {path:?}"
            );
            assert!(path.rtt_ns > 0, "{path:?}");
        }
        let mean = obs::stitch::mean_critical_path(&events).expect("mean path");
        assert_eq!(mean.total(), mean.rtt_ns);
        // The server did real work on the critical path, not just wire.
        assert!(
            mean.component("server.fetch") + mean.component("server.dispatch") > 0,
            "{mean:?}"
        );

        // The merged two-process event list is a valid Chrome trace.
        let doc = obs::chrome::chrome_trace_json(&events);
        let parsed = obs::chrome::parse_chrome_trace(&doc).expect("strict chrome parse");
        assert_eq!(parsed.len(), events.len(), "every stitched event survives");
    }
    #[cfg(not(feature = "obs"))]
    {
        // Without span call sites nothing stitches — but nothing panics
        // either, and the trace-id handout still advanced.
        assert!(obs::stitch::trace_ids(&events).is_empty());
        assert!(obs::trace::next_trace_id() > 10);
    }
}
