//! Quickstart: measure the memory traffic of a kernel through the PAPI
//! PCP component on a simulated Summit node.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! This walks the full stack the paper describes: a simulated POWER9
//! socket with nest MBA counters, a privileged PMCD daemon exporting them,
//! an unprivileged PAPI client measuring through PCP — and, for contrast,
//! the direct `perf_uncore` path being denied to an ordinary Summit user.

use papi_repro::kernels::GemmTrace;
use papi_repro::memsim::SimMachine;
use papi_repro::papi::papi::setup_node;
use papi_repro::papi::{EventSet, PapiError};

fn main() -> Result<(), PapiError> {
    // A Summit node with its realistic measurement-noise model.
    let mut machine = SimMachine::summit(42);
    let setup = setup_node(&machine, Vec::new());

    println!("components on this node:");
    for s in setup.papi.component_status() {
        match (&s.enabled, &s.reason) {
            (true, _) => println!("  {:<12} enabled", s.name),
            (false, Some(r)) => println!("  {:<12} DISABLED: {r}", s.name),
            _ => {}
        }
    }
    println!();

    // Build a multi-channel event set from the paper's Table I strings.
    let mut es = EventSet::new();
    for ch in 0..8 {
        es.add_event(&format!(
            "pcp:::perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_READ_BYTES.value:cpu87"
        ))?;
        es.add_event(&format!(
            "pcp:::perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_WRITE_BYTES.value:cpu87"
        ))?;
    }

    // A 512x512 reference GEMM, traced through the memory hierarchy.
    let n = 512;
    let gemm = GemmTrace::allocate(&mut machine, n);
    es.start(&setup.papi)?;
    machine.run_single(0, |core| gemm.run(core));
    let counts = es.stop()?;

    let reads: i64 = counts.iter().step_by(2).sum();
    let writes: i64 = counts.iter().skip(1).step_by(2).sum();
    let expected = papi_repro::kernels::gemm_expected(n);
    println!("GEMM N = {n} (one repetition, via PCP):");
    println!("  measured reads : {reads:>12} B");
    println!(
        "  expected reads : {:>12.0} B  (3·N²·8)",
        expected.read_bytes
    );
    println!("  measured writes: {writes:>12} B");
    println!(
        "  (writes appear as evictions; small problems remain cached — \
         that is the paper's point about repetitions)"
    );

    // The direct path is not available to Summit users:
    let mut direct = EventSet::new();
    direct.add_event("power9_nest_mba0::PM_MBA0_READ_BYTES:cpu=0")?;
    match direct.start(&setup.papi) {
        Err(PapiError::ComponentDisabled { component, reason }) => {
            println!("\ndirect path: {component} disabled ({reason})");
        }
        other => println!("\nunexpected: {other:?}"),
    }
    Ok(())
}
