//! A compact Fig.-11-style run: profile a GPU-accelerated 3D-FFT rank
//! with one multi-component PAPI event set, then print an ASCII strip
//! chart of each signal.
//!
//! ```sh
//! cargo run --release --example fft_profile
//! ```

use std::sync::Arc;

use papi_repro::fft3d::gpu::GpuFft3dRank;
use papi_repro::ib;
use papi_repro::nvml::{GpuDevice, GpuParams};
use papi_repro::papi::components::{IbComponent, NvmlComponent, PcpComponent};
use papi_repro::pcp::{PcpContext, Pmcd, PmcdConfig, Pmns};
use papi_repro::profiling::{Column, Profiler};
use papi_repro::ranks::{ClusterSim, ProcessGrid};

fn main() {
    let n = 448;
    let machine = papi_repro::memsim::SimMachine::summit(11);
    let gpu = Arc::new(GpuDevice::new(
        0,
        GpuParams::default(),
        machine.socket_shared(0),
    ));
    let mut cluster = ClusterSim::new(machine, ProcessGrid::new(2, 4), 2);
    let rank = GpuFft3dRank::new(&mut cluster, Arc::clone(&gpu), n, 4);

    // Wire a PAPI instance spanning three components.
    let pmns = Pmns::for_machine(cluster.machine().arch());
    let sockets: Vec<_> = (0..cluster.machine().num_sockets())
        .map(|s| cluster.machine().socket_shared(s))
        .collect();
    let pmcd = Pmcd::spawn_system(pmns.clone(), sockets.clone(), PmcdConfig::default())
        .expect("spawn pmcd");
    let ctx = PcpContext::connect(pmcd.handle(), Some(cluster.machine().socket_shared(0)));
    let hcas: Vec<Arc<ib::Hca>> = cluster.fabric().node(0).hcas.clone();
    let mut papi = papi_repro::papi::Papi::new();
    papi.register(Box::new(PcpComponent::new(ctx, pmns, sockets)));
    papi.register(Box::new(NvmlComponent::new(vec![Arc::clone(&gpu)])));
    papi.register(Box::new(IbComponent::new(hcas)));

    let columns = vec![
        Column::gauge("nvml:::Tesla_V100-SXM2-16GB:device_0:power", "gpu-power"),
        Column::counter(
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
            "mem-read",
        )
        .scaled(8.0),
        Column::counter(
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
            "mem-write",
        )
        .scaled(8.0),
        Column::counter("infiniband:::mlx5_0_1_ext:port_recv_data", "ib-recv").scaled(2.0),
    ];
    let mut profiler = Profiler::start(&papi, columns).unwrap();

    rank.run(&mut cluster, |phase, cl| {
        profiler
            .tick(phase, cl.machine().socket_shared(0).now_seconds())
            .unwrap();
    });
    let timeline = profiler.finish().unwrap();

    println!("3D-FFT (N = {n}, 2x4 grid) — one rank, three components:\n");
    for col in 0..timeline.columns.len() {
        println!("{}", timeline.ascii_chart(col, 50));
    }
    println!("phase means (mW, B/s, B/s, words/s):");
    for (phase, means) in timeline.phase_summary() {
        println!(
            "  {phase:<9} {:>9.0} {:>12.3e} {:>12.3e} {:>12.3e}",
            means[0], means[1], means[2], means[3]
        );
    }
}
