//! Counter validation and the adaptive-repetition scheme on both systems.
//!
//! ```sh
//! cargo run --release --example blas_validation
//! ```
//!
//! 1. Runs the Counter-Analysis-Toolkit-style identity checks against both
//!    measurement paths (PCP on Summit, perf_uncore on Tellico).
//! 2. Demonstrates Equation 5: measuring a small GEMM once is hopeless,
//!    measuring it `Repetitions(N)` times inside one counter region
//!    recovers the expectation — on both paths, with the same accuracy.

use papi_repro::kernels::{
    gemm_expected, measure_traffic, repetitions, BatchedGemmTrace, MeasureConfig, NestEvents,
};
use papi_repro::memsim::SimMachine;
use papi_repro::papi::papi::setup_node;
use papi_repro::papi::validate::{
    pcp_nest_event_names, uncore_nest_event_names, validate_nest_traffic,
};

fn main() {
    // --- 1. Event validation on quiet machines. -------------------------
    for (name, mut machine, events) in [
        (
            "summit/pcp",
            SimMachine::quiet(papi_repro::arch::Machine::summit(), 1),
            None,
        ),
        (
            "tellico/perf_uncore",
            SimMachine::quiet(papi_repro::arch::Machine::tellico(), 1),
            Some(uncore_nest_event_names()),
        ),
    ] {
        let setup = setup_node(&machine, Vec::new());
        let (reads, writes) = events.unwrap_or_else(|| pcp_nest_event_names(&machine));
        let report =
            validate_nest_traffic(&setup.papi, &mut machine, &reads, &writes, 8 << 20).unwrap();
        println!(
            "{name:<22} {} checks, max relative error {:.4} -> {}",
            report.checks.len(),
            report.max_error(),
            if report.all_within(0.02) {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
    println!();

    // --- 2. Repetitions tame the noise (Eq. 5). --------------------------
    let n = 128u64;
    println!("GEMM N = {n}: noise vs repetitions (realistic Summit noise)");
    println!("reps,measured_read,expected_read,rel_error");
    for reps in [1u32, 8, 64, repetitions(n)] {
        let mut machine = SimMachine::summit(7);
        let setup = setup_node(&machine, Vec::new());
        let events = NestEvents::pcp(&machine);
        let sample = measure_traffic(
            &mut machine,
            &setup.papi,
            &events,
            |m, t| BatchedGemmTrace::allocate(m, n, t),
            |k, tid, core| k.run_thread(tid, core),
            &MeasureConfig {
                reps,
                threads: 1,
                factored: true,
            },
        )
        .unwrap();
        let expect = gemm_expected(n).read_bytes;
        println!(
            "{reps},{:.0},{expect:.0},{:.3}",
            sample.read_bytes,
            (sample.read_bytes - expect).abs() / expect
        );
    }
    println!("(Eq. 5 picks Repetitions({n}) = {})", repetitions(n));
}
