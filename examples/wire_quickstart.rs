//! Quickstart for the networked PMCD (`pcp-wire`).
//!
//! Starts a TCP `PmcdServer` on loopback, connects a `WireClient`, walks
//! the metric namespace over the wire, and measures a GEMM through the
//! PAPI PCP component backed by the TCP transport — then reads the
//! server's *own* operational metrics (`pmcd.*`) through the same
//! protocol. The daemon profiles itself: the paper's complete-application
//! -profiling idea applied to the measurement infrastructure.
//!
//! ```sh
//! cargo run --release --example wire_quickstart
//! ```

use papi_repro::kernels::GemmTrace;
use papi_repro::memsim::SimMachine;
use papi_repro::papi::component::Component;
use papi_repro::papi::components::PcpComponent;
use papi_repro::papi::EventName;
use papi_repro::pcp::{InstanceId, PmApi, Pmns};
use papi_repro::wire::{PmcdServer, WireClient, WireConfig};

fn main() {
    // A quiet Summit node; the server gets a handle to every socket's
    // counters, exactly like the in-process daemon.
    let mut machine = SimMachine::quiet(papi_repro::arch::Machine::summit(), 42);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let server = PmcdServer::bind_system(
        "127.0.0.1:0",
        pmns.clone(),
        sockets.clone(),
        WireConfig::default(),
    )
    .expect("bind pmcd server");
    println!("pmcd serving on {}", server.local_addr());

    // --- Namespace walk over the wire -------------------------------
    let client = WireClient::connect(server.local_addr()).expect("connect");
    println!("connected as client #{}", client.client_id());
    let names = client.pm_get_children("perfevent").expect("children");
    println!("{} nest metrics exported; first three:", names.len());
    for n in names.iter().take(3) {
        let id = client.pm_lookup_name(n).unwrap();
        let desc = client.pm_get_desc(id).unwrap();
        println!("  {n}  (channel {}, {})", desc.channel, desc.units);
    }

    // --- A measurement through the PAPI component, TCP-backed -------
    let comp = PcpComponent::with_client(client, pmns.clone(), sockets);
    let events: Vec<EventName> = (0..8)
        .map(|ch| {
            EventName::parse(&format!(
                "pcp:::perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_READ_BYTES.value:cpu87"
            ))
            .unwrap()
        })
        .collect();
    let mut group = comp.create_group(&events).unwrap();
    let gemm = GemmTrace::allocate(&mut machine, 192);
    group.start().unwrap();
    machine.run_single(0, |core| gemm.run(core));
    let values = group.stop().unwrap();
    let total: i64 = values.iter().sum();
    println!("\nGEMM n=192 read traffic via TCP-backed PCP: {total} bytes");

    // --- The server measures itself ---------------------------------
    let probe = WireClient::connect(server.local_addr()).expect("probe");
    let self_metrics = [
        "pmcd.pdu.in",
        "pmcd.pdu.out",
        "pmcd.fetch.count",
        "pmcd.client.total",
    ];
    let reqs: Vec<_> = self_metrics
        .iter()
        .map(|n| (probe.pm_lookup_name(n).unwrap(), InstanceId(0)))
        .collect();
    let vals = probe.pm_fetch(&reqs).unwrap();
    println!("\nserver self-metrics (fetched through the same protocol):");
    for (n, v) in self_metrics.iter().zip(&vals) {
        println!("  {n:<20} {v}");
    }
}
