//! A compact Fig.-12-style run: the three QMC phases (VMC, VMC with
//! drift, DMC) under multi-component monitoring, plus the physics check
//! that the mini-app is a real QMC code (DMC recovers E₀ = 3/2 from an
//! imperfect trial wavefunction).
//!
//! ```sh
//! cargo run --release --example qmc_profile
//! ```

use std::sync::Arc;

use papi_repro::nvml::{GpuDevice, GpuParams};
use papi_repro::papi::components::{IbComponent, NvmlComponent, PcpComponent};
use papi_repro::pcp::{PcpContext, Pmcd, PmcdConfig, Pmns};
use papi_repro::profiling::{Column, Profiler};
use papi_repro::qmc::app::{QmcApp, QmcConfig};
use papi_repro::ranks::{ClusterSim, ProcessGrid};

fn main() {
    let machine = papi_repro::memsim::SimMachine::summit(12);
    let gpu = Arc::new(GpuDevice::new(
        0,
        GpuParams::default(),
        machine.socket_shared(0),
    ));
    let mut cluster = ClusterSim::new(machine, ProcessGrid::new(2, 2), 2);
    let app = QmcApp::new(
        &mut cluster,
        Arc::clone(&gpu),
        QmcConfig {
            walkers: 512,
            blocks_per_phase: 8,
            steps_per_block: 40,
            alpha: 0.8,
            seed: 12,
        },
    );

    let pmns = Pmns::for_machine(cluster.machine().arch());
    let sockets: Vec<_> = (0..cluster.machine().num_sockets())
        .map(|s| cluster.machine().socket_shared(s))
        .collect();
    let pmcd = Pmcd::spawn_system(pmns.clone(), sockets.clone(), PmcdConfig::default())
        .expect("spawn pmcd");
    let ctx = PcpContext::connect(pmcd.handle(), Some(cluster.machine().socket_shared(0)));
    let mut papi = papi_repro::papi::Papi::new();
    papi.register(Box::new(PcpComponent::new(ctx, pmns, sockets)));
    papi.register(Box::new(NvmlComponent::new(vec![Arc::clone(&gpu)])));
    papi.register(Box::new(IbComponent::new(
        cluster.fabric().node(0).hcas.clone(),
    )));

    let columns = vec![
        Column::gauge("nvml:::Tesla_V100-SXM2-16GB:device_0:power", "gpu-power"),
        Column::counter(
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
            "mem-read",
        )
        .scaled(8.0),
        Column::counter("infiniband:::mlx5_0_1_ext:port_recv_data", "ib-recv").scaled(2.0),
    ];
    let mut profiler = Profiler::start(&papi, columns).unwrap();

    let result = app.run(&mut cluster, |phase, cl| {
        profiler
            .tick(phase, cl.machine().socket_shared(0).now_seconds())
            .unwrap();
    });
    let timeline = profiler.finish().unwrap();

    println!("QMC mini-app — one rank, three components:\n");
    for col in 0..timeline.columns.len() {
        println!("{}", timeline.ascii_chart(col, 50));
    }
    println!("physics:");
    println!(
        "  VMC        E = {:.4}  (variational, trial α = 0.8)",
        result.vmc_energy
    );
    println!("  VMC drift  E = {:.4}", result.vmc_drift_energy);
    println!(
        "  DMC        E = {:.4}  (exact ground state = 1.5)",
        result.dmc_energy
    );
}
