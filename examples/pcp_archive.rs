//! Archive logging with the simulated Performance Co-Pilot: a `pmlogger`
//! records nest read/write counters while a capped GEMV runs, and the
//! archive is replayed as rates afterwards — the retrospective-analysis
//! workflow Summit's system telemetry uses.
//!
//! ```sh
//! cargo run --release --example pcp_archive
//! ```

use papi_repro::kernels::CappedGemvTrace;
use papi_repro::memsim::SimMachine;
use papi_repro::pcp::{PcpContext, PmLogger, Pmcd, PmcdConfig, Pmns};

fn main() {
    let mut machine = SimMachine::summit(33);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let daemon = Pmcd::spawn_system(pmns.clone(), sockets, PmcdConfig::default());

    // Log both directions of channel 0 every 2 ms of simulated time.
    let metrics = vec![
        (
            pmns.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
                .unwrap(),
            pmns.instance_of_socket(0),
        ),
        (
            pmns.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value")
                .unwrap(),
            pmns.instance_of_socket(0),
        ),
    ];
    let ctx = PcpContext::connect(daemon.handle(), None);
    let mut logger = PmLogger::new(ctx, metrics, 2e-3);

    // The workload: capped GEMV slabs, polling the logger between slabs.
    let (m, n) = (32_768u64, 1280u64);
    let kernel = CappedGemvTrace::allocate(&mut machine, m, n);
    let shared = machine.socket_shared(0);
    // Run under the all-cores L3 share (the batched setting of Fig. 5):
    // A (12.5 MiB) exceeds the ~5 MiB share, so its rows stream from
    // memory on every pass.
    let slab = 2048u64;
    let mut i = 0;
    while i < m {
        let hi = (i + slab).min(m);
        machine.run_parallel(0, 21, |tid, core| {
            if tid != 0 {
                return;
            }
            for row in i..hi {
                let ip = row % kernel.p;
                core.load_seq(kernel.a.elem(ip * n, 8), n * 8);
                core.compute(2 * n);
                core.store(kernel.y.elem(row, 8), 8);
            }
        });
        logger.poll(shared.now_seconds()).unwrap();
        i = hi;
    }

    let archive = logger.close();
    println!(
        "archive: {} samples over {:.3} s of simulated time",
        archive.len(),
        archive.records().last().map_or(0.0, |r| r.time_s)
    );
    println!("t_s,read_Bps(ch0 x8),write_Bps(ch0 x8)");
    for rec in archive.records().iter().skip(1) {
        let rd = archive.rate_at(0, rec.time_s).unwrap_or(0.0) * 8.0;
        let wr = archive.rate_at(1, rec.time_s).unwrap_or(0.0) * 8.0;
        println!("{:.4},{rd:.3e},{wr:.3e}", rec.time_s);
    }
    println!(
        "\n(reads stream matrix A at memory bandwidth; writes are the thin \
         y vector — the Fig. 5 asymmetry, replayed from an archive)"
    );
}
