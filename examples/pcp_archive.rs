//! Archive logging with the simulated Performance Co-Pilot: a `pmlogger`
//! records nest read/write counters while a capped GEMV runs, and the
//! archive is replayed as rates afterwards — the retrospective-analysis
//! workflow Summit's system telemetry uses.
//!
//! Two recorders are shown:
//!
//! 1. the in-process [`PmLogger`], pumped on *simulated* time as the
//!    workload advances the socket clock, and
//! 2. the `pcp-wire` [`SamplingScheduler`], recording over a real TCP
//!    connection to a live [`PmcdServer`] on its own wall-clock cadence —
//!    exactly how `pmlogger` runs against a production `pmcd`.
//!
//! ```sh
//! cargo run --release --example pcp_archive
//! ```

use std::time::Duration;

use papi_repro::kernels::CappedGemvTrace;
use papi_repro::memsim::SimMachine;
use papi_repro::pcp::{PcpContext, PmLogger, Pmcd, PmcdConfig, Pmns};
use papi_repro::wire::{PmcdServer, SamplingScheduler, ScheduleSpec, WireClient, WireConfig};

fn main() {
    let mut machine = SimMachine::summit(33);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let daemon =
        Pmcd::spawn_system(pmns.clone(), sockets, PmcdConfig::default()).expect("spawn pmcd");

    // Log both directions of channel 0 every 2 ms of simulated time.
    let metrics = vec![
        (
            pmns.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
                .unwrap(),
            pmns.instance_of_socket(0),
        ),
        (
            pmns.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value")
                .unwrap(),
            pmns.instance_of_socket(0),
        ),
    ];
    let ctx = PcpContext::connect(daemon.handle(), None);
    let mut logger = PmLogger::new(ctx, metrics, 2e-3);

    // The workload: capped GEMV slabs, polling the logger between slabs.
    let (m, n) = (32_768u64, 1280u64);
    let kernel = CappedGemvTrace::allocate(&mut machine, m, n);
    let shared = machine.socket_shared(0);
    // Run under the all-cores L3 share (the batched setting of Fig. 5):
    // A (12.5 MiB) exceeds the ~5 MiB share, so its rows stream from
    // memory on every pass.
    let slab = 2048u64;
    let mut i = 0;
    while i < m {
        let hi = (i + slab).min(m);
        machine.run_parallel(0, 21, |tid, core| {
            if tid != 0 {
                return;
            }
            for row in i..hi {
                let ip = row % kernel.p;
                core.load_seq(kernel.a.elem(ip * n, 8), n * 8);
                core.compute(2 * n);
                core.store(kernel.y.elem(row, 8), 8);
            }
        });
        logger.poll(shared.now_seconds()).unwrap();
        i = hi;
    }

    let archive = logger.close();
    println!(
        "archive: {} samples over {:.3} s of simulated time",
        archive.len(),
        archive.records().last().map_or(0.0, |r| r.time_s)
    );
    println!("t_s,read_Bps(ch0 x8),write_Bps(ch0 x8)");
    for rec in archive.records().iter().skip(1) {
        let rd = archive.rate_at(0, rec.time_s).unwrap_or(0.0) * 8.0;
        let wr = archive.rate_at(1, rec.time_s).unwrap_or(0.0) * 8.0;
        println!("{:.4},{rd:.3e},{wr:.3e}", rec.time_s);
    }
    println!(
        "\n(reads stream matrix A at memory bandwidth; writes are the thin \
         y vector — the Fig. 5 asymmetry, replayed from an archive)"
    );

    // ----------------------------------------------------------------
    // Part 2: the same recording workflow against a *live* TCP server.
    // The scheduler thread samples over the wire while this thread plays
    // the part of the workload, mutating the counters it records.
    // ----------------------------------------------------------------
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let server =
        PmcdServer::bind_system("127.0.0.1:0", pmns.clone(), sockets, WireConfig::default())
            .expect("bind pmcd server");
    println!("\nlive pmcd server on {}", server.local_addr());

    let client = WireClient::connect(server.local_addr()).expect("connect pmlogger client");
    let metrics = vec![
        (
            pmns.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
                .unwrap(),
            pmns.instance_of_socket(0),
        ),
        (
            pmns.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value")
                .unwrap(),
            pmns.instance_of_socket(0),
        ),
    ];
    let scheduler = SamplingScheduler::start(
        client,
        vec![ScheduleSpec {
            name: "nest-ch0".into(),
            metrics,
            interval: Duration::from_millis(10),
        }],
    )
    .expect("start sampling scheduler");

    // Generate traffic in bursts while the scheduler samples it.
    let shared = machine.socket_shared(0);
    for _ in 0..10 {
        for s in 0..64u64 {
            shared
                .counters()
                .record_sector(s, papi_repro::memsim::Direction::Read);
        }
        std::thread::sleep(Duration::from_millis(15));
    }

    for (name, archive, err) in scheduler.stop() {
        println!(
            "wire archive '{name}': {} wall-clock samples{}",
            archive.len(),
            err.map_or(String::new(), |e| format!(" (halted by: {e})"))
        );
        if let (Some(first), Some(last)) = (archive.records().first(), archive.records().last()) {
            println!(
                "  channel-0 reads grew {} -> {} bytes over {:.2} s of wall time",
                first.values[0],
                last.values[0],
                last.time_s - first.time_s
            );
        }
    }
}
