//! # nvml-sim — a simulated NVIDIA Tesla V100 with NVML power telemetry
//!
//! Figure 11 of the paper correlates three signals during a GPU-accelerated
//! 3D-FFT: host memory reads (H2D copies), a GPU power spike (the batched
//! cuFFT kernels), and host memory writes (D2H copies). This crate provides
//! the GPU side of that story:
//!
//! * [`GpuDevice`] — an execution model. Work is submitted as
//!   [`GpuOp`]s; each op occupies the device for a modeled duration and
//!   sets the device power for that interval. Host↔device copies also
//!   inject the corresponding host-DRAM traffic into the socket's nest
//!   counters (exactly the signal the paper observes: "host memory getting
//!   copied to the GPU — a large amount of host memory being read").
//! * [`PowerTimeline`] — piecewise-constant power history, queryable at any
//!   simulated time. The PAPI `nvml` component reads it through
//!   [`GpuDevice::power_mw`], which reports milliwatts like the real
//!   `nvmlDeviceGetPowerUsage`.
//!
//! Device parameters default to the V100-SXM2-16GB in Summit nodes
//! (NVLink2 host link, ~7.8 TF/s double precision, 300 W TDP).

use std::sync::Arc;

use parking_lot::Mutex;

use p9_memsim::machine::SocketShared;
use p9_memsim::Direction;

/// Device model parameters.
#[derive(Clone, Debug)]
pub struct GpuParams {
    /// Marketing name, used in PAPI event strings.
    pub name: &'static str,
    /// Host link bandwidth (bytes/s). NVLink2: 3 bricks ≈ 47 GB/s.
    pub link_bw: f64,
    /// Sustained double-precision compute rate (FLOP/s).
    pub flops: f64,
    /// Device memory bandwidth (bytes/s), HBM2.
    pub mem_bw: f64,
    /// Idle power, watts.
    pub idle_w: f64,
    /// Power while driving the host link, watts.
    pub copy_w: f64,
    /// Power while running compute kernels, watts.
    pub kernel_w: f64,
}

impl Default for GpuParams {
    fn default() -> Self {
        GpuParams {
            name: "Tesla_V100-SXM2-16GB",
            link_bw: 47.0e9,
            flops: 7.8e12,
            mem_bw: 900.0e9,
            idle_w: 52.0,
            copy_w: 115.0,
            kernel_w: 285.0,
        }
    }
}

/// One unit of work submitted to the device.
#[derive(Clone, Copy, Debug)]
pub enum GpuOp {
    /// Host-to-device copy: reads host memory.
    H2D { bytes: u64 },
    /// Device-to-host copy: writes host memory.
    D2H { bytes: u64 },
    /// A compute kernel characterized by FLOPs and device-memory traffic.
    Kernel { flops: f64, mem_bytes: u64 },
}

/// Piecewise-constant power history.
#[derive(Debug, Default)]
pub struct PowerTimeline {
    /// (start_s, end_s, watts) segments, sorted by time.
    segments: Vec<(f64, f64, f64)>,
}

impl PowerTimeline {
    fn push(&mut self, start: f64, end: f64, watts: f64) {
        debug_assert!(end >= start);
        self.segments.push((start, end, watts));
    }

    /// Power at time `t` (watts); `idle` outside recorded segments.
    pub fn power_at(&self, t: f64, idle: f64) -> f64 {
        for &(s, e, w) in self.segments.iter().rev() {
            if t >= s && t < e {
                return w;
            }
        }
        idle
    }

    /// Energy integral over the full history (joules, excluding idle).
    pub fn active_energy(&self) -> f64 {
        self.segments.iter().map(|&(s, e, w)| (e - s) * w).sum()
    }

    /// Number of recorded segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when no segments are recorded.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }
}

/// A simulated GPU bound to a host socket.
pub struct GpuDevice {
    params: GpuParams,
    index: usize,
    host: Arc<SocketShared>,
    timeline: Mutex<PowerTimeline>,
    /// Device-local clock: the device may run ahead of the host between
    /// synchronizations; ops are serialized on the device.
    busy_until: Mutex<f64>,
}

impl GpuDevice {
    /// Create device `index` attached to `host`.
    pub fn new(index: usize, params: GpuParams, host: Arc<SocketShared>) -> Self {
        GpuDevice {
            params,
            index,
            host,
            timeline: Mutex::new(PowerTimeline::default()),
            busy_until: Mutex::new(0.0),
        }
    }

    /// Device parameters.
    pub fn params(&self) -> &GpuParams {
        &self.params
    }

    /// Device index (for `device_0` style event qualifiers).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Submit an op and block the host until it completes (the mini-app
    /// uses synchronous `cudaMemcpy` / `cufftExec` + sync). Advances both
    /// device timeline and host clock; host copies inject nest traffic.
    pub fn submit_sync(&self, op: GpuOp) {
        let start = {
            let busy = self.busy_until.lock();
            self.host.now_seconds().max(*busy)
        };
        let (duration, watts) = match op {
            GpuOp::H2D { bytes } => {
                self.host.record_dma(bytes, Direction::Read);
                (bytes as f64 / self.params.link_bw, self.params.copy_w)
            }
            GpuOp::D2H { bytes } => {
                self.host.record_dma(bytes, Direction::Write);
                (bytes as f64 / self.params.link_bw, self.params.copy_w)
            }
            GpuOp::Kernel { flops, mem_bytes } => {
                let t_compute = flops / self.params.flops;
                let t_mem = mem_bytes as f64 / self.params.mem_bw;
                (t_compute.max(t_mem), self.params.kernel_w)
            }
        };
        let end = start + duration;
        self.timeline.lock().push(start, end, watts);
        *self.busy_until.lock() = end;
        // Synchronous call: the host waits for completion.
        let now = self.host.now_seconds();
        if end > now {
            self.host.advance_seconds(end - now);
        }
    }

    /// Instantaneous power in milliwatts at host time `t` (the NVML unit).
    pub fn power_mw_at(&self, t: f64) -> u64 {
        (self.timeline.lock().power_at(t, self.params.idle_w) * 1000.0) as u64
    }

    /// Instantaneous power now, in milliwatts (`nvmlDeviceGetPowerUsage`).
    pub fn power_mw(&self) -> u64 {
        // Sample just behind "now": at a phase boundary the segment that
        // *ended* exactly now is what a polling reader would still see.
        let t = (self.host.now_seconds() - 1e-9).max(0.0);
        self.power_mw_at(t)
    }

    /// Total active energy in joules (diagnostics).
    pub fn active_energy_j(&self) -> f64 {
        self.timeline.lock().active_energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p9_arch::Machine;
    use p9_memsim::SimMachine;

    fn gpu() -> (SimMachine, GpuDevice) {
        let m = SimMachine::quiet(Machine::summit(), 5);
        let g = GpuDevice::new(0, GpuParams::default(), m.socket_shared(0));
        (m, g)
    }

    #[test]
    fn h2d_reads_host_memory_and_takes_time() {
        let (m, g) = gpu();
        let t0 = m.socket_shared(0).now_seconds();
        g.submit_sync(GpuOp::H2D { bytes: 470_000_000 }); // ~10 ms at 47 GB/s
        let dt = m.socket_shared(0).now_seconds() - t0;
        assert!((dt - 0.01).abs() < 1e-3, "dt {dt}");
        assert_eq!(m.socket_shared(0).counters().total_read(), 470_000_000);
        assert_eq!(m.socket_shared(0).counters().total_write(), 0);
    }

    #[test]
    fn d2h_writes_host_memory() {
        let (m, g) = gpu();
        g.submit_sync(GpuOp::D2H { bytes: 1_000_000 });
        assert_eq!(m.socket_shared(0).counters().total_write(), 1_000_000);
        assert_eq!(m.socket_shared(0).counters().total_read(), 0);
    }

    #[test]
    fn power_profile_shows_kernel_spike() {
        let (_m, g) = gpu();
        g.submit_sync(GpuOp::H2D { bytes: 47_000_000 }); // 1 ms copy
        let copy_end = 0.001;
        g.submit_sync(GpuOp::Kernel {
            flops: 7.8e9, // 1 ms of compute
            mem_bytes: 0,
        });
        // During the copy: copy power; during the kernel: kernel power.
        assert_eq!(g.power_mw_at(copy_end / 2.0), 115_000);
        assert_eq!(g.power_mw_at(copy_end + 0.0005), 285_000);
        // Long after: idle.
        assert_eq!(g.power_mw_at(10.0), 52_000);
    }

    #[test]
    fn kernel_duration_is_max_of_compute_and_memory() {
        let (m, g) = gpu();
        let t0 = m.socket_shared(0).now_seconds();
        // Memory-bound: 900 MB at 900 GB/s = 1 ms >> compute time.
        g.submit_sync(GpuOp::Kernel {
            flops: 1.0,
            mem_bytes: 900_000_000,
        });
        let dt = m.socket_shared(0).now_seconds() - t0;
        assert!((dt - 0.001).abs() < 1e-4, "dt {dt}");
    }

    #[test]
    fn ops_serialize_on_device() {
        let (_m, g) = gpu();
        g.submit_sync(GpuOp::H2D { bytes: 47_000_000 });
        g.submit_sync(GpuOp::H2D { bytes: 47_000_000 });
        // Two 1 ms copies: active energy = 2 ms x 115 W.
        let e = g.active_energy_j();
        assert!((e - 0.002 * 115.0).abs() < 1e-4, "energy {e}");
    }

    #[test]
    fn power_now_reads_latest_state() {
        let (_m, g) = gpu();
        assert_eq!(g.power_mw(), 52_000);
        g.submit_sync(GpuOp::Kernel {
            flops: 7.8e9,
            mem_bytes: 0,
        });
        // Host advanced to kernel end; sampling just behind now sees the
        // kernel segment.
        assert_eq!(g.power_mw(), 285_000);
    }
}
