//! # ib-sim — a simulated Mellanox InfiniBand fabric
//!
//! Summit nodes carry dual-rail ConnectX-5 EDR HCAs (`mlx5_0`, `mlx5_1`).
//! The paper monitors the extended port counter `port_recv_data` through
//! PAPI's `infiniband` component and observes jumps during the 3D-FFT's
//! two All2All exchange phases (Fig. 11).
//!
//! The model:
//!
//! * [`Port`] — per-port receive/transmit counters. Following the
//!   InfiniBand spec (and the sysfs `ports/1/counters` files PAPI reads),
//!   `port_recv_data` / `port_xmit_data` count **32-bit words**, i.e.
//!   octets divided by 4.
//! * [`Hca`] — a host channel adapter (two per node: the two rails).
//! * [`Fabric`] — the set of nodes; [`Fabric::alltoall`] moves the given
//!   number of bytes between every pair of distinct nodes, updates all
//!   port counters, and returns the modeled duration of the exchange
//!   (bottlenecked by per-node injection bandwidth across both rails).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// EDR InfiniBand per-rail bandwidth (bytes/s), ~12.5 GB/s.
pub const RAIL_BW: f64 = 12.5e9;

/// One HCA port with extended counters.
#[derive(Debug, Default)]
pub struct Port {
    recv_words: AtomicU64,
    xmit_words: AtomicU64,
}

impl Port {
    /// Record `bytes` received (stored in 4-byte words, rounding down like
    /// the hardware counter).
    pub fn record_recv(&self, bytes: u64) {
        // relaxed-ok: monotonic traffic statistic; no other memory is
        // published through the port counters.
        self.recv_words.fetch_add(bytes / 4, Ordering::Relaxed);
    }

    /// Record `bytes` transmitted.
    pub fn record_xmit(&self, bytes: u64) {
        // relaxed-ok: same monotonic-statistic argument as record_recv.
        self.xmit_words.fetch_add(bytes / 4, Ordering::Relaxed);
    }

    /// `port_recv_data`: received 32-bit words.
    pub fn recv_data(&self) -> u64 {
        // relaxed-ok: free-running counter read; samplers tolerate
        // staleness, exactly like reading the sysfs counter file.
        self.recv_words.load(Ordering::Relaxed)
    }

    /// `port_xmit_data`: transmitted 32-bit words.
    pub fn xmit_data(&self) -> u64 {
        // relaxed-ok: same free-running counter read as recv_data.
        self.xmit_words.load(Ordering::Relaxed)
    }
}

/// A host channel adapter (`mlx5_<rail>`), one port each (port 1).
#[derive(Debug)]
pub struct Hca {
    /// Device name, e.g. `mlx5_0`.
    pub name: String,
    pub port: Port,
}

impl Hca {
    pub fn new(rail: usize) -> Self {
        Hca {
            name: format!("mlx5_{rail}"),
            port: Port::default(),
        }
    }
}

/// One node's network endpoint: its rails.
#[derive(Debug)]
pub struct NodeNic {
    pub hcas: Vec<Arc<Hca>>,
}

impl NodeNic {
    pub fn new(rails: usize) -> Self {
        NodeNic {
            hcas: (0..rails).map(|r| Arc::new(Hca::new(r))).collect(),
        }
    }

    /// Aggregate injection bandwidth of the node (bytes/s).
    pub fn bandwidth(&self) -> f64 {
        RAIL_BW * self.hcas.len() as f64
    }

    fn record_recv(&self, bytes: u64) {
        // Traffic stripes across rails.
        let per = bytes / self.hcas.len() as u64;
        for h in &self.hcas {
            h.port.record_recv(per);
        }
    }

    fn record_xmit(&self, bytes: u64) {
        let per = bytes / self.hcas.len() as u64;
        for h in &self.hcas {
            h.port.record_xmit(per);
        }
    }
}

/// The fabric: all nodes of the job.
#[derive(Debug)]
pub struct Fabric {
    nodes: Vec<NodeNic>,
}

impl Fabric {
    /// A fabric of `nodes` nodes with `rails` HCAs each.
    pub fn new(nodes: usize, rails: usize) -> Self {
        Fabric {
            nodes: (0..nodes).map(|_| NodeNic::new(rails)).collect(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// A node's NIC.
    pub fn node(&self, i: usize) -> &NodeNic {
        &self.nodes[i]
    }

    /// Point-to-point transfer; returns the modeled duration.
    pub fn send(&self, src: usize, dst: usize, bytes: u64) -> f64 {
        assert_ne!(src, dst, "loopback does not touch the fabric");
        self.nodes[src].record_xmit(bytes);
        self.nodes[dst].record_recv(bytes);
        bytes as f64 / self.nodes[src].bandwidth()
    }

    /// All-to-all among `ranks_per_node`-rank nodes: every pair of distinct
    /// *ranks* exchanges `bytes_per_pair`. Rank pairs on the same node do
    /// not touch the fabric. Returns the exchange duration, bottlenecked by
    /// the busiest node's injection bandwidth.
    pub fn alltoall(&self, ranks_per_node: usize, bytes_per_pair: u64) -> f64 {
        let n_nodes = self.nodes.len();
        let total_ranks = n_nodes * ranks_per_node;
        if total_ranks <= 1 || n_nodes == 1 {
            return 0.0;
        }
        // Per node: its ranks send to every off-node rank.
        let off_node_peers = (total_ranks - ranks_per_node) as u64;
        let bytes_out_per_node = ranks_per_node as u64 * off_node_peers * bytes_per_pair;
        let mut max_t: f64 = 0.0;
        for node in &self.nodes {
            node.record_xmit(bytes_out_per_node);
            node.record_recv(bytes_out_per_node);
            max_t = max_t.max(bytes_out_per_node as f64 / node.bandwidth());
        }
        max_t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_words_not_bytes() {
        let p = Port::default();
        p.record_recv(400);
        assert_eq!(p.recv_data(), 100);
        p.record_xmit(7); // rounds down
        assert_eq!(p.xmit_data(), 1);
    }

    #[test]
    fn send_updates_both_endpoints() {
        let f = Fabric::new(2, 2);
        let t = f.send(0, 1, 1_000_000);
        assert!(t > 0.0);
        // Striped across 2 rails: 500_000 bytes = 125_000 words each.
        assert_eq!(f.node(0).hcas[0].port.xmit_data(), 125_000);
        assert_eq!(f.node(0).hcas[1].port.xmit_data(), 125_000);
        assert_eq!(f.node(1).hcas[0].port.recv_data(), 125_000);
        assert_eq!(f.node(0).hcas[0].port.recv_data(), 0);
    }

    #[test]
    #[should_panic]
    fn loopback_send_panics() {
        let f = Fabric::new(2, 1);
        f.send(1, 1, 10);
    }

    #[test]
    fn alltoall_volume_accounting() {
        // 4 nodes x 2 ranks, 1 KiB per pair.
        let f = Fabric::new(4, 2);
        let t = f.alltoall(2, 1024);
        assert!(t > 0.0);
        // Each node: 2 ranks x 6 off-node peers x 1 KiB = 12 KiB out.
        let expect_words = (2 * 6 * 1024) / 4 / 2; // per rail (2 rails)
        for n in 0..4 {
            assert_eq!(f.node(n).hcas[0].port.xmit_data(), expect_words);
            assert_eq!(f.node(n).hcas[0].port.recv_data(), expect_words);
        }
    }

    #[test]
    fn single_node_alltoall_stays_off_fabric() {
        let f = Fabric::new(1, 2);
        let t = f.alltoall(8, 1 << 20);
        assert_eq!(t, 0.0);
        assert_eq!(f.node(0).hcas[0].port.recv_data(), 0);
    }

    #[test]
    fn duration_scales_with_volume() {
        let f = Fabric::new(2, 2);
        let t1 = f.alltoall(1, 1 << 20);
        let t2 = f.alltoall(1, 1 << 24);
        assert!(t2 > 10.0 * t1);
    }

    #[test]
    fn hca_names_match_event_strings() {
        let nic = NodeNic::new(2);
        assert_eq!(nic.hcas[0].name, "mlx5_0");
        assert_eq!(nic.hcas[1].name, "mlx5_1");
    }
}
