//! Property test: `SetAssocCache` against a naive reference LRU model.
//!
//! Using a single-set configuration (capacity = ways × 64 B), every
//! sector maps to the same set, so the packed/rotating implementation can
//! be compared operation-by-operation against an obviously correct
//! `Vec`-based LRU list with dirty flags.

use proptest::prelude::*;

use p9_memsim::cache::{Evicted, SetAssocCache};

/// The oracle: most-recent-first list of (sector, dirty).
#[derive(Default)]
struct RefLru {
    ways: usize,
    list: Vec<(u64, bool)>,
}

impl RefLru {
    fn new(ways: usize) -> Self {
        RefLru {
            ways,
            list: Vec::new(),
        }
    }

    fn access(&mut self, sector: u64, mark_dirty: bool) -> bool {
        if let Some(pos) = self.list.iter().position(|&(s, _)| s == sector) {
            let (s, d) = self.list.remove(pos);
            self.list.insert(0, (s, d || mark_dirty));
            true
        } else {
            false
        }
    }

    fn insert(&mut self, sector: u64, dirty: bool) -> Evicted {
        assert!(self.list.iter().all(|&(s, _)| s != sector));
        self.list.insert(0, (sector, dirty));
        if self.list.len() > self.ways {
            let (s, d) = self.list.pop().unwrap();
            if d {
                Evicted::Dirty(s)
            } else {
                Evicted::Clean(s)
            }
        } else {
            Evicted::None
        }
    }

    fn insert_mid(&mut self, sector: u64, dirty: bool) -> Evicted {
        assert!(self.list.iter().all(|&(s, _)| s != sector));
        // Mid position over the full way count, matching the implementation
        // (empty tail slots count as positions).
        let evicted = if self.list.len() >= self.ways {
            let (s, d) = self.list.pop().unwrap();
            Some(if d {
                Evicted::Dirty(s)
            } else {
                Evicted::Clean(s)
            })
        } else {
            None
        };
        let mid = (self.ways / 2).min(self.list.len());
        self.list.insert(mid, (sector, dirty));
        evicted.unwrap_or(Evicted::None)
    }

    fn touch_dirty(&mut self, sector: u64) -> bool {
        for e in self.list.iter_mut() {
            if e.0 == sector {
                e.1 = true;
                return true;
            }
        }
        false
    }

    fn remove(&mut self, sector: u64) -> Option<bool> {
        let pos = self.list.iter().position(|&(s, _)| s == sector)?;
        Some(self.list.remove(pos).1)
    }

    fn dirty_set(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .list
            .iter()
            .filter(|&&(_, d)| d)
            .map(|&(s, _)| s)
            .collect();
        v.sort_unstable();
        v
    }
}

#[derive(Clone, Debug)]
enum Op {
    Access(u64, bool),
    Insert(u64, bool),
    InsertMid(u64, bool),
    TouchDirty(u64),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Small sector universe so collisions and evictions are common.
    let sec = 0u64..24;
    prop_oneof![
        (sec.clone(), any::<bool>()).prop_map(|(s, d)| Op::Access(s, d)),
        (sec.clone(), any::<bool>()).prop_map(|(s, d)| Op::Insert(s, d)),
        (sec.clone(), any::<bool>()).prop_map(|(s, d)| Op::InsertMid(s, d)),
        sec.clone().prop_map(Op::TouchDirty),
        sec.prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn packed_cache_matches_reference_lru(
        ways in 1usize..12,
        ops in prop::collection::vec(op_strategy(), 1..200)
    ) {
        // Single set: capacity = ways sectors.
        let mut cache = SetAssocCache::new(ways as u64 * 64, ways);
        prop_assume!(cache.sets() == 1);
        let mut oracle = RefLru::new(ways);

        for op in ops {
            match op {
                Op::Access(s, d) => {
                    prop_assert_eq!(cache.access(s, d), oracle.access(s, d));
                }
                Op::Insert(s, d) => {
                    // Both models require absence before insert.
                    if oracle.access(s, false) {
                        prop_assert!(cache.access(s, false));
                        continue;
                    }
                    prop_assert_eq!(cache.insert(s, d), oracle.insert(s, d));
                }
                Op::InsertMid(s, d) => {
                    if oracle.access(s, false) {
                        prop_assert!(cache.access(s, false));
                        continue;
                    }
                    prop_assert_eq!(cache.insert_mid(s, d), oracle.insert_mid(s, d));
                }
                Op::TouchDirty(s) => {
                    prop_assert_eq!(cache.touch_dirty(s), oracle.touch_dirty(s));
                }
                Op::Remove(s) => {
                    prop_assert_eq!(cache.remove(s), oracle.remove(s));
                }
            }
        }

        // Final state agreement: same resident count, same dirty set.
        prop_assert_eq!(cache.resident(), oracle.list.len());
        let mut dirty = Vec::new();
        cache.flush(|s| dirty.push(s));
        dirty.sort_unstable();
        prop_assert_eq!(dirty, oracle.dirty_set());
    }
}
