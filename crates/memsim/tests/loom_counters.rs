//! Loom models for concurrent nest-counter access.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; `NestCounters` then runs
//! on the vendored loom shim's atomics, which inject preemption points
//! around every operation. The counters are deliberately lock-free (every
//! core records sectors concurrently while PCP samplers snapshot), and the
//! models pin down what the relaxed-ordering annotations in `counters.rs`
//! claim: no recorded sector is ever lost, and a concurrent reader only
//! ever observes whole sectors, monotonically.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use p9_memsim::{Direction, NestCounters, SECTOR_BYTES};

#[test]
fn concurrent_writers_lose_no_sectors() {
    loom::model(|| {
        let c = Arc::new(NestCounters::new());
        let writers: Vec<_> = (0..3u64)
            .map(|w| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for i in 0..4u64 {
                        // Writers interleave on the same channels: sector
                        // modulo 8 maps both 0 and 8 to channel 0.
                        c.record_sector(w + i * 8, Direction::Read);
                    }
                    c.record_sector(w, Direction::Write);
                })
            })
            .collect();
        for h in writers {
            h.join().expect("join writer");
        }
        // Every recorded sector is accounted for, on the right channel.
        assert_eq!(c.total_read(), 12 * SECTOR_BYTES);
        assert_eq!(c.total_write(), 3 * SECTOR_BYTES);
        for w in 0..3 {
            assert_eq!(c.channel(w, Direction::Read), 4 * SECTOR_BYTES);
            assert_eq!(c.channel(w, Direction::Write), SECTOR_BYTES);
        }
    });
}

#[test]
fn concurrent_snapshots_observe_whole_sectors_monotonically() {
    loom::model(|| {
        let c = Arc::new(NestCounters::new());
        let writer = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                for i in 0..6u64 {
                    c.record_sector(i * 8, Direction::Read);
                }
            })
        };
        let reader = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                // Two snapshots in program order, racing the writer.
                let a = c.snapshot();
                let b = c.snapshot();
                (a, b)
            })
        };
        let (a, b) = reader.join().expect("join reader");
        writer.join().expect("join writer");
        for snap in [&a, &b] {
            // A sampler never sees a torn fraction of a sector.
            assert_eq!(snap.channel(0, Direction::Read) % SECTOR_BYTES, 0);
            assert!(snap.channel(0, Direction::Read) <= 6 * SECTOR_BYTES);
        }
        // Free-running counters are monotonic for any single reader.
        assert!(b.channel(0, Direction::Read) >= a.channel(0, Direction::Read));
        assert_eq!(c.channel(0, Direction::Read), 6 * SECTOR_BYTES);
    });
}
