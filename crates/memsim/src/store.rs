//! Per-core store handling: write-combining and cache-bypassing stores.
//!
//! The paper's key observation (Section IV-A) is that POWER9 stores to
//! lines that are *not* cached can go straight to memory without the usual
//! read-for-ownership, **unless** the core has detected a strided data
//! stream: "In the presence of a strided data stream, the writes to
//! variables will not bypass the cache, so they will be read by the cache.
//! In the absence of such a stream, the writes indeed bypass the cache."
//! `dcbtst` software prefetch (GCC `-fprefetch-loop-arrays`) likewise forces
//! the target into the cache, re-introducing the read.
//!
//! This module models the mechanism with a small set of write-combining
//! buffers (WCBs) at 64-byte sector granularity. Stores **write-allocate
//! by default**; only streaming stores — stores belonging to a confirmed
//! sequential store stream (store-gather), on a core with no active
//! stride-N stream and no software-prefetch hint — are eligible to bypass
//! (the hierarchy makes that decision and passes `bypass_allowed` in):
//!
//! * A store that **hits** in the cache simply dirties the line — no memory
//!   traffic now; the writeback happens at eviction.
//! * A store that **misses** while bypassing is allowed opens/extends a WCB
//!   entry. When all 64 bytes of the sector have been written, the entry
//!   drains to memory as one 64-byte write with **no read**.
//! * A store that misses while bypassing is *not* allowed takes the
//!   allocate path: the hierarchy reads the sector (the read-per-write) and
//!   the store dirties it in cache.
//! * WCB entries evicted before filling (capacity pressure or an explicit
//!   [`StoreEngine::drain`]) cannot write a partial 64-byte granule
//!   directly; the memory controller performs a read-modify-write, costing
//!   one read and one write transaction.

/// Number of write-combining buffer entries per core.
pub const WCB_ENTRIES: usize = 16;

#[derive(Clone, Copy, Debug)]
struct WcbEntry {
    sector: u64,
    /// Bitmask of written 8-byte chunks (bit i = bytes [8i, 8i+8)).
    written: u8,
    touched: u64,
    valid: bool,
}

impl WcbEntry {
    const INVALID: WcbEntry = WcbEntry {
        sector: 0,
        written: 0,
        touched: 0,
        valid: false,
    };
}

/// What the hierarchy must do to complete a store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Absorbed into a WCB; no traffic yet.
    Buffered,
    /// A full sector drained to memory: one 64-byte write, no read.
    BypassWrite(u64),
    /// A partial sector drained: read-modify-write at the controller
    /// (one 64-byte read + one 64-byte write).
    PartialWrite(u64),
    /// The sector must be allocated in cache (read-for-ownership) and the
    /// store completed there.
    Allocate(u64),
}

/// The per-core store engine.
#[derive(Clone, Debug)]
pub struct StoreEngine {
    wcb: [WcbEntry; WCB_ENTRIES],
    clock: u64,
}

impl Default for StoreEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl StoreEngine {
    pub fn new() -> Self {
        StoreEngine {
            wcb: [WcbEntry::INVALID; WCB_ENTRIES],
            clock: 0,
        }
    }

    /// Process a store of `len` bytes at `addr` **that missed the cache**.
    ///
    /// `bypass_allowed` reflects the core state (no stride-N stream, no
    /// software-prefetch hint on this store). At most two outcomes are
    /// produced per call (the store itself plus one displaced WCB entry);
    /// they are appended to `out`.
    pub fn store_miss(
        &mut self,
        addr: u64,
        len: u64,
        bypass_allowed: bool,
        out: &mut Vec<StoreOutcome>,
    ) {
        self.clock += 1;
        if !bypass_allowed {
            // Allocate path: any WCB entry for this sector is subsumed by
            // the cache line (its bytes merge into the allocated line).
            if let Some(i) = self.find(crate::sector_of(addr)) {
                self.wcb[i].valid = false;
            }
            out.push(StoreOutcome::Allocate(crate::sector_of(addr)));
            return;
        }

        let first = crate::sector_of(addr);
        let last = crate::sector_of(addr + len - 1);
        for sector in first..=last {
            let lo = addr.max(sector * crate::SECTOR_BYTES);
            let hi = (addr + len).min((sector + 1) * crate::SECTOR_BYTES);
            self.buffer_write(sector, lo, hi, out);
        }
    }

    fn buffer_write(&mut self, sector: u64, lo: u64, hi: u64, out: &mut Vec<StoreOutcome>) {
        let mask = chunk_mask(lo, hi);
        let idx = match self.find(sector) {
            Some(i) => i,
            None => {
                let i = self.victim();
                if self.wcb[i].valid {
                    // Displace a partial entry: RMW at the controller.
                    out.push(StoreOutcome::PartialWrite(self.wcb[i].sector));
                }
                self.wcb[i] = WcbEntry {
                    sector,
                    written: 0,
                    touched: self.clock,
                    valid: true,
                };
                i
            }
        };
        let e = &mut self.wcb[idx];
        e.written |= mask;
        e.touched = self.clock;
        if e.written == 0xFF {
            e.valid = false;
            out.push(StoreOutcome::BypassWrite(sector));
        } else {
            out.push(StoreOutcome::Buffered);
        }
    }

    fn find(&self, sector: u64) -> Option<usize> {
        self.wcb.iter().position(|e| e.valid && e.sector == sector)
    }

    fn victim(&self) -> usize {
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (i, e) in self.wcb.iter().enumerate() {
            if !e.valid {
                return i;
            }
            if e.touched < oldest {
                oldest = e.touched;
                victim = i;
            }
        }
        victim
    }

    /// Drop the WCB entry for `sector` (the sector was just allocated in
    /// cache by another path, e.g. a load).
    pub fn invalidate(&mut self, sector: u64) {
        if let Some(i) = self.find(sector) {
            self.wcb[i].valid = false;
        }
    }

    /// Flush every pending entry (end of a kernel / measurement region).
    /// Partial entries cost a read-modify-write each.
    pub fn drain(&mut self, out: &mut Vec<StoreOutcome>) {
        for e in self.wcb.iter_mut() {
            if e.valid {
                e.valid = false;
                if e.written == 0xFF {
                    out.push(StoreOutcome::BypassWrite(e.sector));
                } else {
                    out.push(StoreOutcome::PartialWrite(e.sector));
                }
            }
        }
    }
}

/// Bitmask of the 8-byte chunks covered by byte range [lo, hi) within the
/// sector containing `lo`.
fn chunk_mask(lo: u64, hi: u64) -> u8 {
    debug_assert!(hi > lo && hi - lo <= crate::SECTOR_BYTES);
    let off = (lo % crate::SECTOR_BYTES) as u32;
    let len = (hi - lo) as u32;
    let first_chunk = off / 8;
    let last_chunk = (off + len - 1) / 8;
    let n = last_chunk - first_chunk + 1;
    (((1u16 << n) - 1) as u8) << first_chunk
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcomes(
        engine: &mut StoreEngine,
        stores: &[(u64, u64)],
        bypass: bool,
    ) -> Vec<StoreOutcome> {
        let mut out = Vec::new();
        for &(addr, len) in stores {
            engine.store_miss(addr, len, bypass, &mut out);
        }
        out
    }

    #[test]
    fn chunk_mask_math() {
        assert_eq!(chunk_mask(0, 8), 0b0000_0001);
        assert_eq!(chunk_mask(0, 64), 0xFF);
        assert_eq!(chunk_mask(56, 64), 0b1000_0000);
        assert_eq!(chunk_mask(8, 24), 0b0000_0110);
        // Range not aligned to chunks still covers the chunks it touches.
        assert_eq!(chunk_mask(4, 12), 0b0000_0011);
    }

    #[test]
    fn sequential_full_sector_bypasses_with_single_write() {
        let mut e = StoreEngine::new();
        // Eight 8-byte stores fill sector 0 -> exactly one BypassWrite(0).
        let stores: Vec<(u64, u64)> = (0..8).map(|i| (i * 8, 8)).collect();
        let out = outcomes(&mut e, &stores, true);
        let writes: Vec<_> = out
            .iter()
            .filter(|o| matches!(o, StoreOutcome::BypassWrite(_)))
            .collect();
        assert_eq!(writes.len(), 1);
        assert!(matches!(writes[0], StoreOutcome::BypassWrite(0)));
        assert!(!out.iter().any(|o| matches!(o, StoreOutcome::Allocate(_))));
    }

    #[test]
    fn allocate_when_bypass_disallowed() {
        let mut e = StoreEngine::new();
        let out = outcomes(&mut e, &[(0, 8)], false);
        assert_eq!(out, vec![StoreOutcome::Allocate(0)]);
    }

    #[test]
    fn partial_sector_drain_costs_rmw() {
        let mut e = StoreEngine::new();
        let mut out = outcomes(&mut e, &[(0, 8)], true);
        e.drain(&mut out);
        assert!(out.contains(&StoreOutcome::PartialWrite(0)));
    }

    #[test]
    fn wcb_displacement_flushes_partial() {
        let mut e = StoreEngine::new();
        // Touch one chunk in each of WCB_ENTRIES+1 distinct sectors.
        let stores: Vec<(u64, u64)> = (0..=WCB_ENTRIES as u64)
            .map(|i| (i * crate::SECTOR_BYTES, 8))
            .collect();
        let out = outcomes(&mut e, &stores, true);
        let partials = out
            .iter()
            .filter(|o| matches!(o, StoreOutcome::PartialWrite(_)))
            .count();
        assert_eq!(partials, 1);
    }

    #[test]
    fn store_spanning_two_sectors() {
        let mut e = StoreEngine::new();
        // 16-byte store at offset 56 crosses into sector 1.
        let out = outcomes(&mut e, &[(56, 16)], true);
        // Nothing full yet; both sectors buffered.
        assert!(out.iter().all(|o| matches!(o, StoreOutcome::Buffered)));
        let mut drained = Vec::new();
        e.drain(&mut drained);
        assert_eq!(drained.len(), 2);
    }

    #[test]
    fn invalidate_removes_pending_entry() {
        let mut e = StoreEngine::new();
        let mut out = Vec::new();
        e.store_miss(0, 8, true, &mut out);
        e.invalidate(0);
        let mut drained = Vec::new();
        e.drain(&mut drained);
        assert!(drained.is_empty());
    }

    #[test]
    fn allocate_subsumes_existing_buffer() {
        let mut e = StoreEngine::new();
        let mut out = Vec::new();
        e.store_miss(0, 8, true, &mut out);
        // Stride stream appears; next store to same sector allocates and
        // the WCB entry must vanish (no later phantom partial write).
        e.store_miss(8, 8, false, &mut out);
        let mut drained = Vec::new();
        e.drain(&mut drained);
        assert!(drained.is_empty());
        assert!(out.contains(&StoreOutcome::Allocate(0)));
    }
}
