//! The per-core cache hierarchy: L1 → L2 → L3 → socket memory interface.
//!
//! Each simulated core owns private L1/L2 caches, a share of the socket L3
//! (sized when a workload starts, from the number of active cores — the
//! slice-borrowing model), a stream/prefetch engine and a store engine.
//! Memory-level transactions are recorded on the shared socket
//! [`NestCounters`].
//!
//! The hierarchy is managed (mostly) inclusively: L3 holds every cached
//! sector, a hit at any level refreshes that level's LRU state and
//! promotes the sector into L1, clean L1/L2 evictions are dropped (the L3
//! copy remains), and dirty evictions demote downward until they land on a
//! resident copy or reach memory. Effective capacity for a core is
//! therefore its L3 share exactly — matching the 5 MB / 110 MB capacity
//! arithmetic of the paper's Equations 3, 4 and 7 — and the hot simulation
//! path costs a single L3 tag probe per access.

use std::sync::Arc;

use crate::cache::{sector_mix, Evicted, SetAssocCache};
use crate::counters::{Direction, NestCounters};
use crate::machine::{CoreEvent, CoreEventCounters};
use crate::prefetch::{PrefetchEngine, PrefetchRequest};
use crate::store::{StoreEngine, StoreOutcome};
use crate::verify::ShadowLedger;
use crate::SECTOR_BYTES;
use p9_arch::MBA_CHANNELS;

/// Cycle costs of the timing model. The numbers are round POWER9-flavoured
/// figures; the reproduction depends on their order of magnitude (runtime
/// grows with problem size, misses cost more than hits), not their exact
/// values.
#[derive(Clone, Copy, Debug)]
pub struct AccessCosts {
    /// Demand hit in L1.
    pub l1_hit: u64,
    /// Demand hit in L2 (promotion included).
    pub l2_hit: u64,
    /// Demand hit in L3 (promotion included).
    pub l3_hit: u64,
    /// Exposed latency of an unprefetched demand miss to memory.
    pub mem_lat: u64,
    /// Bandwidth occupancy per 64-byte memory transaction (charged to the
    /// issuing core for every transaction, including prefetches and
    /// writebacks).
    pub mem_bw: u64,
    /// A store absorbed by a write-combining buffer.
    pub store_buffered: u64,
}

impl Default for AccessCosts {
    fn default() -> Self {
        AccessCosts {
            l1_hit: 2,
            l2_hit: 8,
            l3_hit: 24,
            mem_lat: 120,
            mem_bw: 12,
            store_buffered: 1,
        }
    }
}

/// Switchable model mechanisms, for ablation studies. Defaults are the
/// full model; the `repro-bench` `ablation` binary regenerates key
/// results with each mechanism disabled to show what it contributes.
#[derive(Clone, Copy, Debug)]
pub struct ModelPolicy {
    /// Sequential store streams gather and bypass the cache (no RFO).
    /// Off: every store miss write-allocates.
    pub store_gather_bypass: bool,
    /// Streaming store-allocates insert at mid-LRU and writeback merges do
    /// not refresh LRU. Off: plain MRU insertion everywhere.
    pub anti_pollution: bool,
    /// The hardware stream prefetcher issues fills. Off: streams are still
    /// detected (the bypass rule needs them) but nothing is prefetched.
    pub hw_prefetch: bool,
}

impl Default for ModelPolicy {
    fn default() -> Self {
        ModelPolicy {
            store_gather_bypass: true,
            anti_pollution: true,
            hw_prefetch: true,
        }
    }
}

/// Statistics a core accumulates while executing a trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreStats {
    pub loads: u64,
    pub stores: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub l3_hits: u64,
    pub demand_misses: u64,
    pub prefetch_fills: u64,
    pub bypass_writes: u64,
    pub rmw_partials: u64,
    pub store_allocates: u64,
    pub writebacks: u64,
}

/// One simulated core.
#[derive(Debug)]
pub struct CoreSim {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    prefetch: PrefetchEngine,
    stores: StoreEngine,
    counters: Arc<NestCounters>,
    /// Socket-level core-event aggregation target (if wired).
    core_events: Option<Arc<CoreEventCounters>>,
    /// Stats already flushed to `core_events`.
    flushed: CoreStats,
    flushed_cycles: u64,
    costs: AccessCosts,
    policy: ModelPolicy,
    /// Cycle counter for this core.
    cycles: u64,
    /// `dcbtst`-style software-prefetch hint: while set, store misses take
    /// the allocate path regardless of stream state (the
    /// `-fprefetch-loop-arrays` compilation mode).
    sw_prefetch_stores: bool,
    stats: CoreStats,
    /// Independent second set of books for every sector this core records
    /// on the nest counters (no-op unless the `verify` feature is on).
    shadow: ShadowLedger,
    // Scratch buffers reused across calls to avoid per-access allocation.
    scratch_pf: PrefetchRequest,
    scratch_store: Vec<StoreOutcome>,
    /// Hot-path shortcuts enabled (observationally identical to the
    /// reference path; see [`CoreSim::set_fast_path`]). Defaults to on
    /// unless the crate is built with the `slowpath-reference` feature.
    fast_path: bool,
    /// A bulk `load_seq`/`store_seq` call is in flight: memory-level
    /// transactions accumulate in `batch_read`/`batch_write` and flush to
    /// the shared [`NestCounters`] with one atomic add per channel at the
    /// end of the call.
    batching: bool,
    batch_read: [u64; MBA_CHANNELS],
    batch_write: [u64; MBA_CHANNELS],
}

impl CoreSim {
    /// Build a core with the given cache capacities (bytes) and
    /// associativities, wired to `counters`.
    pub fn new(
        l1: (u64, usize),
        l2: (u64, usize),
        l3: (u64, usize),
        counters: Arc<NestCounters>,
        costs: AccessCosts,
    ) -> Self {
        CoreSim {
            l1: SetAssocCache::new(l1.0, l1.1),
            l2: SetAssocCache::new(l2.0, l2.1),
            l3: SetAssocCache::new(l3.0, l3.1),
            prefetch: PrefetchEngine::new(),
            stores: StoreEngine::new(),
            counters,
            core_events: None,
            flushed: CoreStats::default(),
            flushed_cycles: 0,
            costs,
            policy: ModelPolicy::default(),
            cycles: 0,
            sw_prefetch_stores: false,
            stats: CoreStats::default(),
            shadow: ShadowLedger::default(),
            scratch_pf: PrefetchRequest::default(),
            scratch_store: Vec::with_capacity(8),
            fast_path: cfg!(not(feature = "slowpath-reference")),
            batching: false,
            batch_read: [0; MBA_CHANNELS],
            batch_write: [0; MBA_CHANNELS],
        }
    }

    /// Toggle the hot-path shortcuts (shared set-hash across levels, the
    /// locked-stream prefetch-engine shortcut, batched MBA accounting for
    /// sequential runs). Both settings produce bit-identical simulation
    /// results; the reference path exists so tests can assert exactly
    /// that. Building with the `slowpath-reference` cargo feature flips
    /// the default to off.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Whether the hot-path shortcuts are enabled.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Re-size this core's L3 share (the slice-borrowing model). Resident
    /// L3 contents are flushed — dirty sectors are written back.
    pub fn configure_l3(&mut self, capacity_bytes: u64, ways: usize) {
        let counters = Arc::clone(&self.counters);
        let shadow = &mut self.shadow;
        let mut wb = 0u64;
        self.l3.flush(|s| {
            counters.record_sector(s, Direction::Write);
            shadow.record(s, Direction::Write);
            wb += 1;
        });
        self.stats.writebacks += wb;
        self.l3 = SetAssocCache::new(capacity_bytes, ways);
    }

    /// Enable or disable the `dcbtst` software-prefetch store mode
    /// (`-fprefetch-loop-arrays`).
    pub fn set_software_prefetch(&mut self, enabled: bool) {
        self.sw_prefetch_stores = enabled;
    }

    /// Swap the model-mechanism policy (ablation studies).
    pub fn set_policy(&mut self, policy: ModelPolicy) {
        self.policy = policy;
    }

    /// Wire this core's statistics into a socket-level core-event
    /// aggregate (flushed at every [`CoreSim::fence`]).
    pub fn wire_core_events(&mut self, target: Arc<CoreEventCounters>) {
        self.core_events = Some(target);
    }

    /// The model-mechanism policy in effect.
    pub fn policy(&self) -> ModelPolicy {
        self.policy
    }

    /// True when a stride-N stream is live on this core (bypass suppressed).
    pub fn stride_stream_active(&self) -> bool {
        self.prefetch.stride_stream_active()
    }

    /// Cycle count accumulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Execution statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Diagnostic: is `sector` resident in this core's L3?
    pub fn l3_contains(&self, sector: u64) -> bool {
        self.l3.contains(sector)
    }

    /// Diagnostic: resident L3 sector count.
    pub fn l3_resident(&self) -> usize {
        self.l3.resident()
    }

    /// The shadow transaction ledger (`verify` feature).
    #[cfg(feature = "verify")]
    pub fn shadow(&self) -> &ShadowLedger {
        &self.shadow
    }

    /// Check this core's stats identity against its shadow ledger: shadow
    /// read transactions must equal `demand_misses + prefetch_fills`, and
    /// shadow write transactions must equal
    /// `writebacks + bypass_writes + rmw_partials`.
    #[cfg(feature = "verify")]
    pub fn verify_conservation(&self, core: usize) -> Result<(), crate::verify::ConservationError> {
        let shadow_reads: u64 = self.shadow.reads().iter().sum();
        let stats_reads = self.stats.demand_misses + self.stats.prefetch_fills;
        if shadow_reads != stats_reads {
            return Err(crate::verify::ConservationError::CoreStats {
                core,
                dir: "read",
                shadow_tx: shadow_reads,
                stats_tx: stats_reads,
            });
        }
        let shadow_writes: u64 = self.shadow.writes().iter().sum();
        let stats_writes =
            self.stats.writebacks + self.stats.bypass_writes + self.stats.rmw_partials;
        if shadow_writes != stats_writes {
            return Err(crate::verify::ConservationError::CoreStats {
                core,
                dir: "write",
                shadow_tx: shadow_writes,
                stats_tx: stats_writes,
            });
        }
        Ok(())
    }

    /// Account `cycles` of pure computation (FLOPs, address arithmetic…).
    #[inline]
    pub fn compute(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Demand load of `len` bytes at byte address `addr`.
    #[inline]
    pub fn load(&mut self, addr: u64, len: u64) {
        debug_assert!(len > 0);
        self.stats.loads += 1;
        let first = addr / SECTOR_BYTES;
        let last = (addr + len - 1) / SECTOR_BYTES;
        for sector in first..=last {
            self.load_sector(sector);
        }
    }

    /// Sequential load of `len` bytes starting at `base` (bulk fast path:
    /// touches each sector once, trains the stream engine identically to a
    /// element-by-element sweep).
    pub fn load_seq(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        let first = base / SECTOR_BYTES;
        let last = (base + len - 1) / SECTOR_BYTES;
        self.stats.loads += (last - first) + 1;
        let own_batch = self.begin_batch();
        for sector in first..=last {
            self.load_sector(sector);
        }
        if own_batch {
            self.flush_batch();
        }
    }

    /// Demand store of `len` bytes at `addr`.
    #[inline]
    pub fn store(&mut self, addr: u64, len: u64) {
        debug_assert!(len > 0);
        self.stats.stores += 1;
        let first = addr / SECTOR_BYTES;
        let last = (addr + len - 1) / SECTOR_BYTES;
        for sector in first..=last {
            let lo = addr.max(sector * SECTOR_BYTES);
            let hi = (addr + len).min((sector + 1) * SECTOR_BYTES);
            self.store_sector(sector, lo, hi);
        }
    }

    /// Sequential store of `len` bytes starting at `base`.
    pub fn store_seq(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        // Emit chunk stores so the WCB sees full sectors fill up.
        let mut addr = base;
        let end = base + len;
        let own_batch = self.begin_batch();
        while addr < end {
            let sector_end = (addr / SECTOR_BYTES + 1) * SECTOR_BYTES;
            let hi = end.min(sector_end);
            self.stats.stores += 1;
            self.store_sector(addr / SECTOR_BYTES, addr, hi);
            addr = hi;
        }
        if own_batch {
            self.flush_batch();
        }
    }

    /// Flush pending write-combining buffers (end of a kernel region) and
    /// publish core-event statistics to the socket aggregate.
    pub fn fence(&mut self) {
        let mut out = std::mem::take(&mut self.scratch_store);
        out.clear();
        self.stores.drain(&mut out);
        self.apply_store_outcomes(&out);
        self.scratch_store = out;
        self.publish_core_events();
    }

    /// Push the statistics delta since the last publish into the socket's
    /// core-event counters. The mapping is the socket-aggregated view of
    /// the POWER core PMU: `PM_RUN_CYC` = cycles, `PM_LD_CMPL` /
    /// `PM_ST_CMPL` = completed loads/stores, `PM_LD_MISS_L1` = demand
    /// accesses satisfied beyond L1, `PM_DATA_FROM_MEMORY` = fills from
    /// memory (demand + prefetch).
    fn publish_core_events(&mut self) {
        let Some(target) = &self.core_events else {
            return;
        };
        let s = self.stats;
        let f = self.flushed;
        target.add(CoreEvent::RunCyc, self.cycles - self.flushed_cycles);
        target.add(CoreEvent::LdCmpl, s.loads - f.loads);
        target.add(CoreEvent::StCmpl, s.stores - f.stores);
        target.add(
            CoreEvent::LdMissL1,
            (s.l2_hits + s.l3_hits + s.demand_misses) - (f.l2_hits + f.l3_hits + f.demand_misses),
        );
        target.add(
            CoreEvent::DataFromMem,
            (s.demand_misses + s.prefetch_fills) - (f.demand_misses + f.prefetch_fills),
        );
        self.flushed = s;
        self.flushed_cycles = self.cycles;
    }

    /// Write back and drop everything cached (used by tests that need exact
    /// end-to-end byte accounting, and between independent experiments).
    pub fn flush_caches(&mut self) {
        self.fence();
        // Merge inner-level dirty sectors into L3 first so each dirty
        // sector is written back exactly once despite inclusion.
        let mut inner_dirty = Vec::new();
        self.l1.flush(|s| inner_dirty.push(s));
        self.l2.flush(|s| inner_dirty.push(s));
        for s in inner_dirty {
            if !self.l3.access(s, true) {
                if let Evicted::Dirty(v) = self.l3.insert(s, true) {
                    self.stats.writebacks += 1;
                    self.counters.record_sector(v, Direction::Write);
                    self.shadow.record(v, Direction::Write);
                    self.cycles += self.costs.mem_bw;
                }
            }
        }
        let counters = Arc::clone(&self.counters);
        let shadow = &mut self.shadow;
        let mut wb = 0u64;
        self.l3.flush(|s| {
            counters.record_sector(s, Direction::Write);
            shadow.record(s, Direction::Write);
            wb += 1;
        });
        self.stats.writebacks += wb;
        self.cycles += wb * self.costs.mem_bw;
        self.prefetch.reset();
    }

    /// Forget all state without generating traffic (fresh process image).
    pub fn reset_cold(&mut self) {
        let l1 = (self.l1.capacity_bytes(), self.l1.ways());
        let l2 = (self.l2.capacity_bytes(), self.l2.ways());
        let l3 = (self.l3.capacity_bytes(), self.l3.ways());
        self.l1 = SetAssocCache::new(l1.0, l1.1);
        self.l2 = SetAssocCache::new(l2.0, l2.1);
        self.l3 = SetAssocCache::new(l3.0, l3.1);
        self.prefetch.reset();
        self.stores = StoreEngine::new();
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Record one memory-level transaction on the nest counters. Inside a
    /// bulk sequential call the per-channel count accumulates locally and
    /// flushes in [`CoreSim::flush_batch`] — the deferred adds land on
    /// exactly the channels [`NestCounters::record_sector`] would have
    /// hit, so quiescent counter state is identical either way. The
    /// shadow ledger always records per-sector.
    #[inline]
    fn record_tx(&mut self, sector: u64, dir: Direction) {
        if self.batching {
            let ch = NestCounters::channel_of(sector);
            match dir {
                Direction::Read => self.batch_read[ch] += 1,
                Direction::Write => self.batch_write[ch] += 1,
            }
        } else {
            self.counters.record_sector(sector, dir);
        }
        self.shadow.record(sector, dir);
    }

    /// Start batching MBA accounting for a bulk call. Returns whether
    /// this call owns the batch (nested bulk calls keep the outer batch).
    #[inline]
    fn begin_batch(&mut self) -> bool {
        if self.batching || !self.fast_path {
            return false;
        }
        self.batching = true;
        true
    }

    /// Flush the locally accumulated transaction counts: one atomic add
    /// per touched channel and direction.
    fn flush_batch(&mut self) {
        self.batching = false;
        for ch in 0..MBA_CHANNELS {
            let r = std::mem::take(&mut self.batch_read[ch]);
            self.counters.record_sectors(ch, Direction::Read, r);
            let w = std::mem::take(&mut self.batch_write[ch]);
            self.counters.record_sectors(ch, Direction::Write, w);
        }
    }

    #[inline]
    fn mem_read(&mut self, sector: u64, demand: bool) {
        self.record_tx(sector, Direction::Read);
        self.cycles += self.costs.mem_bw;
        if demand {
            self.cycles += self.costs.mem_lat;
            self.stats.demand_misses += 1;
        } else {
            self.stats.prefetch_fills += 1;
        }
    }

    #[inline]
    fn mem_write(&mut self, sector: u64) {
        self.record_tx(sector, Direction::Write);
        self.cycles += self.costs.mem_bw;
    }

    fn load_sector(&mut self, sector: u64) {
        // Fast path: the access continues an already locked-on stream, so
        // the prefetch-engine table scan reduces to an MRU-entry advance
        // and at most one tail prefetch.
        if self.fast_path {
            if let Some(pf) = self.prefetch.fast_advance(sector) {
                self.demand_load_probe(sector);
                if self.policy.hw_prefetch {
                    if let Some(p) = pf {
                        self.prefetch_sector(p);
                    }
                }
                return;
            }
        }

        let mut req = std::mem::take(&mut self.scratch_pf);
        self.prefetch.observe_load(sector, &mut req);
        self.demand_load_probe(sector);
        self.issue_prefetches(&req);
        self.scratch_pf = req;
    }

    /// The demand L1→L2→L3→memory probe chain of a load, sharing one
    /// [`sector_mix`] across every level's set lookup.
    #[inline]
    fn demand_load_probe(&mut self, sector: u64) {
        let mix = sector_mix(sector);
        if self.l1.access_mixed(sector, mix, false) {
            self.stats.l1_hits += 1;
            self.cycles += self.costs.l1_hit;
        } else if self.l2.access_mixed(sector, mix, false) {
            self.stats.l2_hits += 1;
            self.cycles += self.costs.l2_hit;
            self.install_l1_mixed(sector, mix, false);
        } else if self.l3.access_mixed(sector, mix, false) {
            self.stats.l3_hits += 1;
            self.cycles += self.costs.l3_hit;
            self.install_l1_mixed(sector, mix, false);
        } else {
            self.mem_read(sector, true);
            // A pending WCB entry for this sector merges into the fetched
            // line (store-to-load forwarding at the line fill).
            self.stores.invalidate(sector);
            self.fill_mixed(sector, mix, false);
        }
    }

    /// Install a freshly fetched sector: into L3 (the inclusive outer
    /// level) and into L1 (where the demand hit it).
    fn install_l3_then_l1(&mut self, sector: u64, mix: u64, dirty: bool) {
        match self.l3.insert_mixed(sector, mix, false) {
            Evicted::None | Evicted::Clean(_) => {}
            Evicted::Dirty(v) => {
                self.stats.writebacks += 1;
                self.mem_write(v);
            }
        }
        self.install_l1_mixed(sector, mix, dirty);
    }

    #[inline]
    fn fill_mixed(&mut self, sector: u64, mix: u64, dirty: bool) {
        self.install_l3_then_l1(sector, mix, dirty);
    }

    fn store_sector(&mut self, sector: u64, lo: u64, hi: u64) {
        // Stores train the stream detector exactly like loads: POWER9
        // detects store streams too, and a strided *store* stream also
        // suppresses bypass (Listing 8's `out` incurs a read per write).
        // Store streams do not issue read prefetch (the allocate path
        // below performs its own fills), so a fast-path advance simply
        // discards its tail-prefetch target.
        let advanced = self.fast_path && self.prefetch.fast_advance(sector).is_some();
        if !advanced {
            let mut req = std::mem::take(&mut self.scratch_pf);
            self.prefetch.observe_load(sector, &mut req);
            req.sectors.clear();
            self.scratch_pf = req;
        }

        let mix = sector_mix(sector);
        if self.l1.access_mixed(sector, mix, true) {
            self.stats.l1_hits += 1;
            self.cycles += self.costs.l1_hit;
            return;
        }
        if self.l2.access_mixed(sector, mix, true) {
            self.stats.l2_hits += 1;
            self.cycles += self.costs.l2_hit;
            self.install_l1_mixed(sector, mix, true);
            return;
        }
        if self.l3.access_mixed(sector, mix, true) {
            self.stats.l3_hits += 1;
            self.cycles += self.costs.l3_hit;
            self.install_l1_mixed(sector, mix, true);
            return;
        }

        // Stores write-allocate by default; only *streaming* stores — part
        // of a confirmed sequential store stream, on a core with no active
        // stride-N stream and no dcbtst hint — gather into full sectors
        // and bypass the cache (no read-for-ownership).
        let bypass_allowed = self.policy.store_gather_bypass
            && !self.sw_prefetch_stores
            && !self.prefetch.stride_stream_active()
            && self.prefetch.sequential_stream_at(sector);
        let mut out = std::mem::take(&mut self.scratch_store);
        out.clear();
        self.stores
            .store_miss(lo, hi - lo, bypass_allowed, &mut out);
        self.apply_store_outcomes(&out);
        self.scratch_store = out;
    }

    fn apply_store_outcomes(&mut self, outcomes: &[StoreOutcome]) {
        for &o in outcomes {
            match o {
                StoreOutcome::Buffered => {
                    self.cycles += self.costs.store_buffered;
                }
                StoreOutcome::BypassWrite(s) => {
                    self.stats.bypass_writes += 1;
                    self.mem_write(s);
                }
                StoreOutcome::PartialWrite(s) => {
                    self.stats.rmw_partials += 1;
                    self.mem_read(s, false);
                    self.mem_write(s);
                }
                StoreOutcome::Allocate(s) => {
                    self.stats.store_allocates += 1;
                    // With dcbtst software prefetch the allocate's read is
                    // issued ahead of the store and its latency is hidden
                    // (the -fprefetch-loop-arrays speedup of Fig. 7b);
                    // without it the read-for-ownership is a demand miss.
                    self.mem_read(s, !self.sw_prefetch_stores);
                    let mix = sector_mix(s);
                    // Store-allocated bursts are streaming traffic: insert
                    // at mid-LRU so they cannot flush the read working set.
                    match if self.policy.anti_pollution {
                        self.l3.insert_mid_mixed(s, mix, false)
                    } else {
                        self.l3.insert_mixed(s, mix, false)
                    } {
                        Evicted::None | Evicted::Clean(_) => {}
                        Evicted::Dirty(v) => {
                            self.stats.writebacks += 1;
                            self.mem_write(v);
                        }
                    }
                    self.install_l1_mixed(s, mix, true);
                }
            }
        }
    }

    fn issue_prefetches(&mut self, req: &PrefetchRequest) {
        if !self.policy.hw_prefetch {
            return;
        }
        for &p in &req.sectors {
            self.prefetch_sector(p);
        }
    }

    /// Issue one hardware prefetch for sector `p`.
    #[inline]
    fn prefetch_sector(&mut self, p: u64) {
        let mix = sector_mix(p);
        if self.l1.contains_mixed(p, mix) {
            return;
        }
        // Prefetch promotes resident sectors to L1 (latency hiding,
        // no memory traffic) and fetches the rest from memory.
        if self.l2.access_mixed(p, mix, false) || self.l3.access_mixed(p, mix, false) {
            self.install_l1_mixed(p, mix, false);
            return;
        }
        self.mem_read(p, false);
        self.fill_mixed(p, mix, false);
    }

    /// Put `sector` into L1. Clean victims are dropped (their L3 copy, if
    /// any, stays resident); dirty victims demote to L2.
    fn install_l1_mixed(&mut self, sector: u64, mix: u64, dirty: bool) {
        match self.l1.insert_mixed(sector, mix, dirty) {
            Evicted::None | Evicted::Clean(_) => {}
            Evicted::Dirty(v) => self.demote_dirty_l2(v),
        }
    }

    fn demote_dirty_l2(&mut self, sector: u64) {
        if self.l2.access(sector, true) {
            return;
        }
        match self.l2.insert(sector, true) {
            Evicted::None | Evicted::Clean(_) => {}
            Evicted::Dirty(v) => self.demote_dirty_l3(v),
        }
    }

    fn demote_dirty_l3(&mut self, sector: u64) {
        // A writeback merge is not a use: mark dirty without an LRU
        // refresh so streaming dirty data cannot keep itself resident.
        let present = if self.policy.anti_pollution {
            self.l3.touch_dirty(sector)
        } else {
            self.l3.access(sector, true)
        };
        if present {
            return;
        }
        match if self.policy.anti_pollution {
            self.l3.insert_mid(sector, true)
        } else {
            self.l3.insert(sector, true)
        } {
            Evicted::None | Evicted::Clean(_) => {}
            Evicted::Dirty(v) => {
                self.stats.writebacks += 1;
                self.mem_write(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_core(l3_bytes: u64) -> (CoreSim, Arc<NestCounters>) {
        let counters = Arc::new(NestCounters::new());
        let core = CoreSim::new(
            (4 * 1024, 8),
            (16 * 1024, 8),
            (l3_bytes, 16),
            Arc::clone(&counters),
            AccessCosts::default(),
        );
        (core, counters)
    }

    #[test]
    fn streaming_read_traffic_is_exact() {
        let (mut core, counters) = test_core(1 << 20);
        let bytes = 64 * 1024u64;
        core.load_seq(0, bytes);
        core.fence();
        // Every byte read exactly once; prefetch overshoot past the end is
        // bounded by the prefetch depth.
        let read = counters.total_read();
        assert!(read >= bytes, "read {read} < {bytes}");
        assert!(read <= bytes + 16 * SECTOR_BYTES, "read {read} overshoot");
        assert_eq!(counters.total_write(), 0);
    }

    #[test]
    fn streaming_write_bypasses_cache() {
        let (mut core, counters) = test_core(1 << 20);
        let bytes = 64 * 1024u64;
        // 8-byte sequential stores, like `y[i] = sum`. The first few
        // sectors write-allocate while the stream detector confirms the
        // store stream; everything after gathers and bypasses.
        for i in 0..bytes / 8 {
            core.store(i * 8, 8);
        }
        core.fence();
        let startup = 8 * crate::SECTOR_BYTES;
        assert!(
            counters.total_write() >= bytes - startup,
            "writes {} too low",
            counters.total_write()
        );
        assert!(
            counters.total_read() <= startup,
            "bypass stores must not read: {}",
            counters.total_read()
        );
    }

    #[test]
    fn strided_load_stream_forces_read_per_write() {
        let (mut core, counters) = test_core(1 << 20);
        // Establish a strided load stream (stride 4 sectors).
        for k in 0..64u64 {
            core.load(1 << 30 | (k * 4 * SECTOR_BYTES), 8);
        }
        assert!(core.stride_stream_active());
        let before = counters.snapshot();
        for i in 0..1024u64 {
            core.store(i * 8, 8);
        }
        core.fence();
        core.flush_caches();
        let d = counters.snapshot().delta(&before);
        // Allocate path: ~8 KiB of RFO reads and ~8 KiB of writebacks.
        assert!(d.total_read() >= 8 * 1024, "reads {}", d.total_read());
        assert!(d.total_write() >= 8 * 1024, "writes {}", d.total_write());
    }

    #[test]
    fn software_prefetch_forces_allocation() {
        let (mut core, counters) = test_core(1 << 20);
        core.set_software_prefetch(true);
        for i in 0..1024u64 {
            core.store(i * 8, 8);
        }
        core.fence();
        core.flush_caches();
        let reads = counters.total_read();
        let writes = counters.total_write();
        assert!(reads >= 8 * 1024, "dcbtst must read the target: {reads}");
        assert!(writes >= 8 * 1024);
    }

    #[test]
    fn cache_hit_generates_no_traffic() {
        let (mut core, counters) = test_core(1 << 20);
        core.load_seq(0, 2048);
        let before = counters.snapshot();
        core.load_seq(0, 2048); // all hits now
        let d = counters.snapshot().delta(&before);
        assert_eq!(d.total_read(), 0);
        assert_eq!(d.total_write(), 0);
    }

    #[test]
    fn capacity_exceeded_causes_re_reads() {
        let (mut core, counters) = test_core(64 * 1024); // small L3
        let big = 1 << 20; // 1 MiB working set >> caches
        core.load_seq(0, big);
        let first = counters.total_read();
        core.load_seq(0, big);
        let second = counters.total_read() - first;
        // Second sweep must re-read nearly everything.
        assert!(second as f64 > 0.9 * big as f64, "second sweep {second}");
    }

    #[test]
    fn dirty_data_written_back_on_eviction() {
        let (mut core, counters) = test_core(64 * 1024);
        // Allocate-mode stores (software prefetch on) over 1 MiB.
        core.set_software_prefetch(true);
        let big = 1 << 20u64;
        for i in 0..big / 8 {
            core.store(i * 8, 8);
        }
        core.fence();
        // Most dirty sectors must already be evicted + written back.
        let w = counters.total_write();
        assert!(w as f64 > 0.8 * big as f64, "writebacks {w}");
    }

    #[test]
    fn configure_l3_flushes_dirty() {
        let (mut core, counters) = test_core(1 << 20);
        core.set_software_prefetch(true);
        for i in 0..512u64 {
            core.store(i * 8, 8);
        }
        core.fence();
        let before_w = counters.total_write();
        core.flush_caches();
        assert!(counters.total_write() > before_w);
    }

    #[test]
    fn cycles_accumulate_and_misses_cost_more() {
        let (mut core, _c) = test_core(1 << 20);
        core.load_seq(0, 64 * 1024);
        let cold = core.cycles();
        let start = core.cycles();
        core.load_seq(0, 64 * 1024);
        let warm = core.cycles() - start;
        assert!(cold > warm, "cold {cold} <= warm {warm}");
    }

    #[test]
    fn fast_path_is_observationally_identical() {
        // Drive two cores — fast path on vs. reference — through the same
        // mixed workload. Stats, cycles and per-channel counters must be
        // bit-identical.
        let run = |fast: bool| {
            let (mut core, counters) = test_core(256 * 1024);
            core.set_fast_path(fast);
            // Sequential reads/writes (bulk + element-wise), strided reads
            // (the GEMM B pattern), strided stores, reuse, and a second
            // sweep over partially evicted data.
            core.load_seq(0, 96 * 1024);
            for i in 0..4096u64 {
                core.store((1 << 22) + i * 8, 8);
            }
            for k in 0..2048u64 {
                core.load((1 << 24) + k * 3 * SECTOR_BYTES, 8);
            }
            for i in 0..2048u64 {
                core.store((1 << 26) + i * 256, 8);
            }
            core.load_seq(0, 96 * 1024);
            core.set_software_prefetch(true);
            for i in 0..2048u64 {
                core.store((1 << 27) + i * 8, 8);
            }
            core.set_software_prefetch(false);
            core.store_seq(1 << 28, 64 * 1024);
            core.fence();
            core.flush_caches();
            (core.stats(), core.cycles(), counters.snapshot())
        };
        let (s_fast, c_fast, n_fast) = run(true);
        let (s_slow, c_slow, n_slow) = run(false);
        assert_eq!(s_fast, s_slow, "core stats diverge");
        assert_eq!(c_fast, c_slow, "cycle counts diverge");
        assert_eq!(n_fast, n_slow, "nest counters diverge");
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let (mut core, _c) = test_core(1 << 20);
        core.load_seq(0, 4096);
        core.load_seq(0, 4096);
        let s = core.stats();
        assert!(s.l1_hits > 0);
        assert!(s.demand_misses > 0 || s.prefetch_fills > 0);
        assert_eq!(s.loads, 2 * (4096 / SECTOR_BYTES));
    }
}

#[cfg(test)]
mod dcbtst_timing_tests {
    use super::*;
    use crate::counters::NestCounters;
    use std::sync::Arc;

    /// Fig. 7b's effect: with dcbtst the allocate path's reads are
    /// prefetches (latency hidden), so the same store trace takes fewer
    /// cycles while moving identical bytes.
    #[test]
    fn software_prefetch_hides_allocate_latency() {
        let run = |sw: bool| {
            let counters = Arc::new(NestCounters::new());
            let mut core = CoreSim::new(
                (4 * 1024, 8),
                (16 * 1024, 8),
                (1 << 20, 16),
                Arc::clone(&counters),
                AccessCosts::default(),
            );
            core.set_software_prefetch(sw);
            // Strided stores: never a sequential stream, always allocate.
            for i in 0..4096u64 {
                core.store(i * 256, 8);
            }
            core.fence();
            (core.cycles(), counters.total_read(), counters.total_write())
        };
        let (cyc_demand, rd_demand, wr_demand) = run(false);
        let (cyc_sw, rd_sw, wr_sw) = run(true);
        assert_eq!(rd_demand, rd_sw, "traffic must not change");
        assert_eq!(wr_demand, wr_sw);
        assert!(
            cyc_sw * 2 < cyc_demand,
            "dcbtst must hide latency: {cyc_sw} vs {cyc_demand}"
        );
    }
}
