//! The whole-machine simulation facade.
//!
//! [`SimMachine`] instantiates per-core cache hierarchies for every usable
//! core of a [`p9_arch::Machine`], owns the socket-shared state (nest
//! counters, simulated clock, noise process), and provides the workload
//! execution API:
//!
//! * [`SimMachine::run_parallel`] — run one closure per active core, on real
//!   OS threads. Per-core state is private and counters are atomic, so this
//!   is exact under the simulator's concurrency model (see crate docs).
//!   Activating `n` cores sizes each core's L3 share according to the
//!   slice-borrowing rule.
//! * [`SimMachine::alloc`] — hand out virtual regions for trace generation.
//!
//! Measurement infrastructure (PAPI components, the PCP daemon) interacts
//! with sockets through [`SocketShared`], which exposes the counters, the
//! simulated clock and the measurement-overhead injection point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::addr::{AddressSpace, Region};
use crate::counters::{Direction, NestCounters};
use crate::hierarchy::{AccessCosts, CoreSim};
use crate::noise::NoiseConfig;
use crate::privilege::{PrivilegeLevel, PrivilegeToken};
use p9_arch::{Machine, MachineKind};

/// Socket-aggregated core-event counters (the "core" PMU view): every
/// core flushes its local statistics here at fence points. Indices follow
/// [`CoreEvent`].
#[derive(Debug, Default)]
pub struct CoreEventCounters {
    values: [AtomicU64; CoreEvent::COUNT],
}

/// The core-PMU events the simulator aggregates per socket.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreEvent {
    /// Run cycles (`PM_RUN_CYC`).
    RunCyc = 0,
    /// Completed load operations (`PM_LD_CMPL`).
    LdCmpl = 1,
    /// Completed store operations (`PM_ST_CMPL`).
    StCmpl = 2,
    /// L1D demand misses (`PM_LD_MISS_L1`).
    LdMissL1 = 3,
    /// Demand fetches from memory (`PM_DATA_FROM_MEMORY`).
    DataFromMem = 4,
}

impl CoreEvent {
    pub const COUNT: usize = 5;
    pub const ALL: [CoreEvent; Self::COUNT] = [
        CoreEvent::RunCyc,
        CoreEvent::LdCmpl,
        CoreEvent::StCmpl,
        CoreEvent::LdMissL1,
        CoreEvent::DataFromMem,
    ];

    /// The POWER event mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CoreEvent::RunCyc => "PM_RUN_CYC",
            CoreEvent::LdCmpl => "PM_LD_CMPL",
            CoreEvent::StCmpl => "PM_ST_CMPL",
            CoreEvent::LdMissL1 => "PM_LD_MISS_L1",
            CoreEvent::DataFromMem => "PM_DATA_FROM_MEMORY",
        }
    }
}

impl CoreEventCounters {
    /// Add `v` to one event's counter.
    pub fn add(&self, ev: CoreEvent, v: u64) {
        // relaxed-ok: monotonic statistic; readers model stale PMU reads
        // and never order other memory against this counter.
        self.values[ev as usize].fetch_add(v, Ordering::Relaxed);
    }

    /// Current value of one event.
    pub fn get(&self, ev: CoreEvent) -> u64 {
        // relaxed-ok: free-running statistic read, staleness is modelled.
        self.values[ev as usize].load(Ordering::Relaxed)
    }
}

/// State shared between the simulated socket, measurement components and
/// daemon threads.
#[derive(Debug)]
pub struct SocketShared {
    counters: Arc<NestCounters>,
    core_events: Arc<CoreEventCounters>,
    noise: NoiseConfig,
    rng: Mutex<StdRng>,
    time_cycles: AtomicU64,
    clock_hz: f64,
    /// Last counter snapshot seen by the conservation checker, for the
    /// monotonicity invariant (`verify` feature).
    #[cfg(feature = "verify")]
    last_verified: Mutex<crate::CounterSnapshot>,
}

impl SocketShared {
    /// A free-standing socket: nest counters, clock and noise stream
    /// without the per-core cache hierarchies a full [`SimMachine`]
    /// builds. The fleet simulator runs hundreds of hosts per process
    /// and only needs each host's DMA/measurement counter surface —
    /// constructing `SimMachine` per host would cost two orders of
    /// magnitude more memory for state nobody reads.
    pub fn standalone(noise: NoiseConfig, seed: u64, clock_hz: f64) -> Arc<Self> {
        Arc::new(Self::new(noise, seed, clock_hz))
    }

    fn new(noise: NoiseConfig, seed: u64, clock_hz: f64) -> Self {
        SocketShared {
            counters: Arc::new(NestCounters::new()),
            core_events: Arc::new(CoreEventCounters::default()),
            noise,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            time_cycles: AtomicU64::new(0),
            clock_hz,
            #[cfg(feature = "verify")]
            last_verified: Mutex::new(crate::CounterSnapshot::default()),
        }
    }

    /// Check that no channel counter moved backwards since the previous
    /// verification sample, then remember `snap` as the new baseline.
    #[cfg(feature = "verify")]
    fn check_monotonic(
        &self,
        snap: &crate::CounterSnapshot,
    ) -> Result<(), crate::verify::ConservationError> {
        let mut prev = self.last_verified.lock();
        for ch in 0..p9_arch::MBA_CHANNELS {
            if snap.read_bytes[ch] < prev.read_bytes[ch] {
                return Err(crate::verify::ConservationError::Monotonic {
                    channel: ch,
                    dir: "read",
                    prev: prev.read_bytes[ch],
                    now: snap.read_bytes[ch],
                });
            }
            if snap.write_bytes[ch] < prev.write_bytes[ch] {
                return Err(crate::verify::ConservationError::Monotonic {
                    channel: ch,
                    dir: "write",
                    prev: prev.write_bytes[ch],
                    now: snap.write_bytes[ch],
                });
            }
        }
        *prev = *snap;
        Ok(())
    }

    /// The socket's nest counters.
    pub fn counters(&self) -> &NestCounters {
        &self.counters
    }

    /// A shareable handle to the counters (for daemon threads).
    pub fn counters_arc(&self) -> Arc<NestCounters> {
        Arc::clone(&self.counters)
    }

    /// The socket's aggregated core-event counters.
    pub fn core_events(&self) -> &CoreEventCounters {
        &self.core_events
    }

    /// A shareable handle to the core-event counters.
    pub fn core_events_arc(&self) -> Arc<CoreEventCounters> {
        Arc::clone(&self.core_events)
    }

    /// Simulated time on this socket, in seconds.
    pub fn now_seconds(&self) -> f64 {
        // relaxed-ok: clock reads tolerate staleness by design (samplers
        // model asynchronous wall-clock reads).
        self.time_cycles.load(Ordering::Relaxed) as f64 / self.clock_hz
    }

    /// Simulated time in cycles.
    pub fn now_cycles(&self) -> u64 {
        // relaxed-ok: same stale-clock-read argument as now_seconds.
        self.time_cycles.load(Ordering::Relaxed)
    }

    /// Core clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Inject the memory traffic of one measurement action (counter start
    /// or stop). Called by the measurement substrates, *not* by workloads.
    pub fn measurement_touch(&self) {
        let (r, w) = {
            let mut rng = self.rng.lock();
            self.noise.sample_overhead(&mut *rng)
        };
        self.counters.record_bulk(r, Direction::Read);
        self.counters.record_bulk(w, Direction::Write);
    }

    /// Advance the socket clock by `dcycles`, accruing background traffic
    /// for the elapsed window.
    pub fn advance_cycles(&self, dcycles: u64) {
        if dcycles == 0 {
            return;
        }
        // relaxed-ok: monotonic clock advance; no other memory is
        // published through this counter.
        self.time_cycles.fetch_add(dcycles, Ordering::Relaxed);
        let seconds = dcycles as f64 / self.clock_hz;
        let (r, w) = {
            let mut rng = self.rng.lock();
            self.noise.sample_background(&mut *rng, seconds)
        };
        self.counters.record_bulk(r, Direction::Read);
        self.counters.record_bulk(w, Direction::Write);
    }

    /// Advance the socket clock by `seconds` of idle / host time.
    pub fn advance_seconds(&self, seconds: f64) {
        self.advance_cycles((seconds * self.clock_hz) as u64);
    }

    /// Record device DMA traffic (e.g. GPU H2D/D2H copies) on the nest.
    pub fn record_dma(&self, bytes: u64, dir: Direction) {
        self.counters.record_bulk(bytes, dir);
    }
}

/// One simulated socket: shared state plus per-core hierarchies.
#[derive(Debug)]
pub struct SocketSim {
    shared: Arc<SocketShared>,
    cores: Vec<CoreSim>,
    /// Number of cores the L3 shares are currently sized for (0 = not yet
    /// configured).
    configured_active: usize,
}

/// The simulated machine.
#[derive(Debug)]
pub struct SimMachine {
    arch: Machine,
    sockets: Vec<SocketSim>,
    costs: AccessCosts,
    address_space: AddressSpace,
}

impl SimMachine {
    /// Build a machine with the given noise model and RNG seed.
    pub fn new(arch: Machine, noise: NoiseConfig, seed: u64) -> Self {
        let costs = AccessCosts::default();
        let sockets = (0..arch.node.num_sockets())
            .map(|s| {
                let shared = Arc::new(SocketShared::new(
                    noise.clone(),
                    seed.wrapping_add(s as u64).wrapping_mul(0x9E37_79B9),
                    arch.clock_hz,
                ));
                let usable = arch.node.sockets[s].usable_cores;
                let cores = (0..usable)
                    .map(|_| {
                        let mut core = CoreSim::new(
                            (arch.l1d.capacity_bytes, arch.l1d.ways),
                            (arch.l2.capacity_bytes / 2, arch.l2.ways),
                            (
                                p9_arch::L3_PER_CORE_BYTES.min(arch.l3_slice.capacity_bytes),
                                arch.l3_slice.ways,
                            ),
                            shared.counters_arc(),
                            costs,
                        );
                        core.wire_core_events(shared.core_events_arc());
                        core
                    })
                    .collect();
                SocketSim {
                    shared,
                    cores,
                    configured_active: 0,
                }
            })
            .collect();

        SimMachine {
            arch,
            sockets,
            costs,
            address_space: AddressSpace::new(),
        }
    }

    /// Convenience constructor: Summit node with Summit noise.
    pub fn summit(seed: u64) -> Self {
        Self::new(Machine::summit(), NoiseConfig::summit(), seed)
    }

    /// Convenience constructor: Tellico node with Tellico noise.
    pub fn tellico(seed: u64) -> Self {
        Self::new(Machine::tellico(), NoiseConfig::tellico(), seed)
    }

    /// Convenience constructor: noise-free machine for exact-traffic tests.
    pub fn quiet(arch: Machine, seed: u64) -> Self {
        Self::new(arch, NoiseConfig::none(), seed)
    }

    /// The architecture description.
    pub fn arch(&self) -> &Machine {
        &self.arch
    }

    /// Timing-model costs in effect.
    pub fn costs(&self) -> AccessCosts {
        self.costs
    }

    /// Shared state of `socket` (counters, clock, overhead injection).
    pub fn socket_shared(&self, socket: usize) -> Arc<SocketShared> {
        Arc::clone(&self.sockets[socket].shared)
    }

    /// Number of sockets.
    pub fn num_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Privilege token for user contexts on this machine: elevated on the
    /// Tellico testbed (the study had root there), plain user on Summit.
    pub fn privilege_token(&self) -> PrivilegeToken {
        match self.arch.kind {
            MachineKind::Summit => PrivilegeToken::user(),
            MachineKind::Tellico => PrivilegeToken::elevated(),
        }
    }

    /// Privilege level of ordinary contexts on this machine.
    pub fn user_privilege(&self) -> PrivilegeLevel {
        self.privilege_token().level()
    }

    /// Allocate a virtual region for trace generation.
    pub fn alloc(&mut self, bytes: u64) -> Region {
        self.address_space.alloc(bytes)
    }

    /// Allocate room for `n` elements of `elem_bytes`.
    pub fn alloc_elems(&mut self, n: u64, elem_bytes: u64) -> Region {
        self.address_space.alloc_elems(n, elem_bytes)
    }

    /// Toggle the `-fprefetch-loop-arrays` store mode on every core of
    /// `socket`.
    pub fn set_software_prefetch(&mut self, socket: usize, enabled: bool) {
        for core in &mut self.sockets[socket].cores {
            core.set_software_prefetch(enabled);
        }
    }

    /// Swap the model-mechanism policy on every core of `socket`
    /// (ablation studies).
    pub fn set_policy(&mut self, socket: usize, policy: crate::hierarchy::ModelPolicy) {
        for core in &mut self.sockets[socket].cores {
            core.set_policy(policy);
        }
    }

    /// Toggle the simulator's hot-path shortcuts on every core of every
    /// socket (see [`CoreSim::set_fast_path`]). Either setting yields
    /// bit-identical simulation output; the reference path exists so the
    /// equivalence can be asserted by tests.
    pub fn set_fast_path(&mut self, enabled: bool) {
        for socket in &mut self.sockets {
            for core in &mut socket.cores {
                core.set_fast_path(enabled);
            }
        }
    }

    /// Run `f(thread_index, core)` on `nthreads` cores of `socket`
    /// concurrently, then advance the socket clock by the slowest thread's
    /// cycle delta (plus background noise for the window).
    pub fn run_parallel<F>(&mut self, socket: usize, nthreads: usize, f: F)
    where
        F: Fn(usize, &mut CoreSim) + Sync,
    {
        assert!(nthreads >= 1, "need at least one thread");
        assert!(
            nthreads <= self.sockets[socket].cores.len(),
            "{} threads exceed {} usable cores",
            nthreads,
            self.sockets[socket].cores.len()
        );
        #[cfg(feature = "obs")]
        let _span = obs::span!("memsim.run_parallel", nthreads as u64);
        self.configure_active(socket, nthreads);

        let sock = &mut self.sockets[socket];
        let before: Vec<u64> = sock.cores[..nthreads].iter().map(|c| c.cycles()).collect();

        std::thread::scope(|scope| {
            for (tid, core) in sock.cores[..nthreads].iter_mut().enumerate() {
                let f = &f;
                scope.spawn(move || {
                    f(tid, core);
                    core.fence();
                });
            }
        });

        let dmax = sock.cores[..nthreads]
            .iter()
            .zip(&before)
            .map(|(c, &b)| c.cycles() - b)
            .max()
            .unwrap_or(0);
        sock.shared.advance_cycles(dmax);
        #[cfg(feature = "verify")]
        self.assert_conservation(socket);
    }

    /// Run `f` on core 0 of `socket` (single-threaded kernel).
    pub fn run_single<F>(&mut self, socket: usize, f: F)
    where
        F: FnOnce(&mut CoreSim),
    {
        #[cfg(feature = "obs")]
        let _span = obs::span!("memsim.run_single", socket as u64);
        self.configure_active(socket, 1);
        let sock = &mut self.sockets[socket];
        let before = sock.cores[0].cycles();
        f(&mut sock.cores[0]);
        sock.cores[0].fence();
        let delta = sock.cores[0].cycles() - before;
        sock.shared.advance_cycles(delta);
        #[cfg(feature = "verify")]
        self.assert_conservation(socket);
    }

    /// Full conservation check of `socket` (`verify` feature): per-core
    /// stats identities, the `record_bulk` split, per-channel byte
    /// equality against the shadow books, and counter monotonicity.
    ///
    /// ```text
    /// MBA bytes[ch] == SECTOR_BYTES x shadow transactions[ch] + bulk bytes[ch]
    /// ```
    #[cfg(feature = "verify")]
    pub fn verify_socket_conservation(
        &self,
        socket: usize,
    ) -> Result<(), crate::verify::ConservationError> {
        use crate::verify::ConservationError;
        use crate::SECTOR_BYTES;
        use p9_arch::MBA_CHANNELS;

        let sock = &self.sockets[socket];
        let snap = sock.shared.counters.snapshot();
        sock.shared.check_monotonic(&snap)?;

        let bulk = sock.shared.counters.bulk_shadow();
        bulk.check_split()?;

        let mut shadow_reads = [0u64; MBA_CHANNELS];
        let mut shadow_writes = [0u64; MBA_CHANNELS];
        for (i, core) in sock.cores.iter().enumerate() {
            core.verify_conservation(i)?;
            for ch in 0..MBA_CHANNELS {
                shadow_reads[ch] += core.shadow().reads()[ch];
                shadow_writes[ch] += core.shadow().writes()[ch];
            }
        }

        for ch in 0..MBA_CHANNELS {
            let expected = SECTOR_BYTES * shadow_reads[ch] + bulk.read_bytes[ch];
            if snap.read_bytes[ch] != expected {
                return Err(ConservationError::Channel {
                    channel: ch,
                    dir: "read",
                    counter: snap.read_bytes[ch],
                    expected,
                });
            }
            let expected = SECTOR_BYTES * shadow_writes[ch] + bulk.write_bytes[ch];
            if snap.write_bytes[ch] != expected {
                return Err(ConservationError::Channel {
                    channel: ch,
                    dir: "write",
                    counter: snap.write_bytes[ch],
                    expected,
                });
            }
        }
        Ok(())
    }

    /// Panic with the conservation report if `socket`'s books disagree.
    /// Called automatically after every kernel when `verify` is on.
    #[cfg(feature = "verify")]
    fn assert_conservation(&self, socket: usize) {
        if let Err(e) = self.verify_socket_conservation(socket) {
            panic!("counter conservation violated on socket {socket}: {e}");
        }
    }

    /// Size the L3 share of the cores for an `active`-core workload (the
    /// slice-borrowing model). No-op when unchanged.
    fn configure_active(&mut self, socket: usize, active: usize) {
        if self.sockets[socket].configured_active == active {
            return;
        }
        let share = self.arch.l3_effective_per_core(socket, active);
        let ways = self.arch.l3_slice.ways;
        let sock = &mut self.sockets[socket];
        for core in &mut sock.cores {
            core.configure_l3(share, ways);
        }
        sock.configured_active = active;
    }

    /// Effective per-core L3 bytes for an `active`-core workload.
    pub fn l3_share(&self, socket: usize, active: usize) -> u64 {
        self.arch.l3_effective_per_core(socket, active)
    }

    /// Write back and drop all cached state on `socket` (between
    /// experiments).
    pub fn flush_socket(&mut self, socket: usize) {
        for core in &mut self.sockets[socket].cores {
            core.flush_caches();
        }
    }

    /// Drop all cached state without traffic (fresh process image).
    pub fn reset_cold(&mut self, socket: usize) {
        for core in &mut self.sockets[socket].cores {
            core.reset_cold();
        }
    }

    /// Direct access to a core (single-threaded trace generation where the
    /// caller manages phase boundaries itself).
    pub fn core_mut(&mut self, socket: usize, core: usize) -> &mut CoreSim {
        &mut self.sockets[socket].cores[core]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_tiny() -> SimMachine {
        SimMachine::quiet(Machine::tiny(64), 7)
    }

    #[test]
    fn parallel_threads_generate_scaled_traffic() {
        let mut m = quiet_tiny();
        let bytes = 16 * 1024u64;
        let regions: Vec<Region> = (0..4).map(|_| m.alloc(bytes)).collect();
        let shared = m.socket_shared(0);
        let before = shared.counters().snapshot();
        m.run_parallel(0, 4, |tid, core| {
            core.load_seq(regions[tid].base(), bytes);
        });
        let d = shared.counters().snapshot().delta(&before);
        let total = 4 * bytes;
        assert!(d.total_read() >= total);
        assert!(d.total_read() <= total + 4 * 16 * crate::SECTOR_BYTES);
    }

    #[test]
    fn batched_equals_single_times_n_when_quiet() {
        // The batched-factoring shortcut used by the bench harness: with
        // disjoint footprints and all cores active, N threads produce
        // exactly N x the traffic of one thread with the same L3 share.
        let bytes = 32 * 1024u64;

        let mut m1 = quiet_tiny();
        let r: Vec<Region> = (0..4).map(|_| m1.alloc(bytes)).collect();
        let s1 = m1.socket_shared(0);
        m1.run_parallel(0, 4, |tid, core| {
            // Two passes: second exercises cache reuse under the 4-core L3 share.
            core.load_seq(r[tid].base(), bytes);
            core.load_seq(r[tid].base(), bytes);
        });
        let four_thread = s1.counters().total_read();

        let mut m2 = quiet_tiny();
        let r2: Vec<Region> = (0..4).map(|_| m2.alloc(bytes)).collect();
        let s2 = m2.socket_shared(0);
        // One representative core, but configured as if 4 were active.
        m2.run_parallel(0, 4, |tid, core| {
            if tid == 0 {
                core.load_seq(r2[0].base(), bytes);
                core.load_seq(r2[0].base(), bytes);
            }
        });
        let one_thread = s2.counters().total_read();
        // Hashed set placement makes per-buffer conflict misses vary
        // slightly; the factoring identity holds statistically.
        let diff = (four_thread as f64 - 4.0 * one_thread as f64).abs();
        assert!(
            diff / (four_thread as f64) < 0.02,
            "four {four_thread} vs 4x {one_thread}"
        );
    }

    #[test]
    fn l3_share_depends_on_active_cores() {
        let m = SimMachine::quiet(Machine::summit(), 1);
        assert_eq!(m.l3_share(0, 1), 110 * 1024 * 1024);
        assert!(m.l3_share(0, 21) < 6 * 1024 * 1024);
    }

    #[test]
    fn clock_advances_with_work() {
        let mut m = quiet_tiny();
        let r = m.alloc(64 * 1024);
        let shared = m.socket_shared(0);
        assert_eq!(shared.now_cycles(), 0);
        m.run_single(0, |core| core.load_seq(r.base(), 64 * 1024));
        assert!(shared.now_cycles() > 0);
        let t = shared.now_seconds();
        assert!(t > 0.0 && t < 1.0);
    }

    #[test]
    fn noise_injected_only_when_configured() {
        let quiet = SimMachine::quiet(Machine::tiny(64), 3);
        let shared = quiet.socket_shared(0);
        shared.measurement_touch();
        assert_eq!(shared.counters().total_read(), 0);

        let noisy = SimMachine::new(Machine::tiny(64), NoiseConfig::summit(), 3);
        let shared = noisy.socket_shared(0);
        shared.measurement_touch();
        assert!(shared.counters().total_read() > 0);
        assert!(shared.counters().total_write() > 0);
    }

    #[test]
    fn privilege_tokens_follow_machine_kind() {
        assert_eq!(SimMachine::summit(1).user_privilege(), PrivilegeLevel::User);
        assert_eq!(
            SimMachine::tellico(1).user_privilege(),
            PrivilegeLevel::Elevated
        );
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = || {
            let mut m = SimMachine::new(Machine::tiny(16), NoiseConfig::summit(), 42);
            let r = m.alloc(128 * 1024);
            let shared = m.socket_shared(0);
            shared.measurement_touch();
            m.run_single(0, |core| core.load_seq(r.base(), 128 * 1024));
            shared.measurement_touch();
            (
                shared.counters().total_read(),
                shared.counters().total_write(),
                shared.now_cycles(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn dma_recording() {
        let m = quiet_tiny();
        let shared = m.socket_shared(0);
        shared.record_dma(1_000_000, Direction::Read);
        assert_eq!(shared.counters().total_read(), 1_000_000);
    }
}
