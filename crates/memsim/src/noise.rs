//! Measurement-noise model for socket-wide counters.
//!
//! The nest counters observe every memory transaction on the socket, so a
//! measurement window contains, besides the kernel's own traffic:
//!
//! 1. **Measurement overhead** — starting and stopping a counter region is
//!    itself code that touches memory (PAPI bookkeeping, the PCP daemon
//!    fetch path, OS entry/exit). This is a roughly fixed cost per measured
//!    region, which is why single-repetition measurements of small kernels
//!    are "fraught with noise" (Fig. 2) and why averaging R repetitions
//!    inside one region divides the overhead by R (Fig. 3).
//! 2. **Background activity** — OS ticks, daemons and the measurement
//!    process's own page faults accrue with elapsed time. For a
//!    single-threaded kernel this produces the gradual divergence above the
//!    expectation as problem size (and runtime) grows; a batched kernel has
//!    ~21× the signal for the same background, which is why its
//!    measurements "match the expectation very well" (Fig. 3b).
//!
//! Both sources inject *real* traffic into the same counters all readers
//! see — the model makes no distinction between PCP and direct access,
//! matching the paper's conclusion that both are equally accurate.
//!
//! All sampling is driven by a seeded RNG owned by the socket, so every
//! experiment in this repository is reproducible bit-for-bit.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// Parameters of the noise model.
#[derive(Clone, Debug)]
pub struct NoiseConfig {
    /// Mean bytes *read* by one start/stop measurement pair.
    pub overhead_read_bytes: f64,
    /// Mean bytes *written* by one start/stop measurement pair.
    pub overhead_write_bytes: f64,
    /// Log-space standard deviation of the overhead draw.
    pub overhead_sigma: f64,
    /// Mean background read rate in bytes/second.
    pub background_read_rate: f64,
    /// Mean background write rate in bytes/second.
    pub background_write_rate: f64,
    /// Log-space standard deviation of the per-window background rate.
    pub background_sigma: f64,
}

impl NoiseConfig {
    /// Noise observed on Summit through the PCP path. The daemon fetch
    /// round-trip makes the per-measurement overhead somewhat larger than
    /// the direct path's.
    pub fn summit() -> Self {
        NoiseConfig {
            overhead_read_bytes: 320.0 * 1024.0,
            overhead_write_bytes: 160.0 * 1024.0,
            overhead_sigma: 0.7,
            background_read_rate: 24.0e6,
            background_write_rate: 16.0e6,
            background_sigma: 0.5,
        }
    }

    /// Noise on the Tellico testbed (direct perf_uncore reads): slightly
    /// smaller overhead, same qualitative behaviour — the paper's point is
    /// precisely that the two are equally usable.
    pub fn tellico() -> Self {
        NoiseConfig {
            overhead_read_bytes: 256.0 * 1024.0,
            overhead_write_bytes: 128.0 * 1024.0,
            overhead_sigma: 0.7,
            background_read_rate: 20.0e6,
            background_write_rate: 14.0e6,
            background_sigma: 0.5,
        }
    }

    /// No noise at all — used by unit tests that check exact traffic.
    pub fn none() -> Self {
        NoiseConfig {
            overhead_read_bytes: 0.0,
            overhead_write_bytes: 0.0,
            overhead_sigma: 0.0,
            background_read_rate: 0.0,
            background_write_rate: 0.0,
            background_sigma: 0.0,
        }
    }

    /// Draw the (read, write) bytes injected by one measurement start/stop.
    pub fn sample_overhead<R: Rng>(&self, rng: &mut R) -> (u64, u64) {
        (
            sample_lognormal(rng, self.overhead_read_bytes, self.overhead_sigma),
            sample_lognormal(rng, self.overhead_write_bytes, self.overhead_sigma),
        )
    }

    /// Draw the (read, write) background bytes for a window of `seconds`.
    pub fn sample_background<R: Rng>(&self, rng: &mut R, seconds: f64) -> (u64, u64) {
        if seconds <= 0.0 {
            return (0, 0);
        }
        (
            sample_lognormal(
                rng,
                self.background_read_rate * seconds,
                self.background_sigma,
            ),
            sample_lognormal(
                rng,
                self.background_write_rate * seconds,
                self.background_sigma,
            ),
        )
    }
}

/// Log-normal draw with the given *mean* (not median) and log-space sigma.
fn sample_lognormal<R: Rng>(rng: &mut R, mean: f64, sigma: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if sigma <= 0.0 {
        return mean as u64;
    }
    // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
    let mu = mean.ln() - sigma * sigma / 2.0;
    let d = LogNormal::new(mu, sigma).expect("valid lognormal parameters");
    d.sample(rng) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_silent() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = NoiseConfig::none();
        assert_eq!(cfg.sample_overhead(&mut rng), (0, 0));
        assert_eq!(cfg.sample_background(&mut rng, 10.0), (0, 0));
    }

    #[test]
    fn lognormal_mean_is_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean = 100_000.0;
        let total: u64 = (0..n).map(|_| sample_lognormal(&mut rng, mean, 0.7)).sum();
        let empirical = total as f64 / n as f64;
        assert!(
            (empirical - mean).abs() / mean < 0.05,
            "empirical mean {empirical} too far from {mean}"
        );
    }

    #[test]
    fn background_scales_with_time() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = NoiseConfig::summit();
        let n = 2_000;
        let sum_short: u64 = (0..n)
            .map(|_| cfg.sample_background(&mut rng, 0.01).0)
            .sum();
        let sum_long: u64 = (0..n).map(|_| cfg.sample_background(&mut rng, 1.0).0).sum();
        let ratio = sum_long as f64 / sum_short as f64;
        assert!(ratio > 50.0 && ratio < 200.0, "ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = NoiseConfig::summit();
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(cfg.sample_overhead(&mut a), cfg.sample_overhead(&mut b));
        }
    }
}
