//! Privilege model for nest-counter access.
//!
//! Nest counters are a socket-wide shared resource: on real systems only
//! privileged contexts may program and read them. On Summit ordinary users
//! have no such privilege — which is the entire reason the PCP daemon (which
//! *does*) exists. On the Tellico testbed the study had elevated privileges
//! and read the counters directly.
//!
//! [`PrivilegeToken`]s are unforgeable capabilities handed out by the
//! simulated machine according to the system being modeled; the direct
//! `perf_uncore` path requires one, while the PCP daemon holds its own.

use core::fmt;

/// Privilege level of an execution context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrivilegeLevel {
    /// Ordinary user: no direct nest access (Summit users).
    User,
    /// Elevated: may program and read nest PMUs directly (Tellico, or the
    /// PMCD daemon itself).
    Elevated,
}

/// An unforgeable witness of elevated privilege.
///
/// The field is private; the only constructors are
/// [`PrivilegeToken::elevated`] (crate-external callers receive tokens from
/// the machine, which decides per [`PrivilegeLevel`]). Deliberately not
/// `Clone`: a capability is borrowed (`&PrivilegeToken`) or re-minted by
/// the machine, never silently duplicated by holders.
#[derive(Debug)]
pub struct PrivilegeToken {
    level: PrivilegeLevel,
}

impl PrivilegeToken {
    /// Mint an elevated token. Intended for the simulated machine and the
    /// PMCD daemon; application code should obtain tokens through
    /// [`crate::machine::SimMachine::privilege_token`].
    pub fn elevated() -> Self {
        PrivilegeToken {
            level: PrivilegeLevel::Elevated,
        }
    }

    /// An explicitly unprivileged token (useful to exercise denial paths).
    pub fn user() -> Self {
        PrivilegeToken {
            level: PrivilegeLevel::User,
        }
    }

    pub fn level(&self) -> PrivilegeLevel {
        self.level
    }

    /// Check that the token grants elevated access.
    pub fn require_elevated(&self) -> Result<(), PrivilegeError> {
        match self.level {
            PrivilegeLevel::Elevated => Ok(()),
            PrivilegeLevel::User => Err(PrivilegeError::PermissionDenied),
        }
    }
}

/// Access-control failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrivilegeError {
    /// The context lacks the privilege needed for direct nest access
    /// (mirrors `perf_event_open` returning `EACCES` for uncore PMUs).
    PermissionDenied,
}

impl fmt::Display for PrivilegeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivilegeError::PermissionDenied => {
                write!(
                    f,
                    "permission denied: nest counters require elevated privileges"
                )
            }
        }
    }
}

impl std::error::Error for PrivilegeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elevation_checks() {
        assert!(PrivilegeToken::elevated().require_elevated().is_ok());
        assert_eq!(
            PrivilegeToken::user().require_elevated(),
            Err(PrivilegeError::PermissionDenied)
        );
    }

    #[test]
    fn error_displays() {
        let e = PrivilegeError::PermissionDenied;
        assert!(e.to_string().contains("elevated"));
    }
}
