//! Virtual address-space management for trace generation.
//!
//! Workload kernels do not need backing memory to exercise the cache
//! simulator — only addresses. [`AddressSpace`] hands out page-aligned,
//! non-overlapping [`Region`]s that kernels index exactly the way the real
//! code would index its arrays. Very large problem sizes (e.g. the 4.8 GB
//! per-rank FFT pencils of Fig. 10) can thus be traced without allocating
//! host memory.

use crate::SECTOR_BYTES;

/// Alignment of fresh regions. 64 KiB pages, matching the large base pages
/// commonly configured on POWER9 Linux.
pub const REGION_ALIGN: u64 = 64 * 1024;

/// A contiguous virtual allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    base: u64,
    len: u64,
}

impl Region {
    /// Starting byte address.
    #[inline]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the region has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of the `i`-th element of `elem_bytes`-sized elements.
    ///
    /// Panics (in debug builds) if the element lies outside the region —
    /// trace generators indexing out of bounds are bugs.
    #[inline(always)]
    pub fn elem(&self, i: u64, elem_bytes: u64) -> u64 {
        debug_assert!(
            (i + 1) * elem_bytes <= self.len,
            "element {i} x {elem_bytes}B out of region of {} bytes",
            self.len
        );
        self.base + i * elem_bytes
    }

    /// Sub-region view: `offset` bytes in, `len` bytes long.
    pub fn slice(&self, offset: u64, len: u64) -> Region {
        assert!(offset + len <= self.len, "slice out of bounds");
        Region {
            base: self.base + offset,
            len,
        }
    }

    /// One past the last byte address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.len
    }
}

/// A bump allocator over a simulated virtual address space.
///
/// Regions never overlap and are aligned so that distinct arrays never share
/// a cache sector (sharing would create false reuse in the cache model).
#[derive(Debug)]
pub struct AddressSpace {
    next: u64,
}

impl AddressSpace {
    /// A fresh address space. The first allocation starts above the zero
    /// page so that address 0 is never valid.
    pub fn new() -> Self {
        AddressSpace { next: REGION_ALIGN }
    }

    /// Allocate `len` bytes.
    pub fn alloc(&mut self, len: u64) -> Region {
        let base = self.next;
        let len_rounded = round_up(len.max(1), REGION_ALIGN);
        self.next = base + len_rounded;
        Region { base, len }
    }

    /// Allocate room for `n` elements of `elem_bytes` each.
    pub fn alloc_elems(&mut self, n: u64, elem_bytes: u64) -> Region {
        self.alloc(n * elem_bytes)
    }

    /// Total bytes of address space handed out so far (including alignment
    /// padding).
    pub fn footprint(&self) -> u64 {
        self.next - REGION_ALIGN
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    v.div_ceil(align) * align
}

/// Number of sectors a `len`-byte object starting at `base` touches.
pub fn sectors_spanned(base: u64, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = base / SECTOR_BYTES;
    let last = (base + len - 1) / SECTOR_BYTES;
    last - first + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(100);
        let b = asp.alloc(REGION_ALIGN + 1);
        let c = asp.alloc(1);
        assert!(a.end() <= b.base());
        assert!(b.end() <= c.base());
        assert_eq!(a.base() % REGION_ALIGN, 0);
        assert_eq!(b.base() % REGION_ALIGN, 0);
        assert_eq!(c.base() % REGION_ALIGN, 0);
    }

    #[test]
    fn element_addressing() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc_elems(16, 8);
        assert_eq!(a.elem(0, 8), a.base());
        assert_eq!(a.elem(15, 8), a.base() + 120);
        assert_eq!(a.len(), 128);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_bounds_panics() {
        let mut asp = AddressSpace::new();
        let a = asp.alloc(64);
        let _ = a.slice(32, 64);
    }

    #[test]
    fn sector_spans() {
        assert_eq!(sectors_spanned(0, 0), 0);
        assert_eq!(sectors_spanned(0, 1), 1);
        assert_eq!(sectors_spanned(0, 64), 1);
        assert_eq!(sectors_spanned(0, 65), 2);
        assert_eq!(sectors_spanned(63, 2), 2);
        assert_eq!(sectors_spanned(64, 64), 1);
    }

    #[test]
    fn footprint_tracks_allocations() {
        let mut asp = AddressSpace::new();
        assert_eq!(asp.footprint(), 0);
        asp.alloc(1);
        assert_eq!(asp.footprint(), REGION_ALIGN);
        asp.alloc(2 * REGION_ALIGN);
        assert_eq!(asp.footprint(), 3 * REGION_ALIGN);
    }
}
