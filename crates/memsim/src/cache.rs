//! A set-associative, write-back cache over 64-byte sectors.
//!
//! The cache is indexed by *sector number* (byte address / 64). Real POWER9
//! L3 slices hash addresses across sets; we use a multiplicative hash with
//! Lemire reduction, which both balances arbitrary strides across sets and
//! supports non-power-of-two set counts (needed for the variable-capacity
//! borrowed-L3 configuration).
//!
//! Replacement is true LRU within a set, implemented by keeping each set's
//! ways ordered most-recent-first (associativities here are ≤ 20, so the
//! rotate on hit is a handful of `u64` moves). Each way is a single packed
//! word — sector number plus a dirty bit — so a set probe touches one
//! contiguous run of memory; with multi-megabyte simulated caches the tag
//! array itself is DRAM-resident and this layout halves the simulator's
//! own memory traffic.

/// Dirty flag, kept in the top bit of the packed way word.
const DIRTY: u64 = 1 << 63;

/// Sector-number mask (sectors are < 2^63).
const TAG: u64 = DIRTY - 1;

/// Sentinel for an empty way (all tag bits set; no valid sector).
const EMPTY: u64 = TAG;

/// Full-avalanche mix (splitmix64 finalizer) of a sector number, shared
/// by every cache level: the hierarchy computes it once per access and
/// passes it to the `*_mixed` probe variants, so an L1→L2→L3 probe chain
/// hashes the address once instead of three times. A bare multiplicative
/// hash is NOT enough here: a constant-stride sector progression s + k·d
/// maps to the rotation sequence {k·frac(d·φ)}, and for strides where
/// d·φ is close to a low-denominator rational the progression piles onto
/// a few sets (e.g. the paper's N = 448 pencil stride of 112 sectors
/// hits 112·φ ≈ 63/256). Real L3 slices XOR-fold the address for the
/// same reason.
#[inline(always)]
pub fn sector_mix(sector: u64) -> u64 {
    let mut h = sector;
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h
}

/// Result of inserting a sector into the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Evicted {
    /// No line was displaced.
    None,
    /// A clean sector was displaced.
    Clean(u64),
    /// A dirty sector was displaced and must be handled (written back or
    /// installed in the next level down).
    Dirty(u64),
}

/// A set-associative cache of sector numbers.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    /// `sets * ways` packed ways, each set ordered most-recent-first.
    slots: Vec<u64>,
}

impl SetAssocCache {
    /// Build a cache of `capacity_bytes` with `ways` associativity over
    /// 64-byte sectors. The set count is `capacity / (64 * ways)`, clamped
    /// to at least one set.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let sets = ((capacity_bytes / (crate::SECTOR_BYTES * ways as u64)) as usize).max(1);
        SetAssocCache {
            sets,
            ways,
            slots: vec![EMPTY; sets * ways],
        }
    }

    /// Construct from an architectural geometry description.
    pub fn from_geometry(geo: &p9_arch::CacheGeometry) -> Self {
        Self::new(geo.capacity_bytes, geo.ways)
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * crate::SECTOR_BYTES
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline(always)]
    fn set_of(&self, sector: u64) -> usize {
        // [`sector_mix`] avalanche before the Lemire reduction (see its
        // docs for why a bare multiplicative hash is not enough).
        self.set_of_mix(sector_mix(sector))
    }

    /// Lemire-reduce a pre-computed [`sector_mix`] to this cache's set
    /// count. Every level reduces the *same* mix to its own geometry.
    #[inline(always)]
    fn set_of_mix(&self, mix: u64) -> usize {
        (((mix as u128) * (self.sets as u128)) >> 64) as usize
    }

    /// Look up `sector`; on hit, refresh LRU and optionally set the dirty
    /// bit. Returns whether the sector was present.
    #[inline]
    pub fn access(&mut self, sector: u64, mark_dirty: bool) -> bool {
        self.access_mixed(sector, sector_mix(sector), mark_dirty)
    }

    /// [`Self::access`] with a caller-supplied [`sector_mix`] (the hot
    /// probe chain hashes once and shares the mix across levels).
    #[inline]
    pub fn access_mixed(&mut self, sector: u64, mix: u64, mark_dirty: bool) -> bool {
        debug_assert!(sector < TAG);
        debug_assert_eq!(mix, sector_mix(sector));
        let set = self.set_of_mix(mix);
        let base = set * self.ways;
        let ways = &mut self.slots[base..base + self.ways];
        if let Some(pos) = ways.iter().position(|&w| w & TAG == sector) {
            let word = ways[pos] | if mark_dirty { DIRTY } else { 0 };
            // Move to front (most recently used).
            ways.copy_within(0..pos, 1);
            ways[0] = word;
            true
        } else {
            false
        }
    }

    /// Probe without touching LRU or dirty state.
    #[inline]
    pub fn contains(&self, sector: u64) -> bool {
        self.contains_mixed(sector, sector_mix(sector))
    }

    /// [`Self::contains`] with a caller-supplied [`sector_mix`].
    #[inline]
    pub fn contains_mixed(&self, sector: u64, mix: u64) -> bool {
        debug_assert_eq!(mix, sector_mix(sector));
        let set = self.set_of_mix(mix);
        let base = set * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .any(|&w| w & TAG == sector)
    }

    /// Insert `sector` as most-recently-used, evicting the LRU way if the
    /// set is full. The caller must have established the sector is absent
    /// (e.g. via a failed [`Self::access`]); inserting a present sector
    /// would create a duplicate.
    #[inline]
    pub fn insert(&mut self, sector: u64, dirty: bool) -> Evicted {
        self.insert_mixed(sector, sector_mix(sector), dirty)
    }

    /// [`Self::insert`] with a caller-supplied [`sector_mix`].
    #[inline]
    pub fn insert_mixed(&mut self, sector: u64, mix: u64, dirty: bool) -> Evicted {
        debug_assert!(sector < TAG);
        debug_assert_eq!(mix, sector_mix(sector));
        let set = self.set_of_mix(mix);
        let base = set * self.ways;
        let ways = &mut self.slots[base..base + self.ways];
        debug_assert!(
            !ways.iter().any(|&w| w & TAG == sector),
            "inserting sector already present"
        );
        let victim = ways[self.ways - 1];
        ways.copy_within(0..self.ways - 1, 1);
        ways[0] = sector | if dirty { DIRTY } else { 0 };
        if victim & TAG == EMPTY {
            Evicted::None
        } else if victim & DIRTY != 0 {
            Evicted::Dirty(victim & TAG)
        } else {
            Evicted::Clean(victim & TAG)
        }
    }

    /// Insert `sector` at mid-LRU depth instead of MRU — the insertion
    /// position real caches use for traffic they predict to be streaming
    /// (e.g. store-allocated write bursts), so it cannot push the whole
    /// reuse working set out.
    #[inline]
    pub fn insert_mid(&mut self, sector: u64, dirty: bool) -> Evicted {
        self.insert_mid_mixed(sector, sector_mix(sector), dirty)
    }

    /// [`Self::insert_mid`] with a caller-supplied [`sector_mix`].
    #[inline]
    pub fn insert_mid_mixed(&mut self, sector: u64, mix: u64, dirty: bool) -> Evicted {
        debug_assert!(sector < TAG);
        debug_assert_eq!(mix, sector_mix(sector));
        let set = self.set_of_mix(mix);
        let base = set * self.ways;
        let ways = &mut self.slots[base..base + self.ways];
        debug_assert!(
            !ways.iter().any(|&w| w & TAG == sector),
            "inserting sector already present"
        );
        let mid = self.ways / 2;
        let word = sector | if dirty { DIRTY } else { 0 };
        // Empty ways live at the tail (all other operations preserve
        // this); with spare capacity nothing may be evicted.
        match ways.iter().position(|&w| w & TAG == EMPTY) {
            Some(first_empty) => {
                let pos = mid.min(first_empty);
                ways.copy_within(pos..first_empty, pos + 1);
                ways[pos] = word;
                Evicted::None
            }
            None => {
                let victim = ways[self.ways - 1];
                ways.copy_within(mid..self.ways - 1, mid + 1);
                ways[mid] = word;
                if victim & DIRTY != 0 {
                    Evicted::Dirty(victim & TAG)
                } else {
                    Evicted::Clean(victim & TAG)
                }
            }
        }
    }

    /// Set the dirty bit of `sector` if present, without refreshing its
    /// LRU position (a writeback merge, not a use).
    #[inline]
    pub fn touch_dirty(&mut self, sector: u64) -> bool {
        let set = self.set_of(sector);
        let base = set * self.ways;
        let ways = &mut self.slots[base..base + self.ways];
        if let Some(pos) = ways.iter().position(|&w| w & TAG == sector) {
            ways[pos] |= DIRTY;
            true
        } else {
            false
        }
    }

    /// Remove `sector` if present, returning whether it was dirty.
    #[inline]
    pub fn remove(&mut self, sector: u64) -> Option<bool> {
        let set = self.set_of(sector);
        let base = set * self.ways;
        let ways = &mut self.slots[base..base + self.ways];
        let pos = ways.iter().position(|&w| w & TAG == sector)?;
        let was_dirty = ways[pos] & DIRTY != 0;
        ways.copy_within(pos + 1.., pos);
        ways[self.ways - 1] = EMPTY;
        Some(was_dirty)
    }

    /// Drop every resident sector, invoking `on_dirty` for each dirty one.
    pub fn flush(&mut self, mut on_dirty: impl FnMut(u64)) {
        for w in self.slots.iter_mut() {
            if *w & TAG != EMPTY && *w & DIRTY != 0 {
                on_dirty(*w & TAG);
            }
            *w = EMPTY;
        }
    }

    /// Number of resident sectors (O(capacity); for tests/diagnostics).
    pub fn resident(&self) -> usize {
        self.slots.iter().filter(|&&w| w & TAG != EMPTY).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize, sets_times_ways_sectors: u64) -> SetAssocCache {
        SetAssocCache::new(sets_times_ways_sectors * crate::SECTOR_BYTES, ways)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(4, 16);
        assert!(!c.access(42, false));
        assert_eq!(c.insert(42, false), Evicted::None);
        assert!(c.access(42, false));
        assert!(c.contains(42));
    }

    #[test]
    fn lru_eviction_order() {
        // Single set, 2 ways: fill with a,b; touch a; insert c -> b evicted.
        let mut c = tiny(2, 2);
        assert_eq!(c.sets(), 1);
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.access(1, false));
        match c.insert(3, false) {
            Evicted::Clean(t) => assert_eq!(t, 2),
            other => panic!("unexpected {other:?}"),
        }
        assert!(c.contains(1));
        assert!(c.contains(3));
        assert!(!c.contains(2));
    }

    #[test]
    fn dirty_state_tracked_through_lru_moves() {
        let mut c = tiny(4, 4);
        c.insert(10, false);
        c.insert(11, false);
        c.insert(12, false);
        assert!(c.access(10, true)); // dirty now
        assert!(c.access(11, false));
        assert!(c.access(12, false));
        // Fill the set; 10 is LRU and dirty.
        c.insert(13, false);
        match c.insert(14, false) {
            Evicted::Dirty(t) => assert_eq!(t, 10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn remove_reports_dirty_and_compacts() {
        let mut c = tiny(4, 4);
        c.insert(7, true);
        c.insert(8, false);
        assert_eq!(c.remove(7), Some(true));
        assert_eq!(c.remove(7), None);
        assert!(c.contains(8));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn flush_reports_only_dirty() {
        let mut c = tiny(4, 8);
        c.insert(1, true);
        c.insert(2, false);
        c.insert(3, true);
        let mut dirty = Vec::new();
        c.flush(|s| dirty.push(s));
        dirty.sort_unstable();
        assert_eq!(dirty, vec![1, 3]);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn capacity_respected() {
        // 64 sectors capacity: inserting 65 distinct sectors must evict >= 1.
        let mut c = tiny(4, 64);
        let mut evictions = 0;
        for s in 0..65 {
            if !c.access(s, false) {
                match c.insert(s, false) {
                    Evicted::None => {}
                    _ => evictions += 1,
                }
            }
        }
        assert!(evictions >= 1);
        assert!(c.resident() <= 64);
    }

    #[test]
    fn geometry_roundtrip() {
        let c = SetAssocCache::from_geometry(&p9_arch::CacheGeometry::p9_l1d());
        assert_eq!(c.capacity_bytes(), 32 * 1024);
        // 64 B sectors: twice the line count of the 128 B-line geometry.
        assert_eq!(c.sets() * c.ways(), 512);
    }

    #[test]
    fn dirty_bit_survives_access_without_mark() {
        let mut c = tiny(4, 4);
        c.insert(5, true);
        assert!(c.access(5, false)); // must not clear dirtiness
        let mut dirty = Vec::new();
        c.flush(|s| dirty.push(s));
        assert_eq!(dirty, vec![5]);
    }

    #[test]
    fn mark_dirty_on_access_upgrades() {
        let mut c = tiny(4, 4);
        c.insert(6, false);
        assert!(c.access(6, true));
        assert_eq!(c.remove(6), Some(true));
    }
}
