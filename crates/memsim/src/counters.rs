//! Socket-level nest (uncore) counters.
//!
//! Each POWER9 socket exposes eight Memory Bus Agent channels; the nest IMC
//! publishes `PM_MBA[0-7]_READ_BYTES` and `PM_MBA[0-7]_WRITE_BYTES`, which
//! accumulate the bytes moved by every 64-byte memory transaction on that
//! channel — from *all* cores and processes on the socket. That socket-wide
//! scope is exactly why the counters require elevated privileges on real
//! systems, and why measurements contain other-process noise.
//!
//! Counters are atomics so that concurrently simulated cores, the background
//! noise process, and the PCP daemon thread can all touch them without
//! locks. Ordering is `Relaxed` throughout: the counters are statistics, and
//! every reader tolerates (indeed, models) slightly stale values.

// Under `--cfg loom` the atomics come from the vendored loom shim, whose
// wrappers inject preemption points so the concurrency models in
// `tests/loom_counters.rs` explore many interleavings.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

use crate::SECTOR_BYTES;
use p9_arch::MBA_CHANNELS;

/// Direction of a memory transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Direction {
    Read,
    Write,
}

/// The per-socket MBA byte counters.
#[derive(Debug, Default)]
pub struct NestCounters {
    read_bytes: [AtomicU64; MBA_CHANNELS],
    write_bytes: [AtomicU64; MBA_CHANNELS],
    /// Independent books for `record_bulk` traffic (see [`crate::verify`]).
    #[cfg(feature = "verify")]
    bulk: BulkShadow,
}

/// Shadow accounting for bulk (noise / DMA / measurement-overhead) traffic:
/// mirrors `record_bulk` per channel and in total so the channel-split
/// arithmetic is double-entry checked.
#[cfg(feature = "verify")]
#[derive(Debug, Default)]
struct BulkShadow {
    read_bytes: [AtomicU64; MBA_CHANNELS],
    write_bytes: [AtomicU64; MBA_CHANNELS],
    read_total: AtomicU64,
    write_total: AtomicU64,
}

/// A point-in-time copy of all sixteen counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    pub read_bytes: [u64; MBA_CHANNELS],
    pub write_bytes: [u64; MBA_CHANNELS],
}

impl CounterSnapshot {
    /// Total read bytes across channels.
    pub fn total_read(&self) -> u64 {
        self.read_bytes.iter().sum()
    }

    /// Total write bytes across channels.
    pub fn total_write(&self) -> u64 {
        self.write_bytes.iter().sum()
    }

    /// Channel-wise difference `self - earlier` (counters are monotonic).
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for ch in 0..MBA_CHANNELS {
            out.read_bytes[ch] = self.read_bytes[ch] - earlier.read_bytes[ch];
            out.write_bytes[ch] = self.write_bytes[ch] - earlier.write_bytes[ch];
        }
        out
    }

    /// Counter value for one channel/direction.
    pub fn channel(&self, ch: usize, dir: Direction) -> u64 {
        match dir {
            Direction::Read => self.read_bytes[ch],
            Direction::Write => self.write_bytes[ch],
        }
    }
}

impl NestCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// MBA channel servicing `sector`. Real nest interleave distributes
    /// consecutive 64-byte granules round-robin across the eight channels.
    #[inline(always)]
    pub fn channel_of(sector: u64) -> usize {
        (sector % MBA_CHANNELS as u64) as usize
    }

    /// Record one 64-byte transaction touching `sector`.
    #[inline]
    pub fn record_sector(&self, sector: u64, dir: Direction) {
        let ch = Self::channel_of(sector);
        match dir {
            Direction::Read => &self.read_bytes[ch],
            Direction::Write => &self.write_bytes[ch],
        }
        // relaxed-ok: independent monotonic statistic; no reader orders
        // other memory against it, and the RMW itself cannot lose counts.
        .fetch_add(SECTOR_BYTES, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        obs::counter!("memsim.mba.sector_txns").inc();
    }

    /// Record `n` 64-byte transactions on channel `ch` with one atomic
    /// add — the batched equivalent of `n` [`Self::record_sector`] calls
    /// whose sectors all map to `ch`. The core hot path accumulates a
    /// sequential run's per-channel counts locally and flushes them here,
    /// so a 64 KiB streaming read costs 8 RMWs instead of 1024.
    #[inline]
    pub fn record_sectors(&self, ch: usize, dir: Direction, n: u64) {
        if n == 0 {
            return;
        }
        match dir {
            Direction::Read => &self.read_bytes[ch],
            Direction::Write => &self.write_bytes[ch],
        }
        // relaxed-ok: same independent-monotonic-statistic argument as
        // record_sector; a batched add cannot lose counts either.
        .fetch_add(n * SECTOR_BYTES, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        obs::counter!("memsim.mba.sector_txns").add(n);
    }

    /// Record `bytes` of traffic spread evenly across channels (used by the
    /// background-noise process and by device DMA, where per-sector
    /// attribution is irrelevant).
    pub fn record_bulk(&self, bytes: u64, dir: Direction) {
        #[cfg(feature = "obs")]
        obs::counter!("memsim.mba.bulk_bytes").add(bytes);
        #[cfg(feature = "verify")]
        match dir {
            Direction::Read => &self.bulk.read_total,
            Direction::Write => &self.bulk.write_total,
        }
        // relaxed-ok: shadow totals are only compared after threads join.
        .fetch_add(bytes, Ordering::Relaxed);
        let per = bytes / MBA_CHANNELS as u64;
        let rem = bytes % MBA_CHANNELS as u64;
        for ch in 0..MBA_CHANNELS {
            let amount = per + u64::from((ch as u64) < rem);
            if amount > 0 {
                match dir {
                    Direction::Read => &self.read_bytes[ch],
                    Direction::Write => &self.write_bytes[ch],
                }
                // relaxed-ok: same monotonic-statistic argument as
                // record_sector; per-channel adds are independent.
                .fetch_add(amount, Ordering::Relaxed);
                #[cfg(feature = "verify")]
                match dir {
                    Direction::Read => &self.bulk.read_bytes[ch],
                    Direction::Write => &self.bulk.write_bytes[ch],
                }
                // relaxed-ok: shadow channel adds, compared only at rest.
                .fetch_add(amount, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot the bulk-traffic shadow books (`verify` feature).
    #[cfg(feature = "verify")]
    pub fn bulk_shadow(&self) -> crate::verify::BulkSnapshot {
        let mut s = crate::verify::BulkSnapshot::default();
        for ch in 0..MBA_CHANNELS {
            // relaxed-ok: shadow loads; callers verify quiescent state.
            s.read_bytes[ch] = self.bulk.read_bytes[ch].load(Ordering::Relaxed);
            // relaxed-ok: shadow loads; callers verify quiescent state.
            s.write_bytes[ch] = self.bulk.write_bytes[ch].load(Ordering::Relaxed);
        }
        // relaxed-ok: shadow totals load, quiescent at verification time.
        s.read_total = self.bulk.read_total.load(Ordering::Relaxed);
        // relaxed-ok: shadow totals load, quiescent at verification time.
        s.write_total = self.bulk.write_total.load(Ordering::Relaxed);
        s
    }

    /// Read a single channel counter.
    pub fn channel(&self, ch: usize, dir: Direction) -> u64 {
        match dir {
            // relaxed-ok: free-running counter read; readers model stale
            // hardware counter reads and need no ordering with other state.
            Direction::Read => self.read_bytes[ch].load(Ordering::Relaxed),
            // relaxed-ok: same free-running counter read as above.
            Direction::Write => self.write_bytes[ch].load(Ordering::Relaxed),
        }
    }

    /// Snapshot all channels.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut s = CounterSnapshot::default();
        for ch in 0..MBA_CHANNELS {
            // relaxed-ok: snapshot of free-running statistics; channel
            // loads need not be mutually consistent (hardware reads aren't).
            s.read_bytes[ch] = self.read_bytes[ch].load(Ordering::Relaxed);
            // relaxed-ok: same snapshot-of-statistics argument as above.
            s.write_bytes[ch] = self.write_bytes[ch].load(Ordering::Relaxed);
        }
        s
    }

    /// Total read bytes.
    pub fn total_read(&self) -> u64 {
        self.snapshot().total_read()
    }

    /// Total write bytes.
    pub fn total_write(&self) -> u64 {
        self.snapshot().total_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_recording_increments_right_channel() {
        let c = NestCounters::new();
        c.record_sector(0, Direction::Read);
        c.record_sector(8, Direction::Read); // same channel (0), next stripe
        c.record_sector(3, Direction::Write);
        assert_eq!(c.channel(0, Direction::Read), 128);
        assert_eq!(c.channel(3, Direction::Write), 64);
        assert_eq!(c.total_read(), 128);
        assert_eq!(c.total_write(), 64);
    }

    #[test]
    fn sequential_sectors_balance_across_channels() {
        let c = NestCounters::new();
        for s in 0..8000u64 {
            c.record_sector(s, Direction::Read);
        }
        let snap = c.snapshot();
        for ch in 0..MBA_CHANNELS {
            assert_eq!(snap.read_bytes[ch], 1000 * SECTOR_BYTES);
        }
    }

    #[test]
    fn bulk_distributes_exactly() {
        let c = NestCounters::new();
        c.record_bulk(1000, Direction::Write);
        assert_eq!(c.total_write(), 1000);
        let snap = c.snapshot();
        let max = snap.write_bytes.iter().max().unwrap();
        let min = snap.write_bytes.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn snapshot_delta() {
        let c = NestCounters::new();
        c.record_sector(1, Direction::Read);
        let a = c.snapshot();
        c.record_sector(1, Direction::Read);
        c.record_sector(2, Direction::Write);
        let b = c.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.total_read(), 64);
        assert_eq!(d.total_write(), 64);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        use std::sync::Arc;
        let c = Arc::new(NestCounters::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        c.record_sector(t * 10_000 + i, Direction::Read);
                    }
                });
            }
        });
        assert_eq!(c.total_read(), 4 * 10_000 * SECTOR_BYTES);
    }
}
