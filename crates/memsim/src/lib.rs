//! # p9-memsim — POWER9 memory-hierarchy and nest-counter simulator
//!
//! This crate is the hardware substrate of the reproduction: a trace-driven
//! simulator of the POWER9 core cache hierarchy and the socket-level "nest"
//! memory interface whose `PM_MBA[0-7]_{READ,WRITE}_BYTES` counters the paper
//! measures.
//!
//! ## Micro-architectural mechanisms modeled
//!
//! The paper's analysis rests on a handful of specific POWER9 behaviours,
//! each of which is an explicit model component here:
//!
//! * **64-byte memory transactions.** POWER9 can fetch half cache lines
//!   (64 B of a 128 B line) from memory. The simulator therefore manages the
//!   caches at 64-byte *sector* granularity: every demand miss reads one
//!   64-byte sector, and every dirty sector writeback writes 64 bytes. The
//!   paper's expectation curves (`elements × 8 / 64`) fall out directly.
//! * **Stride-N stream detection** ([`prefetch`]). The hardware "may detect
//!   Stride-N streams … when they access elements that map to sequential
//!   cache blocks". A per-core stream table confirms constant-stride load
//!   streams; streams with a stride larger than one sector are *stride-N*
//!   streams.
//! * **Cache-bypassing stores** ([`store`]). Stores write-allocate by
//!   default; only *streaming* stores — stores belonging to a confirmed
//!   sequential store stream, on a core with no active stride-N stream and
//!   no `dcbtst` software-prefetch hint (GCC `-fprefetch-loop-arrays`) —
//!   gather into full 64-byte sectors and bypass the cache (no
//!   read-for-ownership). Everything else incurs one read per written
//!   sector plus a later writeback: the read-per-write phenomenon of
//!   Sections III–IV.
//! * **L3 slice borrowing** ([`hierarchy`]). Each core pair owns a 10 MB L3
//!   slice; a lone active core can re-appropriate idle cores' slices (up to
//!   110 MB on Summit), while with every core busy each core effectively
//!   keeps ~5 MB. The simulator sizes each active core's L3 from the number
//!   of active cores, which reproduces the paper's observation that
//!   single-threaded GEMM shows no traffic jump at N ≈ 809 but batched GEMM
//!   does.
//! * **Measurement noise** ([`noise`]). Socket-wide counters observe *all*
//!   traffic: background OS/daemon activity accrues with elapsed time, and
//!   starting/stopping a measurement itself touches memory. Small kernels
//!   are therefore dominated by noise unless repetitions are used (Fig. 2
//!   vs. Fig. 3) — the noise is injected into the same counters every reader
//!   sees, which is why PCP and direct reads are equally accurate.
//!
//! ## Concurrency model
//!
//! Simulated cores have private L1/L2/L3 resources (the L3 share is fixed by
//! the number of active cores), and the workloads in the paper are
//! embarrassingly parallel with disjoint footprints. Under that model,
//! per-core simulations are independent, so [`machine::SimMachine::run_parallel`]
//! executes them on real OS threads with the socket counters updated
//! atomically.

pub mod addr;
pub mod cache;
pub mod counters;
pub mod hierarchy;
pub mod machine;
pub mod noise;
pub mod prefetch;
pub mod privilege;
pub mod store;
pub mod verify;

pub use addr::{AddressSpace, Region};
pub use cache::SetAssocCache;
pub use counters::{CounterSnapshot, Direction, NestCounters};
pub use hierarchy::{AccessCosts, CoreSim, ModelPolicy};
pub use machine::{CoreEvent, CoreEventCounters, SimMachine, SocketSim};
pub use noise::NoiseConfig;
pub use prefetch::PrefetchEngine;
pub use privilege::{PrivilegeError, PrivilegeLevel, PrivilegeToken};
pub use store::StoreEngine;
#[cfg(feature = "verify")]
pub use verify::BulkSnapshot;
pub use verify::{ConservationError, ShadowLedger};

/// Bytes per memory transaction / cache sector (half of a 128 B line).
pub const SECTOR_BYTES: u64 = p9_arch::MEM_TRANSACTION_BYTES;

/// Convert a byte address to its sector index.
#[inline(always)]
pub fn sector_of(addr: u64) -> u64 {
    addr / SECTOR_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_math() {
        assert_eq!(sector_of(0), 0);
        assert_eq!(sector_of(63), 0);
        assert_eq!(sector_of(64), 1);
        assert_eq!(sector_of(128), 2);
    }
}
