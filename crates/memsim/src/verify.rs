//! Shadow-accounting conservation checker (the `verify` cargo feature).
//!
//! The paper's argument rests on trusting the MBA byte counters, so the
//! simulator carries a *second*, independently maintained set of books and
//! the two must always agree:
//!
//! * Every core keeps a [`ShadowLedger`] counting 64-byte transactions per
//!   MBA channel, incremented beside (not inside) every
//!   `NestCounters::record_sector` call the hierarchy makes.
//! * [`NestCounters`](crate::NestCounters) keeps a bulk-traffic shadow
//!   mirroring `record_bulk` (noise, DMA, measurement overhead) both
//!   per-channel and in total, which double-checks the channel-split
//!   arithmetic: the per-channel amounts must sum back to the requested
//!   byte count.
//!
//! After every simulated kernel,
//! [`SimMachine`](crate::SimMachine)`::verify_socket_conservation` asserts,
//! per channel:
//!
//! ```text
//! MBA bytes == SECTOR_BYTES x (demand fills + prefetch fills
//!                              + writebacks + bypass stores + RMW partials)
//!            + bulk bytes (noise / DMA / measurement overhead)
//! ```
//!
//! plus the per-core stats identity (shadow read transactions equal
//! `demand_misses + prefetch_fills`; shadow write transactions equal
//! `writebacks + bypass_writes + rmw_partials`) and counter monotonicity
//! across successive verification samples.
//!
//! With the feature disabled every hook compiles to a no-op; the hot path
//! pays nothing.

use core::fmt;

#[cfg(feature = "verify")]
use p9_arch::MBA_CHANNELS;

/// Why a conservation check failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConservationError {
    /// A core's shadow transaction count disagrees with its `CoreStats`.
    CoreStats {
        core: usize,
        dir: &'static str,
        shadow_tx: u64,
        stats_tx: u64,
    },
    /// A channel counter disagrees with shadow sectors + bulk bytes.
    Channel {
        channel: usize,
        dir: &'static str,
        counter: u64,
        expected: u64,
    },
    /// `record_bulk`'s channel split does not sum to the requested bytes.
    BulkSplit {
        dir: &'static str,
        split_sum: u64,
        total: u64,
    },
    /// A counter moved backwards between verification samples.
    Monotonic {
        channel: usize,
        dir: &'static str,
        prev: u64,
        now: u64,
    },
}

impl fmt::Display for ConservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConservationError::CoreStats {
                core,
                dir,
                shadow_tx,
                stats_tx,
            } => write!(
                f,
                "core {core}: shadow {dir} transactions {shadow_tx} != stats {stats_tx}"
            ),
            ConservationError::Channel {
                channel,
                dir,
                counter,
                expected,
            } => write!(
                f,
                "channel {channel} {dir}: counter {counter} B != shadow-expected {expected} B"
            ),
            ConservationError::BulkSplit {
                dir,
                split_sum,
                total,
            } => write!(
                f,
                "bulk {dir} split sums to {split_sum} B but {total} B were recorded"
            ),
            ConservationError::Monotonic {
                channel,
                dir,
                prev,
                now,
            } => write!(
                f,
                "channel {channel} {dir}: counter moved backwards ({prev} -> {now})"
            ),
        }
    }
}

impl std::error::Error for ConservationError {}

/// Per-core shadow transaction ledger. One entry per MBA channel and
/// direction; maintained beside every sector the hierarchy records, never
/// reset (the live counters are free-running too).
#[derive(Debug, Default, Clone)]
pub struct ShadowLedger {
    #[cfg(feature = "verify")]
    reads: [u64; MBA_CHANNELS],
    #[cfg(feature = "verify")]
    writes: [u64; MBA_CHANNELS],
}

impl ShadowLedger {
    /// Count one 64-byte transaction on `sector`'s channel.
    #[inline(always)]
    pub(crate) fn record(&mut self, sector: u64, dir: crate::Direction) {
        #[cfg(not(feature = "verify"))]
        let _ = (sector, dir);
        #[cfg(feature = "verify")]
        {
            let ch = crate::NestCounters::channel_of(sector);
            match dir {
                crate::Direction::Read => self.reads[ch] += 1,
                crate::Direction::Write => self.writes[ch] += 1,
            }
        }
    }

    /// Shadow read-transaction counts per channel.
    #[cfg(feature = "verify")]
    pub fn reads(&self) -> &[u64; MBA_CHANNELS] {
        &self.reads
    }

    /// Shadow write-transaction counts per channel.
    #[cfg(feature = "verify")]
    pub fn writes(&self) -> &[u64; MBA_CHANNELS] {
        &self.writes
    }
}

/// Snapshot of the bulk-traffic shadow kept by `NestCounters`.
#[cfg(feature = "verify")]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BulkSnapshot {
    pub read_bytes: [u64; MBA_CHANNELS],
    pub write_bytes: [u64; MBA_CHANNELS],
    pub read_total: u64,
    pub write_total: u64,
}

#[cfg(feature = "verify")]
impl BulkSnapshot {
    /// Check the double-entry invariant of `record_bulk`: the per-channel
    /// split must sum back to the bytes the callers asked to record.
    pub fn check_split(&self) -> Result<(), ConservationError> {
        let r: u64 = self.read_bytes.iter().sum();
        if r != self.read_total {
            return Err(ConservationError::BulkSplit {
                dir: "read",
                split_sum: r,
                total: self.read_total,
            });
        }
        let w: u64 = self.write_bytes.iter().sum();
        if w != self.write_total {
            return Err(ConservationError::BulkSplit {
                dir: "write",
                split_sum: w,
                total: self.write_total,
            });
        }
        Ok(())
    }
}

#[cfg(all(test, feature = "verify"))]
mod tests {
    use crate::counters::{Direction, NestCounters};
    use crate::machine::SimMachine;
    use p9_arch::Machine;

    fn quiet_tiny() -> SimMachine {
        SimMachine::quiet(Machine::tiny(64), 11)
    }

    #[test]
    fn kernel_traffic_is_conserved() {
        let mut m = quiet_tiny();
        let r = m.alloc(256 * 1024);
        // run_single already self-checks; the explicit call returns Ok too.
        m.run_single(0, |core| core.load_seq(r.base(), 256 * 1024));
        m.verify_socket_conservation(0).expect("conserved");
    }

    #[test]
    fn parallel_and_noise_traffic_is_conserved() {
        let mut m = SimMachine::new(Machine::tiny(64), crate::NoiseConfig::summit(), 9);
        let regions: Vec<_> = (0..4).map(|_| m.alloc(64 * 1024)).collect();
        let shared = m.socket_shared(0);
        shared.measurement_touch();
        m.run_parallel(0, 4, |tid, core| {
            core.store_seq(regions[tid].base(), 64 * 1024);
        });
        shared.measurement_touch();
        m.verify_socket_conservation(0).expect("conserved");
    }

    #[test]
    fn flush_and_reconfigure_traffic_is_conserved() {
        let mut m = quiet_tiny();
        let r = m.alloc(128 * 1024);
        m.run_single(0, |core| {
            core.set_software_prefetch(true);
            core.store_seq(r.base(), 128 * 1024);
        });
        m.flush_socket(0);
        // Re-sizing the L3 share writes dirty residue back too.
        m.run_parallel(0, 2, |_, _| {});
        m.verify_socket_conservation(0).expect("conserved");
    }

    #[test]
    fn external_record_is_caught_as_broken_accounting() {
        let mut m = quiet_tiny();
        let r = m.alloc(4096);
        m.run_single(0, |core| core.load_seq(r.base(), 4096));
        // Deliberately broken accounting: a counter update that no shadow
        // ledger saw (as a buggy hierarchy path would produce).
        m.socket_shared(0)
            .counters()
            .record_sector(0, Direction::Read);
        let err = m.verify_socket_conservation(0).unwrap_err();
        assert!(
            matches!(err, super::ConservationError::Channel { dir: "read", .. }),
            "{err}"
        );
    }

    #[test]
    fn bulk_split_shadow_matches_totals() {
        let c = NestCounters::new();
        for bytes in [0u64, 1, 7, 8, 63, 64, 1000, 1 << 20] {
            c.record_bulk(bytes, Direction::Read);
            c.record_bulk(bytes / 3, Direction::Write);
        }
        c.bulk_shadow().check_split().expect("split conserved");
    }
}
