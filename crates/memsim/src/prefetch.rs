//! Per-core load-stream detection and prefetch.
//!
//! POWER9 cores track load streams in a stream table. Two kinds matter for
//! the paper's analysis:
//!
//! * **Sequential streams** (consecutive sectors): prefetched ahead; for the
//!   paper's traffic accounting these change *when* bytes move, not how
//!   many, except for a small overshoot at the end of an array.
//! * **Stride-N streams** (constant stride larger than one sector): "hardware
//!   may detect Stride-N streams in intervals when they access elements that
//!   map to sequential cache blocks" (Power ISA 3.0B). Their presence is
//!   what turns off cache-bypassing stores — the central mechanism behind
//!   the read-per-write behaviour in Sections III and IV.
//!
//! The engine keeps a small fully-associative table of candidate streams.
//! A stream is *confirmed* after `CONFIRMATIONS` consecutive accesses with
//! the same sector stride. Confirmed streams with `|stride| > 1` raise the
//! core's `stride_stream_active` condition, which decays once the stream
//! stops being touched (tracked with a per-engine access clock).

/// Accesses with the same stride needed before a stream is confirmed.
pub const CONFIRMATIONS: u8 = 3;

/// Number of stream-table entries (POWER9 tracks up to 16 streams).
pub const STREAM_SLOTS: usize = 16;

/// How many sectors ahead a confirmed stream prefetches.
pub const PREFETCH_DEPTH: u64 = 8;

/// A confirmed stream is considered stale after this many engine accesses
/// without being advanced, releasing its slot and its stride-active vote.
pub const STALE_AFTER: u64 = 4096;

#[derive(Clone, Copy, Debug)]
struct Stream {
    /// Sector of the most recent access in this stream.
    last: u64,
    /// Sector stride between consecutive accesses (0 = not yet known).
    stride: i64,
    /// Consecutive same-stride confirmations so far.
    confirms: u8,
    /// Engine clock of the last touch (for staleness / LRU).
    touched: u64,
    /// Valid entry.
    valid: bool,
    /// Stream position (in strides ahead of `last`) already covered by
    /// issued prefetches — each access only issues the *new* tail.
    pf_ahead: u8,
}

impl Stream {
    const INVALID: Stream = Stream {
        last: 0,
        stride: 0,
        confirms: 0,
        touched: 0,
        valid: false,
        pf_ahead: 0,
    };

    #[inline]
    fn confirmed(&self) -> bool {
        self.valid && self.confirms >= CONFIRMATIONS
    }

    #[inline]
    fn is_stride_n(&self) -> bool {
        self.confirmed() && self.stride.unsigned_abs() > 1
    }
}

/// What the engine asks the hierarchy to do after observing a load.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrefetchRequest {
    /// Sectors to prefetch (fetch into the cache if absent).
    pub sectors: Vec<u64>,
}

/// The per-core stream engine.
#[derive(Clone, Debug)]
pub struct PrefetchEngine {
    table: [Stream; STREAM_SLOTS],
    clock: u64,
    /// Largest stride (in sectors) the detector will track; larger jumps
    /// start a fresh candidate stream instead.
    max_stride: i64,
    /// Most-recently-matched slot: checked first (streams are bursty, so
    /// the common case is another access to the same stream).
    mru: usize,
}

impl Default for PrefetchEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefetchEngine {
    pub fn new() -> Self {
        PrefetchEngine {
            table: [Stream::INVALID; STREAM_SLOTS],
            clock: 0,
            // 1 MiB worth of sectors: covers matrix-column strides of the
            // paper's largest problems.
            max_stride: (1 << 20) / crate::SECTOR_BYTES as i64,
            mru: 0,
        }
    }

    /// Fast path for the bursty common case: the access continues the
    /// most-recently-matched stream (same sector or exact stride).
    #[inline]
    fn try_fast_path(&mut self, sector: u64, out: &mut PrefetchRequest) -> bool {
        let i = self.mru;
        let s = &mut self.table[i];
        if !s.valid {
            return false;
        }
        if s.last == sector {
            s.touched = self.clock;
            return true;
        }
        let delta = sector as i64 - s.last as i64;
        if s.stride != 0 && delta == s.stride {
            s.last = sector;
            s.touched = self.clock;
            s.confirms = s.confirms.saturating_add(1);
            if s.confirms >= CONFIRMATIONS {
                let already = u64::from(s.pf_ahead.saturating_sub(1));
                let stride = s.stride;
                for k in (already + 1)..=PREFETCH_DEPTH {
                    let next = sector as i64 + stride * k as i64;
                    if next >= 0 {
                        out.sectors.push(next as u64);
                    }
                }
                s.pf_ahead = PREFETCH_DEPTH as u8;
            }
            return true;
        }
        false
    }

    /// Steady-state shortcut for the hierarchy's fast path: when the
    /// access continues the most-recently-matched stream and that stream
    /// is already confirmed with a saturated prefetch window, the full
    /// [`Self::observe_load`] bookkeeping reduces to advancing the MRU
    /// entry and issuing exactly one new tail prefetch.
    ///
    /// Returns `None` (with **no state mutated**) when the access is not
    /// such a continuation — the caller must fall back to
    /// [`Self::observe_load`], which handles it identically. Returns
    /// `Some(pf)` when handled, where `pf` is the single prefetch target
    /// to issue (`None` for same-sector reuse, a just-confirming stream,
    /// or a negative target).
    #[inline]
    pub fn fast_advance(&mut self, sector: u64) -> Option<Option<u64>> {
        let clock = self.clock + 1;
        let s = &mut self.table[self.mru];
        if !s.valid {
            return None;
        }
        if s.last == sector {
            s.touched = clock;
            self.clock = clock;
            return Some(None);
        }
        let delta = sector as i64 - s.last as i64;
        if s.stride == 0
            || delta != s.stride
            || s.confirms < CONFIRMATIONS
            || s.pf_ahead != PREFETCH_DEPTH as u8
        {
            return None;
        }
        s.last = sector;
        s.touched = clock;
        s.confirms = s.confirms.saturating_add(1);
        let next = sector as i64 + s.stride * PREFETCH_DEPTH as i64;
        self.clock = clock;
        Some((next >= 0).then_some(next as u64))
    }

    /// Observe a demand load of `sector`; returns prefetches to issue.
    ///
    /// Matching rules, in priority order:
    ///
    /// 1. *Same-sector reuse* (`last == sector`): refresh recency only —
    ///    spatial reuse inside a sector is invisible to the stream
    ///    detector, which watches cache-block transitions.
    /// 2. *Exact continuation* (`sector == last + stride`): advance the
    ///    stream and add a confirmation.
    /// 3. *Closest candidate*: the nearest stream within `max_stride` may
    ///    adopt the observed delta as its stride hypothesis — but only if
    ///    it has no hypothesis yet, or the new delta is strictly smaller in
    ///    magnitude (refining toward the local stream). Confirmed streams
    ///    are never destroyed by a non-matching access; interleaved streams
    ///    therefore separate into distinct entries.
    /// 4. Otherwise a fresh candidate entry is allocated.
    pub fn observe_load(&mut self, sector: u64, out: &mut PrefetchRequest) {
        self.clock += 1;
        out.sectors.clear();

        if self.try_fast_path(sector, out) {
            return;
        }

        // Rules 1 and 2: same-sector reuse / exact continuation.
        let mut closest: Option<(usize, i64)> = None;
        for (i, s) in self.table.iter_mut().enumerate() {
            if !s.valid {
                continue;
            }
            if s.last == sector {
                s.touched = self.clock;
                self.mru = i;
                return;
            }
            let delta = sector as i64 - s.last as i64;
            if s.stride != 0 && delta == s.stride {
                s.last = sector;
                s.touched = self.clock;
                s.confirms = s.confirms.saturating_add(1);
                if s.confirms >= CONFIRMATIONS {
                    // Advance the prefetch window: the stream moved one
                    // stride, so issue only the uncovered tail (one sector
                    // per access in steady state).
                    let already = u64::from(s.pf_ahead.saturating_sub(1));
                    let stride = s.stride;
                    for k in (already + 1)..=PREFETCH_DEPTH {
                        let next = sector as i64 + stride * k as i64;
                        if next >= 0 {
                            out.sectors.push(next as u64);
                        }
                    }
                    s.pf_ahead = PREFETCH_DEPTH as u8;
                }
                self.mru = i;
                return;
            }
            if delta.unsigned_abs() as i64 <= self.max_stride {
                let better = match closest {
                    None => true,
                    Some((_, bd)) => delta.abs() < bd.abs(),
                };
                if better {
                    closest = Some((i, delta));
                }
            }
        }

        // Rule 3: adopt / refine a stride hypothesis on the closest entry.
        if let Some((i, delta)) = closest {
            let s = &mut self.table[i];
            let adoptable =
                s.stride == 0 || (s.confirms < CONFIRMATIONS && delta.abs() < s.stride.abs());
            if adoptable {
                s.stride = delta;
                s.confirms = 1;
                s.last = sector;
                s.touched = self.clock;
                s.pf_ahead = 0;
                self.mru = i;
                return;
            }
        }

        // Rule 4: fresh candidate in the first-invalid / LRU slot.
        let slot = self.victim_slot();
        self.table[slot] = Stream {
            last: sector,
            stride: 0,
            confirms: 0,
            touched: self.clock,
            valid: true,
            pf_ahead: 0,
        };
        self.mru = slot;
    }

    fn victim_slot(&self) -> usize {
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for (i, s) in self.table.iter().enumerate() {
            if !s.valid {
                return i;
            }
            if s.touched < oldest {
                oldest = s.touched;
                victim = i;
            }
        }
        victim
    }

    /// True when `sector` is the current position of a *confirmed
    /// sequential* stream (|stride| = 1 sector). The store engine uses
    /// this to recognize streaming stores: only such stores are eligible
    /// to bypass the cache (store-gather), everything else write-allocates.
    pub fn sequential_stream_at(&self, sector: u64) -> bool {
        self.table
            .iter()
            .any(|s| s.confirmed() && s.stride.unsigned_abs() == 1 && s.last == sector)
    }

    /// True while at least one confirmed stride-N (stride > 1 sector) load
    /// stream is live. Store-bypass is suppressed in this state.
    pub fn stride_stream_active(&self) -> bool {
        self.table
            .iter()
            .any(|s| s.is_stride_n() && self.clock.saturating_sub(s.touched) < STALE_AFTER)
    }

    /// Drop every tracked stream (e.g. between measured kernels).
    pub fn reset(&mut self) {
        self.table = [Stream::INVALID; STREAM_SLOTS];
        self.clock = 0;
        self.mru = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(engine: &mut PrefetchEngine, sectors: &[u64]) -> Vec<Vec<u64>> {
        let mut req = PrefetchRequest::default();
        let mut all = Vec::new();
        for &s in sectors {
            engine.observe_load(s, &mut req);
            all.push(req.sectors.clone());
        }
        all
    }

    #[test]
    fn sequential_stream_confirms_and_prefetches() {
        let mut e = PrefetchEngine::new();
        let reqs = drive(&mut e, &[100, 101, 102, 103, 104]);
        // After CONFIRMATIONS same-stride transitions we must prefetch.
        assert!(reqs[3].contains(&104) || reqs[3].contains(&105));
        assert!(
            !e.stride_stream_active(),
            "stride-1 is not a stride-N stream"
        );
    }

    #[test]
    fn strided_stream_sets_stride_active() {
        let mut e = PrefetchEngine::new();
        drive(&mut e, &[0, 64, 128, 192, 256]);
        assert!(e.stride_stream_active());
    }

    #[test]
    fn same_sector_reuse_does_not_break_stream() {
        let mut e = PrefetchEngine::new();
        drive(&mut e, &[10, 10, 10, 11, 11, 12, 12, 13, 14]);
        // Stream should confirm as sequential despite intra-sector repeats.
        assert!(!e.stride_stream_active());
        let mut req = PrefetchRequest::default();
        e.observe_load(15, &mut req);
        assert!(!req.sectors.is_empty());
    }

    #[test]
    fn stride_active_decays_when_stream_stops() {
        let mut e = PrefetchEngine::new();
        drive(&mut e, &[0, 64, 128, 192, 256]);
        assert!(e.stride_stream_active());
        // Hammer widely scattered sectors (deltas far beyond max stride, no
        // constant stride) long enough for the strided stream to go stale.
        let noise: Vec<u64> = (0..STALE_AFTER + 10)
            .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64)) >> 16)
            .collect();
        drive(&mut e, &noise);
        assert!(!e.stride_stream_active());
    }

    #[test]
    fn reset_clears_everything() {
        let mut e = PrefetchEngine::new();
        drive(&mut e, &[0, 64, 128, 192, 256]);
        e.reset();
        assert!(!e.stride_stream_active());
    }

    #[test]
    fn fast_advance_is_equivalent_to_observe_load() {
        // Drive two engines through an identical access pattern; one takes
        // fast_advance whenever it applies. Per-access prefetch decisions
        // and queryable stream state must match exactly.
        let mut pat: Vec<u64> = Vec::new();
        for i in 0..40 {
            pat.push(1_000 + i); // sequential stream
        }
        for i in 0..40 {
            pat.push((1 << 16) + i * 9); // stride-9 stream
        }
        for i in 0..10 {
            pat.push(2_000 + i / 3); // same-sector repeats
        }
        for i in 0..30 {
            pat.push(3_000 + i); // interleaved with...
            pat.push((1 << 18) + i * 5); // ...a stride-5 stream
        }
        let mut x = 9_u64;
        for _ in 0..200 {
            x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
            pat.push(x >> 40); // pseudo-random noise
        }
        let mut slow = PrefetchEngine::new();
        let mut fast = PrefetchEngine::new();
        let mut req = PrefetchRequest::default();
        for (i, &s) in pat.iter().enumerate() {
            slow.observe_load(s, &mut req);
            let expect = req.sectors.clone();
            let got = match fast.fast_advance(s) {
                Some(pf) => pf.into_iter().collect(),
                None => {
                    fast.observe_load(s, &mut req);
                    req.sectors.clone()
                }
            };
            assert_eq!(expect, got, "prefetches diverge at access {i} ({s})");
            assert_eq!(
                slow.stride_stream_active(),
                fast.stride_stream_active(),
                "stride-active diverges at access {i}"
            );
            assert_eq!(
                slow.sequential_stream_at(s + 1),
                fast.sequential_stream_at(s + 1),
                "sequential-at diverges at access {i}"
            );
        }
    }

    #[test]
    fn two_interleaved_streams_both_tracked() {
        let mut e = PrefetchEngine::new();
        // Interleave a sequential stream at 1000+ with a strided one at 0+.
        let mut pat = Vec::new();
        for i in 0..6u64 {
            pat.push(1000 + i);
            pat.push(i * 50);
        }
        drive(&mut e, &pat);
        assert!(e.stride_stream_active());
    }
}
