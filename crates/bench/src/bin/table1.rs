//! Table I: the systems and the memory-traffic performance events
//! measured on each, as exposed by the running PAPI stack.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("table1")
}
