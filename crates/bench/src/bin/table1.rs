//! Table I: the systems and the memory-traffic performance events
//! measured on each, as exposed by the running PAPI stack.

use repro_bench::{node, System};

fn main() {
    println!("TABLE I: Architectures and Performance Events");
    println!("system,arch,component,event");
    for system in [System::Summit, System::Tellico] {
        let (machine, setup) = node(system, 1);
        let arch = "IBM POWER9";
        for status in setup.papi.component_status() {
            if !status.enabled {
                continue;
            }
            if status.name != "pcp" && status.name != "perf_uncore" {
                continue;
            }
            let comp = setup.papi.component(&status.name).unwrap();
            for ev in comp.list_events() {
                if ev.name.contains("BYTES") {
                    println!("{},{},{},{}", system.name(), arch, status.name, ev.name);
                }
            }
        }
        // Also report the disabled path: the access-control story of the
        // paper (Summit users cannot take the direct route).
        for status in setup.papi.component_status() {
            if !status.enabled && status.name == "perf_uncore" {
                println!(
                    "{},{},{},DISABLED ({})",
                    system.name(),
                    arch,
                    status.name,
                    status.reason.as_deref().unwrap_or("")
                );
            }
        }
        drop(machine);
    }
    repro_bench::obsreport::write_artifacts("table1");
}
