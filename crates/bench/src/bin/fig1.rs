//! Figure 1: the capped-GEMV memory-usage schematic, rendered from the
//! actual kernel model. The shaded band is the allocated (capped) part of
//! matrix A (`P × N`, `P = min(M, N)`); the hatched area below is the
//! memory a plain GEMV of output size `M` would have needed.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig1")
}
