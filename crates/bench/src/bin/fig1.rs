//! Figure 1: the capped-GEMV memory-usage schematic, rendered from the
//! actual kernel model. The shaded band is the allocated (capped) part of
//! matrix A (`P × N`, `P = min(M, N)`); the hatched area below is the
//! memory a plain GEMV of output size `M` would have needed.

use blas_kernels::CappedGemvTrace;
use p9_memsim::SimMachine;
use repro_bench::Args;

fn main() {
    let args = Args::parse();
    let m = args.get_u64("m", 4096).max(1);
    let n = args.get_u64("n", 1280).max(1);
    let mut machine = SimMachine::summit(1);
    let t = CappedGemvTrace::allocate(&mut machine, m, n);

    println!(
        "Fig. 1: capped GEMV memory usage (M = {m}, N = {n}, P = {})",
        t.p
    );
    println!();
    let width = 40usize;
    let rows = 16usize;
    let cap_rows = ((t.p as f64 / m as f64) * rows as f64).ceil().max(1.0) as usize;
    println!("        x (N elements, read once)");
    println!("   +{}+", "-".repeat(width));
    for r in 0..rows.min(cap_rows) {
        let tag = if r == cap_rows / 2 {
            " A (allocated: P x N)"
        } else {
            ""
        };
        println!("   |{}|{tag}", "#".repeat(width));
    }
    for r in cap_rows..rows {
        let tag = if r == (cap_rows + rows) / 2 {
            " rows i >= P reuse row i mod P (never allocated)"
        } else {
            ""
        };
        println!("   |{}|{tag}", "/ ".repeat(width / 2));
    }
    println!("   +{}+", "-".repeat(width));
    println!("        y (M elements, written once)");
    println!();
    let full = m * n * 8;
    let capped = t.p * n * 8;
    println!(
        "allocated A: {} MiB (vs {} MiB uncapped) -> {:.1}x saving at equal write traffic",
        capped >> 20,
        full >> 20,
        full as f64 / capped as f64
    );
    repro_bench::obsreport::write_artifacts("fig1");
}
