//! Throughput of the networked PMCD: concurrent loopback clients doing
//! batched fetch round-trips against one `pcp_wire::PmcdServer`.
//!
//! Reports per-client and aggregate round-trips/second plus the server's
//! own latency histogram (read back through the PMNS, so the benchmark
//! also exercises the self-metrics path). The run fails if the aggregate
//! rate drops below 1000 fetch round-trips/s — an order of magnitude
//! below what a loopback socket should sustain, so a failure means the
//! server is serialising or wedging somewhere.
//!
//! This benchmark measures real wall-clock throughput, so unlike the
//! figure binaries it is *not* part of the deterministic `repro` catalog.
//!
//! The run also monitors itself: it binds a [`ScrapeListener`] next to
//! the PDU server, scrapes its own `/metrics` endpoint at the start and
//! end of the measure window, strict-parses both documents, and derives
//! per-second rates from the two snapshots through [`obs::Monitor`] —
//! the same pipeline an external Prometheus would run against us.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use obs::metrics::{ExportSemantics, Exported};
use obs::openmetrics::{self, MetricKind, Value};
use p9_memsim::SimMachine;
use pcp_sim::{PmApi, Pmns};
use pcp_wire::{PmcdServer, ScrapeListener, WireClient, WireConfig};

const CLIENTS: usize = 8;
const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_secs(2);
const MIN_AGGREGATE_RTPS: f64 = 1000.0;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("wire_bench: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 7);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let server =
        PmcdServer::bind_system("127.0.0.1:0", pmns.clone(), sockets, WireConfig::default())
            .map_err(|e| format!("bind pmcd server: {e}"))?;
    let addr = server.local_addr();
    let scrape = ScrapeListener::bind("127.0.0.1:0", &server)
        .map_err(|e| format!("bind scrape listener: {e}"))?;

    // Each round trip fetches all 16 nest metrics of socket 0 in one
    // batch, the way PAPI reads an event set.
    let mut requests = Vec::new();
    for n in pmns.children("") {
        let id = pmns
            .lookup(n)
            .ok_or_else(|| format!("PMNS child {n} has no metric id"))?;
        requests.push((id, pmns.instance_of_socket(0)));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut scrapes: Vec<(u64, Vec<Exported>)> = Vec::new();
    let counts: Vec<Result<u64, String>> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let requests = requests.clone();
                scope.spawn(move || -> Result<u64, String> {
                    let client = WireClient::connect(addr).map_err(|e| format!("connect: {e}"))?;
                    let warm_end = Instant::now() + WARMUP;
                    while Instant::now() < warm_end {
                        client
                            .pm_fetch(&requests)
                            .map_err(|e| format!("warmup fetch: {e}"))?;
                    }
                    let mut n = 0u64;
                    // relaxed-ok: a stop flag read in a hot loop; the
                    // only consequence of a stale read is one extra fetch.
                    while !stop.load(Ordering::Relaxed) {
                        client
                            .pm_fetch(&requests)
                            .map_err(|e| format!("fetch: {e}"))?;
                        n += 1;
                    }
                    Ok(n)
                })
            })
            .collect();
        std::thread::sleep(WARMUP);
        // Bracket the measure window with two self-scrapes over HTTP:
        // the benchmark is its own first monitoring client.
        let t0 = Instant::now();
        let first = self_scrape(scrape.local_addr());
        std::thread::sleep(MEASURE.saturating_sub(t0.elapsed()));
        let second = self_scrape(scrape.local_addr());
        // relaxed-ok: nothing is published through the flag; workers only
        // need to observe it eventually.
        stop.store(true, Ordering::Relaxed);
        if let (Ok(a), Ok(b)) = (first, second) {
            scrapes = vec![a, b];
        }
        joins
            .into_iter()
            .map(|j| match j.join() {
                Ok(r) => r,
                Err(_) => Err("client thread panicked".into()),
            })
            .collect()
    });
    let counts = counts.into_iter().collect::<Result<Vec<u64>, String>>()?;

    let total: u64 = counts.iter().sum();
    let rtps = total as f64 / MEASURE.as_secs_f64();
    println!(
        "wire_bench: {CLIENTS} loopback clients, batch of {} metrics",
        requests.len()
    );
    for (i, n) in counts.iter().enumerate() {
        println!(
            "  client {i}: {n} round-trips ({:.0}/s)",
            *n as f64 / MEASURE.as_secs_f64()
        );
    }
    println!("  aggregate: {total} round-trips, {rtps:.0}/s");

    // Read the server's histogram back through the wire, like any client.
    let probe = WireClient::connect(addr).map_err(|e| format!("connect probe: {e}"))?;
    let hist = [
        "pmcd.fetch.count",
        "pmcd.fetch.latency_ns.lt_1024",
        "pmcd.fetch.latency_ns.lt_16384",
        "pmcd.fetch.latency_ns.lt_131072",
        "pmcd.fetch.latency_ns.lt_1048576",
        "pmcd.fetch.latency_ns.lt_16777216",
        "pmcd.fetch.latency_ns.sum",
        "pmcd.queue.depth",
        "pmcd.queue.shed",
    ];
    let mut ids = Vec::new();
    for n in hist {
        let id = probe
            .pm_lookup_name(n)
            .map_err(|e| format!("self metric {n}: {e}"))?;
        ids.push((id, pcp_sim::InstanceId(0)));
    }
    let vals = probe
        .pm_fetch(&ids)
        .map_err(|e| format!("self fetch: {e}"))?;
    println!("  server-side fetch latency histogram:");
    for (name, v) in hist.iter().zip(&vals) {
        println!("    {name:<42} {v}");
    }
    if vals[0] > 0 {
        println!(
            "    mean server-side fetch handling: {:.1} us",
            vals[6] as f64 / vals[0] as f64 / 1000.0
        );
    }

    // The two bracketing self-scrapes give every exported metric a
    // two-sample window; the Monitor derives per-second rates from them
    // exactly as an external Prometheus would, and its shed rule
    // cross-checks the floor gate from the server's own vantage point.
    let mut derived: Vec<(String, f64)> = Vec::new();
    match scrapes.as_slice() {
        [(t0, first), (t1, second)] => {
            let mut monitor = obs::Monitor::new(
                4,
                vec![obs::Rule {
                    name: "alert.scrape.shedding",
                    metric: "pmcd_obs_wire_scrape_shed",
                    predicate: obs::Predicate::RateAbove(0.0),
                }],
            );
            monitor.tick(*t0, first);
            monitor.tick(*t1, second);
            println!("  self-scrape derived rates over the measure window:");
            for (name, r) in monitor.derived() {
                if r > 0.0 {
                    println!("    {name:<42} {r:>10.1}/s");
                }
            }
            for a in monitor.alerts() {
                println!(
                    "  ALERT {}: {} = {:.2} > {:.2}",
                    a.rule, a.metric, a.observed, a.threshold
                );
            }
            derived = monitor.derived();
        }
        _ => println!("  (self-scrape failed; skipping derived rates)"),
    }

    write_bench_obs(&counts, &requests, &hist, &vals, rtps, &derived);

    if rtps < MIN_AGGREGATE_RTPS {
        return Err(format!(
            "aggregate {rtps:.0} fetch round-trips/s below the {MIN_AGGREGATE_RTPS} floor"
        ));
    }
    println!("PASS: >= {MIN_AGGREGATE_RTPS} aggregate fetch round-trips/s");

    repro_bench::obsreport::write_artifacts("wire_bench");
    Ok(())
}

/// One HTTP self-scrape: GET /metrics from our own sidecar, strict-parse
/// the document, and flatten it to `(scrape_ts_ns, registry snapshot)`
/// so an [`obs::Monitor`] can consume it like a local export. Float
/// gauges cannot happen here (every serverside sample is integral), so
/// any would be a protocol bug worth failing on.
fn self_scrape(addr: std::net::SocketAddr) -> Result<(u64, Vec<Exported>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect scrape: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .map_err(|e| format!("send scrape: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read scrape: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("scrape response has no header/body split")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "scrape refused: {}",
            head.lines().next().unwrap_or("")
        ));
    }
    let doc = openmetrics::parse(body).map_err(|e| format!("scrape document rejected: {e}"))?;
    let ts = doc
        .scrape_ts_ns
        .ok_or("scrape document lacks its timestamp")?;
    let mut snapshot = Vec::with_capacity(doc.samples.len());
    for s in doc.samples {
        let Value::Int(value) = s.value else {
            return Err(format!("non-integral serverside sample {}", s.name));
        };
        snapshot.push(Exported {
            name: s.name,
            value,
            semantics: match s.kind {
                MetricKind::Counter => ExportSemantics::Counter,
                MetricKind::Gauge => ExportSemantics::Instant,
            },
        });
    }
    Ok((ts, snapshot))
}

/// Emit `results/BENCH_obs.json`: throughput plus the server's own
/// queue-depth/shed-rate and fetch-latency self-metrics, as read back
/// over the wire, and the rates derived from the bracketing
/// self-scrapes. Hand-rolled JSON — the workspace has no serde.
fn write_bench_obs(
    counts: &[u64],
    requests: &[(pcp_sim::MetricId, pcp_sim::InstanceId)],
    hist_names: &[&str],
    hist_vals: &[u64],
    rtps: f64,
    derived: &[(String, f64)],
) {
    let total: u64 = counts.iter().sum();
    let secs = MEASURE.as_secs_f64();
    let shed = hist_names
        .iter()
        .position(|n| *n == "pmcd.queue.shed")
        .map_or(0, |i| hist_vals[i]);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"clients\": {CLIENTS},\n"));
    json.push_str(&format!("  \"batch_metrics\": {},\n", requests.len()));
    json.push_str(&format!("  \"measure_seconds\": {secs},\n"));
    json.push_str(&format!("  \"total_round_trips\": {total},\n"));
    json.push_str(&format!("  \"aggregate_rtps\": {rtps:.1},\n"));
    json.push_str(&format!(
        "  \"shed_per_second\": {:.3},\n",
        shed as f64 / secs
    ));
    let per: Vec<String> = counts.iter().map(|n| n.to_string()).collect();
    json.push_str(&format!(
        "  \"per_client_round_trips\": [{}],\n",
        per.join(", ")
    ));
    json.push_str("  \"server_self_metrics\": {\n");
    for (i, (name, v)) in hist_names.iter().zip(hist_vals).enumerate() {
        let comma = if i + 1 < hist_names.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {v}{comma}\n"));
    }
    json.push_str("  },\n");
    json.push_str("  \"self_scrape_rates_per_s\": {\n");
    for (i, (name, r)) in derived.iter().enumerate() {
        let comma = if i + 1 < derived.len() { "," } else { "" };
        json.push_str(&format!("    \"{name}\": {r:.3}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/BENCH_obs.json", &json).is_ok()
    {
        println!("  wrote results/BENCH_obs.json");
    }
}
