//! Throughput of the networked PMCD: concurrent loopback clients doing
//! batched fetch round-trips against one `pcp_wire::PmcdServer`.
//!
//! Reports per-client and aggregate round-trips/second plus the server's
//! own latency histogram (read back through the PMNS, so the benchmark
//! also exercises the self-metrics path). The run fails if the aggregate
//! rate drops below 1000 fetch round-trips/s — an order of magnitude
//! below what a loopback socket should sustain, so a failure means the
//! server is serialising or wedging somewhere.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use p9_memsim::SimMachine;
use pcp_sim::{PmApi, Pmns};
use pcp_wire::{PmcdServer, WireClient, WireConfig};

const CLIENTS: usize = 8;
const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_secs(2);
const MIN_AGGREGATE_RTPS: f64 = 1000.0;

fn main() {
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 7);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let server =
        PmcdServer::bind_system("127.0.0.1:0", pmns.clone(), sockets, WireConfig::default())
            .expect("bind pmcd server");
    let addr = server.local_addr();

    // Each round trip fetches all 16 nest metrics of socket 0 in one
    // batch, the way PAPI reads an event set.
    let requests: Vec<_> = pmns
        .children("")
        .iter()
        .map(|n| (pmns.lookup(n).unwrap(), pmns.instance_of_socket(0)))
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let counts: Vec<u64> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let requests = requests.clone();
                scope.spawn(move || {
                    let client = WireClient::connect(addr).expect("connect");
                    let warm_end = Instant::now() + WARMUP;
                    while Instant::now() < warm_end {
                        client.pm_fetch(&requests).expect("warmup fetch");
                    }
                    let mut n = 0u64;
                    // relaxed-ok: a stop flag read in a hot loop; the
                    // only consequence of a stale read is one extra fetch.
                    while !stop.load(Ordering::Relaxed) {
                        client.pm_fetch(&requests).expect("fetch");
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        std::thread::sleep(WARMUP + MEASURE);
        // relaxed-ok: nothing is published through the flag; workers only
        // need to observe it eventually.
        stop.store(true, Ordering::Relaxed);
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let total: u64 = counts.iter().sum();
    let rtps = total as f64 / MEASURE.as_secs_f64();
    println!(
        "wire_bench: {CLIENTS} loopback clients, batch of {} metrics",
        requests.len()
    );
    for (i, n) in counts.iter().enumerate() {
        println!(
            "  client {i}: {n} round-trips ({:.0}/s)",
            *n as f64 / MEASURE.as_secs_f64()
        );
    }
    println!("  aggregate: {total} round-trips, {rtps:.0}/s");

    // Read the server's histogram back through the wire, like any client.
    let probe = WireClient::connect(addr).expect("connect probe");
    let hist = [
        "pmcd.fetch.count",
        "pmcd.fetch.latency_seconds.le_10us",
        "pmcd.fetch.latency_seconds.le_50us",
        "pmcd.fetch.latency_seconds.le_100us",
        "pmcd.fetch.latency_seconds.le_500us",
        "pmcd.fetch.latency_seconds.le_1ms",
        "pmcd.fetch.latency_ns.sum",
    ];
    let ids: Vec<_> = hist
        .iter()
        .map(|n| {
            (
                probe.pm_lookup_name(n).expect("self metric"),
                pcp_sim::InstanceId(0),
            )
        })
        .collect();
    let vals = probe.pm_fetch(&ids).expect("self fetch");
    println!("  server-side fetch latency histogram:");
    for (name, v) in hist.iter().zip(&vals) {
        println!("    {name:<42} {v}");
    }
    if vals[0] > 0 {
        println!(
            "    mean server-side fetch handling: {:.1} us",
            vals[6] as f64 / vals[0] as f64 / 1000.0
        );
    }

    assert!(
        rtps >= MIN_AGGREGATE_RTPS,
        "aggregate {rtps:.0} fetch round-trips/s below the {MIN_AGGREGATE_RTPS} floor"
    );
    println!("PASS: >= {MIN_AGGREGATE_RTPS} aggregate fetch round-trips/s");
}
