//! Figure 2: memory traffic of the single-threaded GEMM with **one
//! repetition**, measured via PCP on Summit (`--system summit`, Fig. 2a)
//! or via perf_uncore on Tellico (`--system tellico`, Fig. 2b).
//!
//! Expected shape: small sizes dominated by noise; measurements approach
//! the 3N²/N² expectations only for larger problems, identically on both
//! measurement paths.

use repro_bench::figures::{gemm_sweep, print_gemm_rows};
use repro_bench::{gemm_sizes, header, Args, System};

fn main() {
    let args = Args::parse();
    let system = System::from_arg(&args.get_or("system", "summit"));
    let sizes = gemm_sizes(args.flag("full"));
    let seed = args.get_u64("seed", 2);
    header(
        "Fig. 2: single-threaded GEMM, 1 repetition",
        &[
            ("system", system.name().into()),
            (
                "events",
                if system == System::Summit {
                    "pcp".into()
                } else {
                    "perf_uncore".into()
                },
            ),
            ("seed", seed.to_string()),
        ],
    );
    let rows = gemm_sweep(system, 1, &sizes, |_| 1, seed);
    let bounds = blas_kernels::gemm_cache_bounds(p9_arch::L3_PER_CORE_BYTES);
    print_gemm_rows(&rows, bounds);
    repro_bench::obsreport::write_artifacts("fig2");
}
