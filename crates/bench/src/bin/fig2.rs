//! Figure 2: memory traffic of the single-threaded GEMM with **one
//! repetition**, measured via PCP on Summit (`--system summit`, Fig. 2a)
//! or via perf_uncore on Tellico (`--system tellico`, Fig. 2b).
//!
//! Expected shape: small sizes dominated by noise; measurements approach
//! the 3N²/N² expectations only for larger problems, identically on both
//! measurement paths.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig2")
}
