//! Figure 11: the multi-component performance profile of a single rank of
//! the GPU-accelerated 3D-FFT — 32 nodes, 8×8 virtual processor grid;
//! host memory read/write traffic (PCP), GPU power (NVML) and InfiniBand
//! receive traffic monitored simultaneously through one PAPI event set.
//!
//! Expected shape: each 1D-FFT phase shows a host-read surge (H2D), a GPU
//! power spike, then a host-write surge (D2H); re-sorting phases 1/3 show
//! ~2:1 read:write, phases 2/4 ~1:1 with higher bandwidth; the two
//! All2All phases are the only network activity.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig11")
}
