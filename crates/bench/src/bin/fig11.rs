//! Figure 11: the multi-component performance profile of a single rank of
//! the GPU-accelerated 3D-FFT — 32 nodes, 8×8 virtual processor grid;
//! host memory read/write traffic (PCP), GPU power (NVML) and InfiniBand
//! receive traffic monitored simultaneously through one PAPI event set.
//!
//! Expected shape: each 1D-FFT phase shows a host-read surge (H2D), a GPU
//! power spike, then a host-write surge (D2H); re-sorting phases 1/3 show
//! ~2:1 read:write, phases 2/4 ~1:1 with higher bandwidth; the two
//! All2All phases are the only network activity.

use std::sync::Arc;

use fft3d::gpu::GpuFft3dRank;
use nvml_sim::{GpuDevice, GpuParams};
use papi_profiling::{Column, Profiler};
use papi_sim::components::{IbComponent, NvmlComponent, PcpComponent};
use pcp_sim::{PcpContext, Pmcd, PmcdConfig, Pmns};
use ranksim::{ClusterSim, ProcessGrid};
use repro_bench::{header, Args, System};

fn main() {
    let args = Args::parse();
    let n = args.get_usize("n", 896);
    let slabs = args.get_usize("slabs", 6);
    let seed = args.get_u64("seed", 11);
    let grid = ProcessGrid::new(8, 8);

    let machine = System::Summit.machine(seed);
    let gpu = Arc::new(GpuDevice::new(
        0,
        GpuParams::default(),
        machine.socket_shared(0),
    ));
    let mut cluster = ClusterSim::new(machine, grid, 2);
    let rank = GpuFft3dRank::new(&mut cluster, Arc::clone(&gpu), n, slabs);

    // Wire PAPI: PCP over the instrumented node's sockets, NVML over the
    // pipeline's GPU, InfiniBand over node 0's rails.
    let pmns = Pmns::for_machine(cluster.machine().arch());
    let sockets: Vec<_> = (0..cluster.machine().num_sockets())
        .map(|s| cluster.machine().socket_shared(s))
        .collect();
    let pmcd = Pmcd::spawn_system(pmns.clone(), sockets.clone(), PmcdConfig::default())
        .expect("spawn pmcd");
    let ctx = PcpContext::connect(pmcd.handle(), Some(cluster.machine().socket_shared(0)));
    let mut papi = papi_sim::Papi::new();
    papi.register(Box::new(PcpComponent::new(ctx, pmns, sockets)));
    papi.register(Box::new(NvmlComponent::new(vec![Arc::clone(&gpu)])));
    papi.register(Box::new(IbComponent::new(
        cluster.fabric().node(0).hcas.clone(),
    )));

    header(
        "Fig. 11: performance profile of a single 3D-FFT rank",
        &[
            ("grid", "8x8 (32 nodes)".into()),
            ("N", n.to_string()),
            ("slabs per phase", slabs.to_string()),
        ],
    );

    let columns = vec![
        Column::gauge("nvml:::Tesla_V100-SXM2-16GB:device_0:power", "gpu_power_mW"),
        Column::counter(
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
            "mem_read_Bps",
        )
        .scaled(8.0),
        Column::counter(
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
            "mem_write_Bps",
        )
        .scaled(8.0),
        Column::counter(
            "infiniband:::mlx5_0_1_ext:port_recv_data",
            "ib_recv_words_ps",
        )
        .scaled(2.0),
    ];

    let mut profiler = Profiler::start(&papi, columns).expect("profiler start");
    rank.run(&mut cluster, |phase, cl| {
        let now = cl.machine().socket_shared(0).now_seconds();
        profiler.tick(phase, now).expect("sample");
    });

    let timeline = profiler.finish().expect("profiler stop");
    print!("{}", timeline.to_csv());
    println!();
    println!("# phase means:");
    println!("phase,gpu_power_mW,mem_read_Bps,mem_write_Bps,ib_recv_words_ps");
    for (phase, means) in timeline.phase_summary() {
        println!(
            "{phase},{:.0},{:.3e},{:.3e},{:.3e}",
            means[0], means[1], means[2], means[3]
        );
    }
    repro_bench::obsreport::write_artifacts("fig11");
}
