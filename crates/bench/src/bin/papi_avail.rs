//! `papi_avail`-style listing: component status and every native event
//! the running stack exposes, for either system.

use repro_bench::{node, Args, System};

fn main() {
    let args = Args::parse();
    let system = System::from_arg(&args.get_or("system", "summit"));
    let (_machine, setup) = node(system, 1);

    println!("PAPI component availability on {}:", system.name());
    println!("{:-<72}", "");
    for s in setup.papi.component_status() {
        match (&s.enabled, &s.reason) {
            (true, _) => println!("  {:<14} [enabled]", s.name),
            (false, Some(r)) => println!("  {:<14} [disabled: {r}]", s.name),
            _ => {}
        }
    }
    println!();
    println!("Native events:");
    println!("{:-<72}", "");
    for ev in setup.papi.list_all_events() {
        println!("  {:<78} ({})", ev.name, ev.units);
    }
}
