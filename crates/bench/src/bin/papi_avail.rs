//! `papi_avail`-style listing: component status and every native event
//! the running stack exposes, for either system.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("papi_avail")
}
