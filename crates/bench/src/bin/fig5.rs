//! Figure 5: the batched, capped GEMV — square (`M = N = P`) up to the
//! capping point at 1280, capped (`N = P = 1280`) beyond; PCP events on
//! Summit (`--system summit`, Fig. 5a) or perf_uncore on Tellico
//! (`--system tellico`, Fig. 5b).
//!
//! Expected shape: reads track `M·N + M + N` through the transition;
//! writes exceed the tiny `M` expectation until M reaches ~10⁴ (noise
//! floor), on both measurement paths.

use repro_bench::figures::{gemv_sweep, print_gemv_rows};
use repro_bench::{gemv_sizes, header, Args, System};

fn main() {
    let args = Args::parse();
    let system = System::from_arg(&args.get_or("system", "summit"));
    let sizes = gemv_sizes(args.flag("full"));
    let seed = args.get_u64("seed", 5);
    let threads = if system == System::Summit { 21 } else { 16 };
    header(
        "Fig. 5: batched, capped GEMV",
        &[
            ("system", system.name().into()),
            ("threads", threads.to_string()),
            (
                "cap (M=N=P transition)",
                repro_bench::figures::GEMV_CAP.to_string(),
            ),
            ("seed", seed.to_string()),
        ],
    );
    let rows = gemv_sweep(system, threads, &sizes, seed);
    print_gemv_rows(&rows);
    repro_bench::obsreport::write_artifacts("fig5");
}
