//! Figure 5: the batched, capped GEMV — square (`M = N = P`) up to the
//! capping point at 1280, capped (`N = P = 1280`) beyond; PCP events on
//! Summit (`--system summit`, Fig. 5a) or perf_uncore on Tellico
//! (`--system tellico`, Fig. 5b).
//!
//! Expected shape: reads track `M·N + M + N` through the transition;
//! writes exceed the tiny `M` expectation until M reaches ~10⁴ (noise
//! floor), on both measurement paths.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig5")
}
