//! Figure 7: memory traffic of S1CF loop nest 2 (strided reads of `tmp`,
//! sequential writes of `out`), without (7a) and with (7b)
//! `-fprefetch-loop-arrays`.
//!
//! Expected shape: one write per element throughout; reads rise from ~2
//! per element toward ~5 once N passes the Eq. 7 bound (~724 for a 5 MB
//! share and 8 ranks).

use fft3d::resort::{LocalDims, ResortTrace, S1cfNest2};
use repro_bench::figures::{measure_resort, print_resort_rows};
use repro_bench::{fft_sizes, header, Args};

fn main() {
    let args = Args::parse();
    let sizes = fft_sizes(args.flag("full"));
    let runs = args.get_usize("runs", 2);
    let seed = args.get_u64("seed", 7);
    let bound = fft3d::model::eq7_bound(p9_arch::L3_PER_CORE_BYTES, 8);
    for prefetch in [false, true] {
        header(
            &format!(
                "Fig. 7{}: S1CF loop nest 2, {} -fprefetch-loop-arrays",
                if prefetch { 'b' } else { 'a' },
                if prefetch { "with" } else { "without" }
            ),
            &[
                ("grid", "2x4".into()),
                ("runs", runs.to_string()),
                ("eq7 bound", bound.to_string()),
            ],
        );
        let rows: Vec<_> = sizes
            .iter()
            .map(|&n| {
                measure_resort(
                    &|m, n| {
                        Box::new(S1cfNest2::allocate(m, LocalDims::for_grid(n, 2, 4)))
                            as Box<dyn ResortTrace>
                    },
                    n,
                    prefetch,
                    runs,
                    seed,
                )
            })
            .collect();
        print_resort_rows(&rows);
        println!();
    }
    repro_bench::obsreport::write_artifacts("fig7");
}
