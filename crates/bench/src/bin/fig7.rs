//! Figure 7: memory traffic of S1CF loop nest 2 (strided reads of `tmp`,
//! sequential writes of `out`), without (7a) and with (7b)
//! `-fprefetch-loop-arrays`.
//!
//! Expected shape: one write per element throughout; reads rise from ~2
//! per element toward ~5 once N passes the Eq. 7 bound (~724 for a 5 MB
//! share and 8 ranks).

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig7")
}
