//! Live-monitoring smoke test: stand up the full observable stack —
//! networked PMCD, HTTP scrape sidecar, global metric registry — drive
//! traced fetch traffic through it, and watch it through the same
//! pipeline an operator would: two `/metrics` scrapes bracketing the
//! traffic, derived rates, canonical threshold rules, and (with
//! `--features obs`) the stitched cross-process trace artifact.
//!
//! Exits nonzero when anything a dashboard relies on is broken: a
//! scrape that fails strict parsing, a counter that moves backwards, a
//! fetch rate that stays at zero despite traffic, a canonical rule
//! firing on a healthy run, or a traced fetch whose critical-path
//! decomposition does not conserve the RTT. CI runs this as the
//! `obs-live` job and uploads `results/TRACE_live_monitor.json`.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::process::ExitCode;

use obs::metrics::{ExportSemantics, Exported};
use obs::openmetrics::{self, MetricKind, Value};
use p9_memsim::SimMachine;
use pcp_sim::{PmApi, Pmns};
use pcp_wire::{PmcdServer, ScrapeListener, WireClient, WireConfig};
use repro_bench::obsreport;

/// Traced fetch round-trips between the two scrapes.
const FETCHES: usize = 500;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("live_monitor: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    println!("# live monitor smoke test");
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 7);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let server =
        PmcdServer::bind_system("127.0.0.1:0", pmns.clone(), sockets, WireConfig::default())
            .map_err(|e| format!("bind pmcd server: {e}"))?;
    let scrape = ScrapeListener::bind("127.0.0.1:0", &server)
        .map_err(|e| format!("bind scrape listener: {e}"))?;
    println!("pmcd:   {}", server.local_addr());
    println!("scrape: http://{}/metrics", scrape.local_addr());

    let id = pmns
        .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
        .ok_or("nest metric missing from the PMNS")?;
    let client =
        WireClient::connect(server.local_addr()).map_err(|e| format!("connect client: {e}"))?;

    drop(obs::drain());
    let (t0, first) = scrape_once(scrape.local_addr())?;
    for _ in 0..FETCHES {
        client
            .pm_fetch(&[(id, pmns.instance_of_socket(0))])
            .map_err(|e| format!("fetch: {e}"))?;
    }
    let (t1, second) = scrape_once(scrape.local_addr())?;
    if t1 <= t0 {
        return Err(format!("scrape timestamps not increasing: {t0} -> {t1}"));
    }

    // The canonical rules (DESIGN.md §11) must stay silent on a healthy
    // run; the monitor watches the registry export, where their metric
    // names live unsanitized.
    let mut rules = obs::Monitor::new(4, obsreport::canonical_rules());
    rules.tick(t0, &obs::registry().export());
    rules.tick(t1, &obs::registry().export());
    if !rules.alerts().is_empty() {
        return Err(format!(
            "canonical rules fired on a healthy run: {:?}",
            rules.alerts()
        ));
    }

    // The scraped view: monotone counters, and a fetch rate that saw
    // our traffic.
    let mut monitor = obs::Monitor::new(4, Vec::new());
    monitor.tick(t0, &first);
    monitor.tick(t1, &second);
    for a in &first {
        if a.semantics != ExportSemantics::Counter {
            continue;
        }
        let b = second
            .iter()
            .find(|s| s.name == a.name)
            .ok_or_else(|| format!("counter {} vanished between scrapes", a.name))?;
        if b.value < a.value {
            return Err(format!(
                "counter {} went backwards: {} -> {}",
                a.name, a.value, b.value
            ));
        }
    }
    let derived = monitor.derived();
    let fetch_rate = derived
        .iter()
        .find(|(n, _)| n == "pmcd_fetch_count:rate")
        .map(|(_, r)| *r)
        .ok_or("no derived fetch rate")?;
    if fetch_rate <= 0.0 {
        return Err(format!("{FETCHES} fetches derived a rate of {fetch_rate}"));
    }
    println!(
        "scrapes:       2 ({} samples each, strictly parsed)",
        first.len()
    );
    println!("fetch rate:    {fetch_rate:.0}/s over the scrape window");
    println!("derived rates: {} (all counters monotone)", derived.len());
    println!("alerts:        0 (canonical rules silent)");

    // Stitched trace artifact for CI. With the obs feature the rings
    // hold both sides of every fetch; check conservation before writing.
    #[cfg(feature = "obs")]
    {
        let events = obs::drain();
        let ids = obs::stitch::trace_ids(&events);
        if ids.len() < FETCHES {
            return Err(format!("stitched {} of {FETCHES} fetches", ids.len()));
        }
        let mean = obs::stitch::mean_critical_path(&events).ok_or("no mean critical path")?;
        if mean.total() != mean.rtt_ns {
            return Err(format!("decomposition does not conserve RTT: {mean:?}"));
        }
        println!(
            "stitched:      {} round trips, mean RTT {} ns, components conserve exactly",
            ids.len(),
            mean.rtt_ns
        );
        let trace = obs::chrome::chrome_trace_json(&events);
        std::fs::create_dir_all("results").map_err(|e| format!("mkdir results: {e}"))?;
        std::fs::write("results/TRACE_live_monitor.json", &trace)
            .map_err(|e| format!("write trace: {e}"))?;
        obs::chrome::parse_chrome_trace(&trace).map_err(|e| format!("trace invalid: {e}"))?;
        println!(
            "trace:         results/TRACE_live_monitor.json ({} events)",
            events.len()
        );
    }
    #[cfg(not(feature = "obs"))]
    println!("trace:         (build with --features obs for the stitched artifact)");

    println!("PASS: live monitoring pipeline healthy");
    Ok(())
}

/// One HTTP scrape of our own sidecar, strict-parsed and flattened to
/// `(scrape_ts_ns, snapshot)` for the monitor.
fn scrape_once(addr: std::net::SocketAddr) -> Result<(u64, Vec<Exported>), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect scrape: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .map_err(|e| format!("send scrape: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read scrape: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("scrape response has no header/body split")?;
    if !head.starts_with("HTTP/1.1 200") {
        return Err(format!(
            "scrape refused: {}",
            head.lines().next().unwrap_or("")
        ));
    }
    let doc = openmetrics::parse(body).map_err(|e| format!("scrape document rejected: {e}"))?;
    let ts = doc
        .scrape_ts_ns
        .ok_or("scrape document lacks its timestamp")?;
    let mut snapshot = Vec::with_capacity(doc.samples.len());
    for s in doc.samples {
        let Value::Int(value) = s.value else {
            return Err(format!("non-integral serverside sample {}", s.name));
        };
        snapshot.push(Exported {
            name: s.name,
            value,
            semantics: match s.kind {
                MetricKind::Counter => ExportSemantics::Counter,
                MetricKind::Gauge => ExportSemantics::Instant,
            },
        });
    }
    Ok((ts, snapshot))
}
