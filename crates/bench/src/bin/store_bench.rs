//! Throughput and compression of the `papi-store` storage engine.
//!
//! Ingests a deterministic synthetic fleet — many counter series on a
//! fixed cadence with pseudo-random traffic deltas, the shape a PMCD
//! archiving loop produces — then reports:
//!
//! * single-threaded ingest throughput (samples/second, wall clock),
//! * compression ratio of the sealed tier (raw 16-byte samples over
//!   segment-file bytes),
//! * query latency over windowed selector reads (mean and worst),
//! * that retention/compaction preserves every surviving sample.
//!
//! The run fails if ingest drops below 1,000,000 samples/s
//! single-threaded or the sealed tier fails to compress at all — either
//! would make whole-run archives more expensive than the raw logs they
//! replace. Like `wire_bench` this measures wall-clock behaviour, so it
//! is not part of the deterministic `repro` catalog.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use obs::metrics::ExportSemantics;
use store::{Selector, SeriesKey, Store, StoreConfig};

const SERIES: usize = 16;
const SAMPLES_PER_SERIES: u64 = 250_000;
const CADENCE_NS: u64 = 1_000_000; // 1 kHz fleet sampling
const QUERIES: usize = 200;
const MIN_INGEST_SAMPLES_PER_S: f64 = 1_000_000.0;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("store_bench: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Deterministic per-sample traffic delta (multiplicative-hash mix), so
/// values are counter-shaped but not trivially constant.
fn traffic_delta(series: u64, i: u64) -> u64 {
    (series + 1)
        .wrapping_mul(i.wrapping_mul(2654435761))
        .wrapping_shr(16)
        % 4096
}

fn run() -> Result<(), String> {
    let store = Store::new(StoreConfig::default());
    let keys: Vec<SeriesKey> = (0..SERIES)
        .map(|s| {
            SeriesKey::new(format!("mba.ch{}.bytes", s % 8)).with_label("host", format!("h{s}"))
        })
        .collect();

    // --- Ingest phase: one writer, fleet-interleaved like a sampling
    // scheduler (every series advances each tick).
    let total = SERIES as u64 * SAMPLES_PER_SERIES;
    let mut values = [0u64; SERIES];
    let t0 = Instant::now();
    for i in 0..SAMPLES_PER_SERIES {
        let t_ns = (i + 1) * CADENCE_NS;
        for (s, key) in keys.iter().enumerate() {
            values[s] += traffic_delta(s as u64, i);
            store
                .ingest(key, ExportSemantics::Counter, t_ns, values[s])
                .map_err(|e| format!("ingest: {e}"))?;
        }
    }
    let ingest_elapsed = t0.elapsed();
    store.flush().map_err(|e| format!("flush: {e}"))?;
    let ingest_sps = total as f64 / ingest_elapsed.as_secs_f64();

    let stats = store.stats();
    if stats.samples != total {
        return Err(format!(
            "retained {} of {total} ingested samples",
            stats.samples
        ));
    }
    let ratio = store
        .compression_ratio()
        .ok_or("no sealed segments after flush")?;

    println!("store_bench: {SERIES} series x {SAMPLES_PER_SERIES} samples ({total} total)");
    println!(
        "  ingest: {:.3} s single-threaded, {:.0} samples/s",
        ingest_elapsed.as_secs_f64(),
        ingest_sps
    );
    println!(
        "  sealed tier: {} segments, {} compressed bytes, {ratio:.1}x over raw 16 B/sample",
        stats.segments_flushed, stats.compressed_bytes
    );

    // --- Query phase: windowed selector reads across the whole span.
    let span_ns = SAMPLES_PER_SERIES * CADENCE_NS;
    let mut worst = Duration::ZERO;
    let mut sum = Duration::ZERO;
    let mut rows = 0usize;
    for q in 0..QUERIES {
        let from = (q as u64 * 37 % 100) * span_ns / 100;
        let to = from + span_ns / 10;
        let sel = Selector::metric("mba.*").with_label("host", format!("h{}", q % SERIES));
        let t = Instant::now();
        let hit = store
            .query(&sel, from, to)
            .map_err(|e| format!("query: {e}"))?;
        let d = t.elapsed();
        rows += hit.iter().map(|s| s.samples.len()).sum::<usize>();
        sum += d;
        worst = worst.max(d);
    }
    let mean_us = sum.as_secs_f64() * 1e6 / QUERIES as f64;
    println!(
        "  query: {QUERIES} windowed reads, mean {mean_us:.0} us, worst {:.0} us, {rows} rows",
        worst.as_secs_f64() * 1e6
    );

    // --- Compaction phase: merge chunks, keep everything (no retention
    // configured), and prove the data survived.
    let t = Instant::now();
    let compact = store
        .compact(span_ns + 1)
        .map_err(|e| format!("compact: {e}"))?;
    let compact_s = t.elapsed().as_secs_f64();
    let after = store.sample_count();
    if after != total {
        return Err(format!("compaction lost samples: {after} of {total}"));
    }
    println!(
        "  compact: {} -> {} segments, {} chunks rewritten, {compact_s:.3} s, all {total} samples intact",
        compact.segments_before, compact.segments_after, compact.chunks_rewritten
    );

    write_bench_store(ingest_sps, ratio, mean_us, worst, &stats, &compact);

    if ingest_sps < MIN_INGEST_SAMPLES_PER_S {
        return Err(format!(
            "ingest {ingest_sps:.0} samples/s below the {MIN_INGEST_SAMPLES_PER_S} floor"
        ));
    }
    if ratio <= 1.0 {
        return Err(format!("compression ratio {ratio:.2} does not beat raw"));
    }
    println!("PASS: >= {MIN_INGEST_SAMPLES_PER_S} samples/s ingest, {ratio:.1}x compression");

    repro_bench::obsreport::write_artifacts("store_bench");
    Ok(())
}

/// Emit `results/BENCH_store.json`. Hand-rolled JSON — the workspace
/// has no serde.
fn write_bench_store(
    ingest_sps: f64,
    ratio: f64,
    query_mean_us: f64,
    query_worst: Duration,
    stats: &store::StoreStats,
    compact: &store::CompactStats,
) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"series\": {SERIES},\n"));
    json.push_str(&format!(
        "  \"samples_per_series\": {SAMPLES_PER_SERIES},\n"
    ));
    json.push_str(&format!(
        "  \"total_samples\": {},\n",
        SERIES as u64 * SAMPLES_PER_SERIES
    ));
    json.push_str(&format!("  \"ingest_samples_per_s\": {:.0},\n", ingest_sps));
    json.push_str(&format!("  \"compression_ratio\": {ratio:.2},\n"));
    json.push_str(&format!(
        "  \"compressed_bytes\": {},\n",
        stats.compressed_bytes
    ));
    json.push_str(&format!("  \"chunks_sealed\": {},\n", stats.chunks_sealed));
    json.push_str(&format!(
        "  \"segments_flushed\": {},\n",
        stats.segments_flushed
    ));
    json.push_str(&format!("  \"queries\": {QUERIES},\n"));
    json.push_str(&format!("  \"query_mean_us\": {query_mean_us:.1},\n"));
    json.push_str(&format!(
        "  \"query_worst_us\": {:.1},\n",
        query_worst.as_secs_f64() * 1e6
    ));
    json.push_str(&format!(
        "  \"compact_segments_before\": {},\n",
        compact.segments_before
    ));
    json.push_str(&format!(
        "  \"compact_segments_after\": {},\n",
        compact.segments_after
    ));
    json.push_str(&format!(
        "  \"compact_chunks_rewritten\": {}\n",
        compact.chunks_rewritten
    ));
    json.push_str("}\n");
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/BENCH_store.json", &json).is_ok()
    {
        println!("  wrote results/BENCH_store.json");
    }
}
