//! Figure 10: S1CF vs. S2CF at scale — 16 nodes, 4×8 virtual processor
//! grid, N ∈ {1344, 2016}, no `-fprefetch-loop-arrays`.
//!
//! Expected shape: S1CF moves ~2 reads per write, S2CF ~1 read per write,
//! and S2CF achieves the higher bandwidth thanks to the locality of its
//! access pattern.

use fft3d::resort::{LocalDims, ResortTrace, S1cfCombined, S2cf};
use repro_bench::{header, node, Args, System};

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 10);
    let (r, c) = (4usize, 8usize);
    let sizes: Vec<usize> = if args.flag("full") {
        vec![1344, 2016]
    } else {
        // 1344 runs in seconds; 2016 is the paper's larger size.
        vec![672, 1344]
    };

    header(
        "Fig. 10: S1CF vs S2CF bandwidth, 16 nodes, 4x8 grid",
        &[
            ("grid", format!("{r}x{c}")),
            ("sizes", format!("{sizes:?}")),
            ("seed", seed.to_string()),
        ],
    );
    println!("routine,n,read_bytes,write_bytes,seconds,bandwidth_GBps,reads_per_write");

    for &n in &sizes {
        for routine in ["S1CF", "S2CF"] {
            let (mut machine, _setup) = node(System::Summit, seed);
            let active = machine.arch().node.sockets[0].usable_cores;
            let trace: Box<dyn ResortTrace> = match routine {
                "S1CF" => Box::new(S1cfCombined::allocate(
                    &mut machine,
                    LocalDims::for_grid(n, r, c),
                )),
                _ => Box::new(S2cf::for_grid(&mut machine, n, r, c)),
            };
            let shared = machine.socket_shared(0);
            let before = shared.counters().snapshot();
            let t0 = shared.now_seconds();
            machine.run_parallel(0, active, |tid, core| {
                if tid == 0 {
                    trace.run(core);
                }
            });
            let d = shared.counters().snapshot().delta(&before);
            let dt = shared.now_seconds() - t0;
            let moved = (d.total_read() + d.total_write()) as f64;
            println!(
                "{routine},{n},{},{},{:.6},{:.3},{:.3}",
                d.total_read(),
                d.total_write(),
                dt,
                moved / dt / 1e9,
                d.total_read() as f64 / d.total_write().max(1) as f64,
            );
        }
    }
    repro_bench::obsreport::write_artifacts("fig10");
}
