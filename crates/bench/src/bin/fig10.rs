//! Figure 10: S1CF vs. S2CF at scale — 16 nodes, 4×8 virtual processor
//! grid, N ∈ {1344, 2016}, no `-fprefetch-loop-arrays`.
//!
//! Expected shape: S1CF moves ~2 reads per write, S2CF ~1 read per write,
//! and S2CF achieves the higher bandwidth thanks to the locality of its
//! access pattern.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig10")
}
