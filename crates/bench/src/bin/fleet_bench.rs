//! Fleet federation at scale: 256 simulated hosts behind one
//! aggregator, with concurrent HTTP scrape clients on the fleet-wide
//! `/metrics` endpoint.
//!
//! Measures:
//!
//! * scrape fan-out latency per host (p50/p99, from the aggregator's
//!   own `fleet.scrape.latency_ns` histogram),
//! * merged-series count of the federated document,
//! * aggregate store ingest rate (samples/second across passes),
//! * HTTP serving under concurrent scrapers of the merged document,
//!
//! then runs the deterministic fault drill: kill exactly one host
//! mid-run and require exactly that host's staleness alert (and no
//! other) on the next pass.
//!
//! Wall-clock measurements, so not part of the deterministic `repro`
//! catalog; the floors below are deliberately loose CI tripwires, not
//! performance claims.

use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use fleet::{host_name, Aggregator, AggregatorConfig, Fleet};

const HOSTS: usize = 256;
const PASSES: u64 = 4;
const WORKERS: usize = 32;
const SEED: u64 = 0x000F_1EE7_BE11;
const HTTP_CLIENTS: usize = 8;
const HTTP_GETS_PER_CLIENT: usize = 16;
const SEC: u64 = 1_000_000_000;

/// Floors: a 256-host pass must finish well under the scrape timeout,
/// and the store must keep up with the federated sample stream.
const MAX_P99_NS: u64 = 2_000_000_000;
const MIN_SAMPLES_PER_S: f64 = 5_000.0;

/// Tracing-cost gates: opening and dropping a span must stay cheap
/// enough to leave on everywhere, and a traced scrape phase must finish
/// within 5% of an equally-shaped untraced phase (plus an absolute
/// allowance for scheduler noise on loaded CI machines). Both phases
/// run without concurrent HTTP load so the comparison isolates the
/// tracing cost; the per-host histogram quantiles are NOT used for the
/// comparison because its buckets are powers of two (a bucketed p99 can
/// only move in 2x jumps, which would make a 5% bound meaningless).
const MAX_NS_PER_SPAN: f64 = 50.0;
const TRACED_WALL_SLACK: Duration = Duration::from_millis(200);

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleet_bench: {e}");
            ExitCode::FAILURE
        }
    }
}

fn http_get_metrics(addr: std::net::SocketAddr) -> Result<usize, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("write: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&response);
    if !text.starts_with("HTTP/1.1 200 OK\r\n") {
        return Err(format!(
            "bad status: {}",
            text.lines().next().unwrap_or("<empty>")
        ));
    }
    Ok(response.len())
}

/// Time raw span open/drop cost: batches of guards, with an untimed
/// drain between batches so the rings never saturate into drop-counting
/// (which would make spans look cheaper than they are). Returns
/// `(best_batch, mean)` ns/span; the gate uses the best batch — the
/// minimum is the cost of the span machinery itself, while the mean
/// also absorbs whatever interrupts landed inside timed batches. Run
/// this before the fleet spawns, or 256 host threads' scheduler churn
/// pollutes the measurement.
fn measure_span_overhead() -> (f64, f64) {
    const BATCHES: usize = 64;
    const PER_BATCH: usize = 2_048;
    let mut best = f64::MAX;
    let mut total = 0.0f64;
    for _ in 0..BATCHES {
        let t = Instant::now();
        for i in 0..PER_BATCH {
            let _span = obs::span!("bench.span.overhead", i as u64); // obs-ok: the measurement itself
        }
        let ns = t.elapsed().as_nanos() as f64 / PER_BATCH as f64;
        best = best.min(ns);
        total += ns;
        let _ = obs::trace::drain();
    }
    (best, total / BATCHES as f64)
}

/// Total wall time of `PASSES` scrape passes over `fleet` with tracing
/// on (`traced`) or off, after one untimed warm-up pass, with no
/// concurrent HTTP load. The two phases are shaped identically so
/// their walls compare the cost of always-on tracing and nothing else.
fn fleet_pass_wall(fleet: &Fleet, traced: bool) -> Result<Duration, String> {
    let tag = if traced { "traced" } else { "untraced" };
    let mut agg = Aggregator::new(
        fleet,
        AggregatorConfig {
            workers: WORKERS,
            debug_passes: if traced {
                AggregatorConfig::default().debug_passes
            } else {
                0
            },
            ..AggregatorConfig::default()
        },
    );
    let mut wall = Duration::ZERO;
    for pass in 0..=PASSES {
        fleet.tick_traffic(pass + 1);
        let t = Instant::now();
        let report = agg.scrape_pass((pass + 1) * SEC);
        let elapsed = t.elapsed();
        if pass > 0 {
            // Pass 0 is the warm-up: connections and allocator caches.
            wall += elapsed;
        }
        if report.scraped != HOSTS {
            return Err(format!(
                "{tag} pass {pass}: scraped {} of {HOSTS}",
                report.scraped
            ));
        }
        if report.trace.is_some() != traced {
            return Err(format!(
                "{tag} pass {pass}: trace presence {} does not match mode",
                report.trace.is_some()
            ));
        }
    }
    Ok(wall)
}

fn run() -> Result<(), String> {
    // Span cost first, on a quiet process: once the 256 host threads
    // are up, scheduler churn would be measured instead of the tracer.
    let (ns_per_span, ns_per_span_mean) = measure_span_overhead();
    println!(
        "fleet_bench: span overhead {ns_per_span:.1} ns/span \
         (best batch; mean {ns_per_span_mean:.1}) — open + drop + ring push"
    );

    println!("  spawning {HOSTS} hosts (seed {SEED:#x})");
    let t0 = Instant::now();
    let mut fleet = Fleet::spawn(HOSTS, SEED).map_err(|e| format!("spawn: {e}"))?;
    let spawn_s = t0.elapsed().as_secs_f64();
    println!(
        "  spawned in {spawn_s:.2} s ({} PMCDs on loopback)",
        fleet.len()
    );

    // Untraced-vs-traced cost comparison over identically-shaped,
    // HTTP-free phases (continuous wall times, not bucketed quantiles).
    // Interleaved rounds with a per-mode minimum: scrape walls on a
    // loopback fleet are scheduler-noisy, and the minimum of each mode
    // is the clean estimate of what that mode costs.
    let mut untraced_wall = Duration::MAX;
    let mut traced_wall = Duration::MAX;
    for round in 0..2 {
        let u = fleet_pass_wall(&fleet, false)?;
        let t = fleet_pass_wall(&fleet, true)?;
        println!(
            "  tracing cost round {round}: untraced {:.3} s, traced {:.3} s",
            u.as_secs_f64(),
            t.as_secs_f64()
        );
        untraced_wall = untraced_wall.min(u);
        traced_wall = traced_wall.min(t);
    }
    println!(
        "  tracing cost: untraced {:.3} s vs traced {:.3} s over {PASSES} passes ({:+.1}%)",
        untraced_wall.as_secs_f64(),
        traced_wall.as_secs_f64(),
        (traced_wall.as_secs_f64() / untraced_wall.as_secs_f64() - 1.0) * 100.0
    );

    let mut agg = Aggregator::new(
        &fleet,
        AggregatorConfig {
            workers: WORKERS,
            ..AggregatorConfig::default()
        },
    );
    let http_addr = agg
        .serve_http("127.0.0.1:0")
        .map_err(|e| format!("serve_http: {e}"))?;

    // --- clean passes, with HTTP scrapers hammering the fleet endpoint
    // concurrently.
    let http_ok = AtomicU64::new(0);
    let http_bytes = AtomicU64::new(0);
    let mut merged_series = 0usize;
    let mut samples_ingested = 0u64;
    let mut pass_wall = Duration::ZERO;
    std::thread::scope(|scope| -> Result<(), String> {
        let http_ok = &http_ok;
        let http_bytes = &http_bytes;
        let clients: Vec<_> = (0..HTTP_CLIENTS)
            .map(|_| {
                scope.spawn(move || {
                    for _ in 0..HTTP_GETS_PER_CLIENT {
                        if let Ok(n) = http_get_metrics(http_addr) {
                            // relaxed-ok: independent tallies, read after join
                            http_ok.fetch_add(1, Ordering::Relaxed);
                            // relaxed-ok: independent tallies, read after join
                            http_bytes.fetch_add(n as u64, Ordering::Relaxed);
                        }
                        // Pace the scrapers across the pass loop so most
                        // requests hit a published (non-placeholder) doc.
                        std::thread::sleep(Duration::from_millis(50));
                    }
                })
            })
            .collect();
        for pass in 1..=PASSES {
            fleet.tick_traffic(pass);
            let t = Instant::now();
            let report = agg.scrape_pass(pass * SEC);
            pass_wall += t.elapsed();
            if report.scraped != HOSTS {
                return Err(format!(
                    "pass {pass}: scraped {} of {HOSTS} (stale: {:?})",
                    report.scraped, report.stale
                ));
            }
            if !report.alerts.is_empty() {
                return Err(format!(
                    "pass {pass}: clean fleet alerted: {:?}",
                    report.alerts
                ));
            }
            merged_series = report.merged_series;
            samples_ingested += report.samples_ingested;
        }
        for c in clients {
            let _ = c.join();
        }
        Ok(())
    })?;
    let samples_per_s = samples_ingested as f64 / pass_wall.as_secs_f64();
    // relaxed-ok: clients joined above; these are final values
    let http_ok = http_ok.load(Ordering::Relaxed);
    // relaxed-ok: clients joined above; these are final values
    let http_bytes = http_bytes.load(Ordering::Relaxed);

    // Per-host scrape latency quantiles from the aggregator's own
    // histogram (flattened by the registry export).
    let snap = obs::Snapshot::take(agg.registry(), PASSES * SEC);
    let quantile = |suffix: &str| -> u64 {
        snap.scalars
            .iter()
            .find(|e| e.name == format!("fleet.scrape.latency_ns.{suffix}"))
            .map(|e| e.value)
            .unwrap_or(0)
    };
    let (p50_ns, p99_ns, max_ns) = (quantile("p50"), quantile("p99"), quantile("max"));
    // Straggler chain quantiles across the traced passes, from the
    // stitched fan-out traces via `fleet.pass.straggler_ns`.
    let straggler_of = |suffix: &str| -> u64 {
        snap.scalars
            .iter()
            .find(|e| e.name == format!("fleet.pass.straggler_ns.{suffix}"))
            .map(|e| e.value)
            .unwrap_or(0)
    };
    let (straggler_p50_ns, straggler_p99_ns) = (straggler_of("p50"), straggler_of("p99"));

    println!(
        "  {PASSES} passes x {HOSTS} hosts, {WORKERS} workers: {:.2} s total pass wall",
        pass_wall.as_secs_f64()
    );
    println!(
        "  scrape fan-out latency: p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
        p50_ns as f64 / 1e6,
        p99_ns as f64 / 1e6,
        max_ns as f64 / 1e6
    );
    println!(
        "  straggler chain: p50 {:.2} ms, p99 {:.2} ms",
        straggler_p50_ns as f64 / 1e6,
        straggler_p99_ns as f64 / 1e6
    );
    println!("  merged document: {merged_series} series/pass");
    println!("  store ingest: {samples_ingested} samples, {samples_per_s:.0} samples/s");
    println!(
        "  http: {http_ok}/{} concurrent scrapes ok, {:.1} MiB served",
        HTTP_CLIENTS * HTTP_GETS_PER_CLIENT,
        http_bytes as f64 / (1024.0 * 1024.0)
    );

    // --- fault drill: kill exactly one host, require exactly its alert.
    let victim = HOSTS / 2;
    fleet.kill_host(victim);
    fleet.tick_traffic(PASSES + 1);
    let fault = agg.scrape_pass((PASSES + 1) * SEC);
    if fault.stale != vec![host_name(victim)] {
        return Err(format!(
            "fault drill: expected only {} stale, got {:?}",
            host_name(victim),
            fault.stale
        ));
    }
    let stale_metric = format!("fleet.host.stale.{}", host_name(victim));
    if fault.alerts.len() != 1
        || fault.alerts[0].rule != "alert.fleet.host_stale"
        || fault.alerts[0].metric != stale_metric
    {
        return Err(format!(
            "fault drill: expected exactly one alert on {stale_metric}, got {:?}",
            fault.alerts
        ));
    }
    println!(
        "  fault drill: killed {}, exactly its staleness alert fired ({} hosts still scraped)",
        host_name(victim),
        fault.scraped
    );

    write_bench_fleet(
        spawn_s,
        &pass_wall,
        p50_ns,
        p99_ns,
        max_ns,
        merged_series,
        samples_ingested,
        samples_per_s,
        http_ok,
        http_bytes,
        straggler_p50_ns,
        straggler_p99_ns,
        ns_per_span,
        &untraced_wall,
        &traced_wall,
    );

    if http_ok == 0 {
        return Err("no concurrent HTTP scrape succeeded".into());
    }
    if p99_ns > MAX_P99_NS {
        return Err(format!(
            "scrape p99 {p99_ns} ns above the {MAX_P99_NS} ns floor"
        ));
    }
    if samples_per_s < MIN_SAMPLES_PER_S {
        return Err(format!(
            "ingest {samples_per_s:.0} samples/s below the {MIN_SAMPLES_PER_S} floor"
        ));
    }
    if ns_per_span > MAX_NS_PER_SPAN {
        return Err(format!(
            "span overhead {ns_per_span:.1} ns/span above the {MAX_NS_PER_SPAN} ns ceiling"
        ));
    }
    let traced_ceiling = untraced_wall + untraced_wall / 20 + TRACED_WALL_SLACK;
    if traced_wall > traced_ceiling {
        return Err(format!(
            "traced pass wall {:.3} s above untraced {:.3} s + 5% + {:.1} s slack",
            traced_wall.as_secs_f64(),
            untraced_wall.as_secs_f64(),
            TRACED_WALL_SLACK.as_secs_f64()
        ));
    }
    if straggler_p99_ns == 0 {
        return Err("no straggler chains recorded by the traced passes".into());
    }
    println!(
        "PASS: p99 <= {MAX_P99_NS} ns, >= {MIN_SAMPLES_PER_S} samples/s, \
         {ns_per_span:.1} ns/span <= {MAX_NS_PER_SPAN}, traced wall within 5% of untraced, \
         fault drill exact"
    );

    repro_bench::obsreport::write_artifacts("fleet_bench");
    Ok(())
}

/// Emit `results/BENCH_fleet.json`. Hand-rolled JSON — the workspace
/// has no serde.
#[allow(clippy::too_many_arguments)]
fn write_bench_fleet(
    spawn_s: f64,
    pass_wall: &Duration,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    merged_series: usize,
    samples_ingested: u64,
    samples_per_s: f64,
    http_ok: u64,
    http_bytes: u64,
    straggler_p50_ns: u64,
    straggler_p99_ns: u64,
    ns_per_span: f64,
    untraced_wall: &Duration,
    traced_wall: &Duration,
) {
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"hosts\": {HOSTS},\n"));
    json.push_str(&format!("  \"passes\": {PASSES},\n"));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"spawn_s\": {spawn_s:.3},\n"));
    json.push_str(&format!(
        "  \"pass_wall_s\": {:.3},\n",
        pass_wall.as_secs_f64()
    ));
    json.push_str(&format!("  \"scrape_p50_ns\": {p50_ns},\n"));
    json.push_str(&format!("  \"scrape_p99_ns\": {p99_ns},\n"));
    json.push_str(&format!("  \"scrape_max_ns\": {max_ns},\n"));
    json.push_str(&format!("  \"merged_series\": {merged_series},\n"));
    json.push_str(&format!("  \"samples_ingested\": {samples_ingested},\n"));
    json.push_str(&format!("  \"samples_per_s\": {samples_per_s:.0},\n"));
    json.push_str(&format!(
        "  \"http_requests\": {},\n",
        HTTP_CLIENTS * HTTP_GETS_PER_CLIENT
    ));
    json.push_str(&format!("  \"http_requests_ok\": {http_ok},\n"));
    json.push_str(&format!("  \"http_bytes\": {http_bytes},\n"));
    json.push_str(&format!("  \"straggler_p50_ns\": {straggler_p50_ns},\n"));
    json.push_str(&format!("  \"straggler_p99_ns\": {straggler_p99_ns},\n"));
    json.push_str(&format!("  \"span_overhead_ns\": {ns_per_span:.1},\n"));
    json.push_str(&format!(
        "  \"untraced_pass_wall_s\": {:.3},\n",
        untraced_wall.as_secs_f64()
    ));
    json.push_str(&format!(
        "  \"traced_pass_wall_s\": {:.3}\n",
        traced_wall.as_secs_f64()
    ));
    json.push_str("}\n");
    if std::fs::create_dir_all("results").is_ok()
        && std::fs::write("results/BENCH_fleet.json", &json).is_ok()
    {
        println!("  wrote results/BENCH_fleet.json");
    }
}
