//! Figure 3: GEMM with the adaptive repetition scheme (Eq. 5), PCP events
//! on Summit. `--mode single` (Fig. 3a) vs `--mode batched` (Fig. 3b,
//! one GEMM per usable core).
//!
//! Expected shape: repetition averaging removes the noise floor; the
//! single-threaded kernel still drifts above the expectation with size and
//! shows NO jump at N≈809 (L3 slice borrowing gives it 110 MB), while the
//! batched kernel matches the expectation and jumps once each core's 5 MB
//! share is exceeded.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig3")
}
