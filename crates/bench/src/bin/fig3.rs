//! Figure 3: GEMM with the adaptive repetition scheme (Eq. 5), PCP events
//! on Summit. `--mode single` (Fig. 3a) vs `--mode batched` (Fig. 3b,
//! one GEMM per usable core).
//!
//! Expected shape: repetition averaging removes the noise floor; the
//! single-threaded kernel still drifts above the expectation with size and
//! shows NO jump at N≈809 (L3 slice borrowing gives it 110 MB), while the
//! batched kernel matches the expectation and jumps once each core's 5 MB
//! share is exceeded.

use repro_bench::figures::{gemm_sweep, print_gemm_rows};
use repro_bench::{gemm_sizes, header, Args, System};

fn main() {
    let args = Args::parse();
    let mode = args.get_or("mode", "both");
    let sizes = gemm_sizes(args.flag("full"));
    let seed = args.get_u64("seed", 3);
    let mut runs: Vec<(&str, usize)> = Vec::new();
    if mode == "single" || mode == "both" {
        runs.push(("single", 1));
    }
    if mode == "batched" || mode == "both" {
        runs.push(("batched", 21));
    }
    for (label, threads) in runs {
        header(
            &format!("Fig. 3 ({label}): GEMM, adaptive repetitions (Eq. 5), PCP"),
            &[("threads", threads.to_string()), ("seed", seed.to_string())],
        );
        let rows = gemm_sweep(
            System::Summit,
            threads,
            &sizes,
            blas_kernels::repetitions,
            seed,
        );
        let bounds = blas_kernels::gemm_cache_bounds(p9_arch::L3_PER_CORE_BYTES);
        print_gemm_rows(&rows, bounds);
        println!();
    }
    repro_bench::obsreport::write_artifacts("fig3");
}
