//! Diagnostics-plane artifact producer: run a small traced fleet, pull
//! the `/debug/*` endpoints over real HTTP, verify conservation on the
//! stitched traces, and save the artifacts CI uploads:
//!
//! * `results/TRACE_fleet_pass.json` — Chrome-trace JSON of the
//!   retained passes (load into `chrome://tracing` / Perfetto; one pid
//!   lane per host);
//! * `results/fleet_passes.txt` — the `/debug/passes` table with
//!   per-pass straggler attribution and skew.
//!
//! Exits nonzero when any endpoint misbehaves or any pass fails
//! conservation, so the CI job doubles as an end-to-end check.

use std::io::{Read, Write};
use std::process::ExitCode;
use std::time::Duration;

use fleet::{Aggregator, AggregatorConfig, Fleet};

const HOSTS: usize = 16;
const PASSES: u64 = 3;
const SEED: u64 = 0x7E11_C0DE;
const SEC: u64 = 1_000_000_000;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fleet_trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn http_get(addr: std::net::SocketAddr, target: &str) -> Result<String, String> {
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    stream
        .write_all(
            format!("GET {target} HTTP/1.1\r\nHost: fleet\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("write: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    if !response.starts_with("HTTP/1.1 200 OK\r\n") {
        return Err(format!(
            "GET {target}: {}",
            response.lines().next().unwrap_or("<empty>")
        ));
    }
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .ok_or_else(|| format!("GET {target}: no body"))
}

fn run() -> Result<(), String> {
    let fleet = Fleet::spawn(HOSTS, SEED).map_err(|e| format!("spawn: {e}"))?;
    let mut agg = Aggregator::new(
        &fleet,
        AggregatorConfig {
            workers: 8,
            ..AggregatorConfig::default()
        },
    );
    let addr = agg
        .serve_http("127.0.0.1:0")
        .map_err(|e| format!("serve_http: {e}"))?;

    for pass in 1..=PASSES {
        fleet.tick_traffic(pass);
        let report = agg.scrape_pass(pass * SEC);
        if report.scraped != HOSTS {
            return Err(format!(
                "pass {pass}: scraped {} of {HOSTS} (stale: {:?})",
                report.scraped, report.stale
            ));
        }
        let trace = report
            .trace
            .as_ref()
            .ok_or_else(|| format!("pass {pass}: no stitched trace"))?;
        // Conservation, end to end over the real wire: phases sum to
        // the measured wall, components sum to each host chain.
        if trace.total() != trace.wall_ns {
            return Err(format!(
                "pass {pass}: phases sum {} != wall {}",
                trace.total(),
                trace.wall_ns
            ));
        }
        if trace.hosts.len() != HOSTS {
            return Err(format!(
                "pass {pass}: {} host chains of {HOSTS}",
                trace.hosts.len()
            ));
        }
        for h in &trace.hosts {
            let parts: u64 = h.components.iter().map(|(_, v)| v).sum();
            if parts != h.chain_ns {
                return Err(format!(
                    "pass {pass} host {}: components {} != chain {}",
                    h.host_index, parts, h.chain_ns
                ));
            }
        }
        let straggler = trace
            .straggler_share()
            .ok_or_else(|| format!("pass {pass}: no straggler"))?;
        println!(
            "pass {}: wall {:.3} ms, straggler host {:04} ({:.3} ms chain, skew {}/1000)",
            report.pass_id,
            trace.wall_ns as f64 / 1e6,
            straggler.host_index,
            straggler.chain_ns as f64 / 1e6,
            trace.skew_ratio_permille()
        );
    }

    let trace_json = http_get(addr, "/debug/trace")?;
    let parsed = obs::chrome::parse_chrome_trace(&trace_json)
        .map_err(|e| format!("/debug/trace is not valid chrome JSON: {e}"))?;
    let pids: std::collections::BTreeSet<u64> = parsed.iter().map(|e| e.pid).collect();
    if pids.len() < HOSTS {
        return Err(format!(
            "/debug/trace: {} pid lanes, want >= {HOSTS} (one per host)",
            pids.len()
        ));
    }
    let passes_txt = http_get(addr, "/debug/passes")?;
    if !passes_txt.contains("straggler host") {
        return Err("/debug/passes has no straggler attribution".into());
    }

    std::fs::create_dir_all("results").map_err(|e| format!("mkdir results: {e}"))?;
    std::fs::write("results/TRACE_fleet_pass.json", &trace_json)
        .map_err(|e| format!("write trace: {e}"))?;
    std::fs::write("results/fleet_passes.txt", &passes_txt)
        .map_err(|e| format!("write passes: {e}"))?;
    println!(
        "wrote results/TRACE_fleet_pass.json ({} events) and results/fleet_passes.txt ({} lines)",
        parsed.len(),
        passes_txt.lines().count()
    );
    println!("PASS: {PASSES} passes traced, conservation exact, endpoints live");
    Ok(())
}
