//! Figure 6: memory traffic of S1CF loop nest 1 (sequential copy
//! `in → tmp`), 2×4 grid, min/max over runs; without (Fig. 6a) and with
//! (Fig. 6b) `-fprefetch-loop-arrays`.
//!
//! Expected shape: one read + one write per element without the flag
//! (stores bypass the cache); `dcbtst` adds a second read (of `tmp`).

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig6")
}
