//! Figure 6: memory traffic of S1CF loop nest 1 (sequential copy
//! `in → tmp`), 2×4 grid, min/max over runs; without (Fig. 6a) and with
//! (Fig. 6b) `-fprefetch-loop-arrays`.
//!
//! Expected shape: one read + one write per element without the flag
//! (stores bypass the cache); `dcbtst` adds a second read (of `tmp`).

use fft3d::resort::{LocalDims, ResortTrace, S1cfNest1};
use repro_bench::figures::{measure_resort, print_resort_rows};
use repro_bench::{fft_sizes, header, Args};

fn main() {
    let args = Args::parse();
    let sizes = fft_sizes(args.flag("full"));
    let runs = args.get_usize("runs", 2);
    let seed = args.get_u64("seed", 6);
    for prefetch in [false, true] {
        header(
            &format!(
                "Fig. 6{}: S1CF loop nest 1, {} -fprefetch-loop-arrays",
                if prefetch { 'b' } else { 'a' },
                if prefetch { "with" } else { "without" }
            ),
            &[("grid", "2x4".into()), ("runs", runs.to_string())],
        );
        let rows: Vec<_> = sizes
            .iter()
            .map(|&n| {
                measure_resort(
                    &|m, n| {
                        Box::new(S1cfNest1::allocate(m, LocalDims::for_grid(n, 2, 4)))
                            as Box<dyn ResortTrace>
                    },
                    n,
                    prefetch,
                    runs,
                    seed,
                )
            })
            .collect();
        print_resort_rows(&rows);
        println!();
    }
    repro_bench::obsreport::write_artifacts("fig6");
}
