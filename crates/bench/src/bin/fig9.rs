//! Figure 9: S2CF (the post-exchange peer merge), without (9a) and with
//! (9b) `-fprefetch-loop-arrays`.
//!
//! Expected shape: the innermost traversal dimension matches the
//! innermost storage dimension, so the stride is amortized: one read and
//! one write per element; `dcbtst` adds the extra read of `out`.

use fft3d::resort::{ResortTrace, S2cf};
use repro_bench::figures::{measure_resort, print_resort_rows};
use repro_bench::{fft_sizes, header, Args};

fn main() {
    let args = Args::parse();
    let sizes = fft_sizes(args.flag("full"));
    let runs = args.get_usize("runs", 2);
    let seed = args.get_u64("seed", 9);
    for prefetch in [false, true] {
        header(
            &format!(
                "Fig. 9{}: S2CF, {} -fprefetch-loop-arrays",
                if prefetch { 'b' } else { 'a' },
                if prefetch { "with" } else { "without" }
            ),
            &[("grid", "2x4".into()), ("runs", runs.to_string())],
        );
        let rows: Vec<_> = sizes
            .iter()
            .map(|&n| {
                measure_resort(
                    &|m, n| Box::new(S2cf::for_grid(m, n, 2, 4)) as Box<dyn ResortTrace>,
                    n,
                    prefetch,
                    runs,
                    seed,
                )
            })
            .collect();
        print_resort_rows(&rows);
        println!();
    }
    repro_bench::obsreport::write_artifacts("fig9");
}
