//! Figure 9: S2CF (the post-exchange peer merge), without (9a) and with
//! (9b) `-fprefetch-loop-arrays`.
//!
//! Expected shape: the innermost traversal dimension matches the
//! innermost storage dimension, so the stride is amortized: one read and
//! one write per element; `dcbtst` adds the extra read of `out`.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig9")
}
