//! Figure 8: S1CF written as the combined loop nest (Listing 8):
//! sequential reads of `in`, strided writes of `out`.
//!
//! Expected shape: two reads (in + out's read-for-ownership) and one
//! write per element — "significantly less reading than ... the original
//! S1CF".

use fft3d::resort::{LocalDims, ResortTrace, S1cfCombined};
use repro_bench::figures::{measure_resort, print_resort_rows};
use repro_bench::{fft_sizes, header, Args};

fn main() {
    let args = Args::parse();
    let sizes = fft_sizes(args.flag("full"));
    let runs = args.get_usize("runs", 2);
    let seed = args.get_u64("seed", 8);
    header(
        "Fig. 8: S1CF combined loop nest, no additional compiler optimizations",
        &[("grid", "2x4".into()), ("runs", runs.to_string())],
    );
    let rows: Vec<_> = sizes
        .iter()
        .map(|&n| {
            measure_resort(
                &|m, n| {
                    Box::new(S1cfCombined::allocate(m, LocalDims::for_grid(n, 2, 4)))
                        as Box<dyn ResortTrace>
                },
                n,
                false,
                runs,
                seed,
            )
        })
        .collect();
    print_resort_rows(&rows);
    repro_bench::obsreport::write_artifacts("fig8");
}
