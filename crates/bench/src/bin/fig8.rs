//! Figure 8: S1CF written as the combined loop nest (Listing 8):
//! sequential reads of `in`, strided writes of `out`.
//!
//! Expected shape: two reads (in + out's read-for-ownership) and one
//! write per element — "significantly less reading than ... the original
//! S1CF".

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig8")
}
