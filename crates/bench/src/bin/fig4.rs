//! Figure 4: the same single-vs-batched GEMM comparison as Fig. 3, but
//! measured directly with perf_uncore events on the Tellico testbed —
//! demonstrating that the single-thread divergence is not a PCP artifact.

use repro_bench::figures::{gemm_sweep, print_gemm_rows};
use repro_bench::{gemm_sizes, header, Args, System};

fn main() {
    let args = Args::parse();
    let mode = args.get_or("mode", "both");
    let sizes = gemm_sizes(args.flag("full"));
    let seed = args.get_u64("seed", 4);
    let mut runs: Vec<(&str, usize)> = Vec::new();
    if mode == "single" || mode == "both" {
        runs.push(("single", 1));
    }
    if mode == "batched" || mode == "both" {
        // Tellico sockets have 16 usable cores.
        runs.push(("batched", 16));
    }
    for (label, threads) in runs {
        header(
            &format!("Fig. 4 ({label}): GEMM, adaptive repetitions, perf_uncore on Tellico"),
            &[("threads", threads.to_string()), ("seed", seed.to_string())],
        );
        let rows = gemm_sweep(
            System::Tellico,
            threads,
            &sizes,
            blas_kernels::repetitions,
            seed,
        );
        let bounds = blas_kernels::gemm_cache_bounds(p9_arch::L3_PER_CORE_BYTES);
        print_gemm_rows(&rows, bounds);
        println!();
    }
    repro_bench::obsreport::write_artifacts("fig4");
}
