//! Figure 4: the same single-vs-batched GEMM comparison as Fig. 3, but
//! measured directly with perf_uncore events on the Tellico testbed —
//! demonstrating that the single-thread divergence is not a PCP artifact.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig4")
}
