//! Figure 12: the multi-component performance profile of a single
//! QMCPACK-style rank — VMC (no drift) → VMC (drift) → DMC, with host
//! memory traffic, GPU power and InfiniBand receive traffic monitored
//! simultaneously.
//!
//! Expected shape: three visibly distinct regimes; the drifted VMC phase
//! moves more host memory and runs heavier GPU kernels; only DMC (walker
//! load balancing) touches the network.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("fig12")
}
