//! Figure 12: the multi-component performance profile of a single
//! QMCPACK-style rank — VMC (no drift) → VMC (drift) → DMC, with host
//! memory traffic, GPU power and InfiniBand receive traffic monitored
//! simultaneously.
//!
//! Expected shape: three visibly distinct regimes; the drifted VMC phase
//! moves more host memory and runs heavier GPU kernels; only DMC (walker
//! load balancing) touches the network.

use std::sync::Arc;

use nvml_sim::{GpuDevice, GpuParams};
use papi_profiling::{Column, Profiler};
use papi_sim::components::{IbComponent, NvmlComponent, PcpComponent};
use pcp_sim::{PcpContext, Pmcd, PmcdConfig, Pmns};
use qmc_mini::app::{QmcApp, QmcConfig};
use ranksim::{ClusterSim, ProcessGrid};
use repro_bench::{header, Args, System};

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 12);
    let cfg = QmcConfig {
        walkers: args.get_usize("walkers", 1024),
        blocks_per_phase: args.get_usize("blocks", 10),
        steps_per_block: args.get_usize("steps", 30),
        alpha: 0.85,
        seed,
    };

    let machine = System::Summit.machine(seed);
    let gpu = Arc::new(GpuDevice::new(
        0,
        GpuParams::default(),
        machine.socket_shared(0),
    ));
    let mut cluster = ClusterSim::new(machine, ProcessGrid::new(4, 4), 2);
    let app = QmcApp::new(&mut cluster, Arc::clone(&gpu), cfg);

    let pmns = Pmns::for_machine(cluster.machine().arch());
    let sockets: Vec<_> = (0..cluster.machine().num_sockets())
        .map(|s| cluster.machine().socket_shared(s))
        .collect();
    let pmcd = Pmcd::spawn_system(pmns.clone(), sockets.clone(), PmcdConfig::default())
        .expect("spawn pmcd");
    let ctx = PcpContext::connect(pmcd.handle(), Some(cluster.machine().socket_shared(0)));
    let mut papi = papi_sim::Papi::new();
    papi.register(Box::new(PcpComponent::new(ctx, pmns, sockets)));
    papi.register(Box::new(NvmlComponent::new(vec![Arc::clone(&gpu)])));
    papi.register(Box::new(IbComponent::new(
        cluster.fabric().node(0).hcas.clone(),
    )));

    header(
        "Fig. 12: performance profile of a single QMCPACK rank",
        &[
            ("phases", "vmc, vmc-drift, dmc".into()),
            ("walkers", cfg.walkers.to_string()),
            ("blocks/phase", cfg.blocks_per_phase.to_string()),
        ],
    );

    let columns = vec![
        Column::gauge("nvml:::Tesla_V100-SXM2-16GB:device_0:power", "gpu_power_mW"),
        Column::counter(
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
            "mem_read_Bps",
        )
        .scaled(8.0),
        Column::counter(
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
            "mem_write_Bps",
        )
        .scaled(8.0),
        Column::counter(
            "infiniband:::mlx5_0_1_ext:port_recv_data",
            "ib_recv_words_ps",
        )
        .scaled(2.0),
    ];

    let mut profiler = Profiler::start(&papi, columns).expect("profiler start");
    let result = app.run(&mut cluster, |phase, cl| {
        let now = cl.machine().socket_shared(0).now_seconds();
        profiler.tick(phase, now).expect("sample");
    });

    let timeline = profiler.finish().expect("profiler stop");
    print!("{}", timeline.to_csv());
    println!();
    println!("# phase means:");
    println!("phase,gpu_power_mW,mem_read_Bps,mem_write_Bps,ib_recv_words_ps");
    for (phase, means) in timeline.phase_summary() {
        println!(
            "{phase},{:.0},{:.3e},{:.3e},{:.3e}",
            means[0], means[1], means[2], means[3]
        );
    }
    println!();
    println!(
        "# physics check: E(vmc)={:.4}, E(vmc-drift)={:.4}, E(dmc)={:.4} (exact 1.5)",
        result.vmc_energy, result.vmc_drift_energy, result.dmc_energy
    );
    repro_bench::obsreport::write_artifacts("fig12");
}
