//! `repro` — reproduce every figure, table and study of the paper in
//! one parallel run.
//!
//! Shards the full catalog (12 figures, 2 tables, the ablation study and
//! the `papi_avail` listing) into independent sweep points and executes
//! them on a deterministic worker pool: every point builds its own
//! seeded `SimMachine`, so the composed experiment outputs are
//! byte-identical for any `--workers` value. Outputs land in
//! `results/<tag>.out`; run statistics (wall time per experiment,
//! points/s, simulated bytes/s — never part of experiment output) go to
//! `results/BENCH_repro.json`.
//!
//! ```text
//! repro [--quick|--full] [--workers N] [--only fig2,fig5,…]
//!       [--out DIR] [--write-golden] [--check-baseline FILE]
//! ```
//!
//! `--write-golden` additionally records each experiment's output as
//! `results/GOLDEN_<tag>.json` — the committed references the
//! golden-figure regression suite (`tests/golden_figures.rs`) replays.
//! `--check-baseline` compares this run's wall time against a committed
//! `BENCH_baseline.json` and fails if it regressed by more than 25 %.

use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use repro_bench::runner::{self, json_escape, RunReport, RunnerError};
use repro_bench::{experiments, obsreport, Args, Mode};

/// Wall-time regression tolerance of `--check-baseline`.
const BASELINE_SLACK: f64 = 1.25;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro: {e}");
            ExitCode::FAILURE
        }
    }
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> RunnerError {
    RunnerError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn run() -> Result<(), RunnerError> {
    let args = Args::parse();
    let mode = Mode::from_args(&args);
    let workers = args.get_usize("workers", default_workers());

    let only: Option<Vec<String>> = args.get("only").map(|s| {
        s.split(',')
            .map(|t| t.trim().to_owned())
            .filter(|t| !t.is_empty())
            .collect()
    });
    if let Some(only) = &only {
        for t in only {
            if !experiments::TAGS.contains(&t.as_str()) {
                return Err(RunnerError::Usage {
                    message: format!(
                        "unknown experiment tag '{t}' (known: {})",
                        experiments::TAGS.join(", ")
                    ),
                });
            }
        }
    }
    let tags: Vec<&'static str> = experiments::TAGS
        .iter()
        .copied()
        .filter(|t| only.as_ref().is_none_or(|o| o.iter().any(|x| x == t)))
        .collect();

    let exps: Vec<_> = tags
        .iter()
        .filter_map(|t| experiments::build(t, mode, &args))
        .collect();
    eprintln!(
        "repro: {} experiments, {} mode, {} workers",
        exps.len(),
        mode.name(),
        workers
    );

    // Live monitoring of the run itself (DESIGN.md §11): snapshot the
    // global registry before and after, derive run-window rates, and
    // evaluate the canonical threshold rules. A clean catalog execution
    // must never fire one. The tick timestamps are wall-clock — like
    // wall_seconds they feed only the bench artifact, never the
    // deterministic experiment outputs.
    let mut monitor = obs::Monitor::new(8, obsreport::canonical_rules());
    let live_t0 = Instant::now();
    monitor.tick(1, &obs::registry().export());

    let report = runner::run_experiments(exps, workers);

    monitor.tick(
        1 + live_t0.elapsed().as_nanos().max(1) as u64,
        &obs::registry().export(),
    );
    for alert in monitor.alerts() {
        eprintln!(
            "repro: ALERT {}: {} = {:.2} > {:.2}",
            alert.rule, alert.metric, alert.observed, alert.threshold
        );
    }
    eprintln!(
        "repro: live monitor tracked {} series, {} derived rates, {} alerts",
        monitor.store().len(),
        monitor.derived().len(),
        monitor.alerts().len()
    );

    let outdir = args.get_or("out", "results");
    let outdir = Path::new(&outdir);
    fs::create_dir_all(outdir).map_err(|e| io_err(outdir, e))?;
    for er in &report.experiments {
        let path = outdir.join(format!("{}.out", er.tag));
        fs::write(&path, &er.output).map_err(|e| io_err(&path, e))?;
    }
    if args.flag("write-golden") {
        for er in &report.experiments {
            if !er.errors.is_empty() {
                continue; // never freeze a failed run as a reference
            }
            let path = outdir.join(format!("GOLDEN_{}.json", er.tag));
            let doc = format!(
                "{{\"schema\":\"golden-figure-v1\",\"tag\":\"{}\",\"mode\":\"{}\",\"output\":\"{}\"}}\n",
                er.tag,
                mode.name(),
                json_escape(&er.output)
            );
            fs::write(&path, doc).map_err(|e| io_err(&path, e))?;
        }
        eprintln!(
            "repro: wrote {} golden references",
            report.experiments.len()
        );
    }

    let bench_path = outdir.join("BENCH_repro.json");
    fs::write(&bench_path, bench_json(&report, mode, &monitor))
        .map_err(|e| io_err(&bench_path, e))?;

    print_summary(&report);
    println!("wrote {}", bench_path.display());

    for er in &report.experiments {
        for e in &er.errors {
            eprintln!("repro: {e}");
        }
    }

    if let Some(baseline) = args.get("check-baseline") {
        check_baseline(Path::new(baseline), report.wall_seconds)?;
    }

    let failed = report.failed_tags();
    if !failed.is_empty() {
        return Err(RunnerError::Failed {
            experiments: failed,
        });
    }
    Ok(())
}

fn print_summary(report: &RunReport) {
    let busy: f64 = report.experiments.iter().map(|e| e.busy_seconds).sum();
    println!("tag          points   busy_s     sim_bytes        status");
    for er in &report.experiments {
        println!(
            "{:<12} {:<8} {:<10.3} {:<16} {}",
            er.tag,
            er.measured,
            er.busy_seconds,
            er.sim_bytes,
            if er.errors.is_empty() { "ok" } else { "FAILED" }
        );
    }
    let wall = report.wall_seconds.max(1e-9);
    println!(
        "total: {} points in {:.2}s with {} workers -> {:.1} points/s, {:.3e} sim bytes/s, {:.2}x vs serial",
        report.total_points(),
        report.wall_seconds,
        report.workers,
        report.total_points() as f64 / wall,
        report.total_sim_bytes() as f64 / wall,
        busy / wall,
    );
}

fn bench_json(report: &RunReport, mode: Mode, monitor: &obs::Monitor) -> String {
    let wall = report.wall_seconds.max(1e-9);
    let busy: f64 = report.experiments.iter().map(|e| e.busy_seconds).sum();
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"bench-repro-v1\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", mode.name()));
    out.push_str(&format!("  \"workers\": {},\n", report.workers));
    out.push_str(&format!(
        "  \"wall_seconds\": {:.6},\n",
        report.wall_seconds
    ));
    out.push_str(&format!("  \"busy_seconds\": {busy:.6},\n"));
    out.push_str(&format!("  \"speedup_vs_serial\": {:.3},\n", busy / wall));
    out.push_str(&format!("  \"points\": {},\n", report.total_points()));
    out.push_str(&format!(
        "  \"points_per_sec\": {:.3},\n",
        report.total_points() as f64 / wall
    ));
    out.push_str(&format!("  \"sim_bytes\": {},\n", report.total_sim_bytes()));
    out.push_str(&format!(
        "  \"sim_bytes_per_sec\": {:.3e},\n",
        report.total_sim_bytes() as f64 / wall
    ));
    out.push_str(&format!("  \"live_series\": {},\n", monitor.store().len()));
    out.push_str(&format!("  \"live_alerts\": {},\n", monitor.alerts().len()));
    let derived = monitor.derived();
    out.push_str("  \"live_rates_per_s\": {\n");
    for (i, (name, r)) in derived.iter().enumerate() {
        let comma = if i + 1 < derived.len() { "," } else { "" };
        out.push_str(&format!("    \"{}\": {r:.3}{comma}\n", json_escape(name)));
    }
    out.push_str("  },\n");
    out.push_str("  \"experiments\": [\n");
    for (i, er) in report.experiments.iter().enumerate() {
        let comma = if i + 1 < report.experiments.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"tag\": \"{}\", \"points\": {}, \"busy_seconds\": {:.6}, \"sim_bytes\": {}, \"failed\": {}}}{comma}\n",
            er.tag,
            er.measured,
            er.busy_seconds,
            er.sim_bytes,
            !er.errors.is_empty()
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Gate this run's wall time against a committed baseline: fail when it
/// exceeds `baseline * BASELINE_SLACK`.
fn check_baseline(path: &Path, wall: f64) -> Result<(), RunnerError> {
    let doc = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let json = obs::chrome::parse_json(&doc).map_err(|e| io_err(path, e))?;
    let obs::chrome::Json::Obj(fields) = json else {
        return Err(io_err(path, "baseline is not a JSON object"));
    };
    let baseline = fields
        .iter()
        .find(|(k, _)| k == "wall_seconds")
        .and_then(|(_, v)| match v {
            obs::chrome::Json::Num(n) => Some(*n),
            _ => None,
        })
        .ok_or_else(|| io_err(path, "baseline has no numeric wall_seconds"))?;
    let limit = baseline * BASELINE_SLACK;
    if wall > limit {
        return Err(RunnerError::Regression { wall, limit });
    }
    eprintln!("repro: wall {wall:.2}s within baseline gate {limit:.2}s ({baseline:.2}s + 25%)");
    Ok(())
}
