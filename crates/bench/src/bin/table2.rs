//! Table II: the supplemental performance events (GPU power via NVML,
//! InfiniBand port traffic) available on a Summit node with a fabric.

use std::sync::Arc;

use p9_memsim::SimMachine;
use papi_sim::papi::setup_node;

fn main() {
    let machine = SimMachine::summit(1);
    // A two-rail node NIC, as on Summit.
    let nic = ib_sim::NodeNic::new(machine.arch().node.ib_ports);
    let hcas: Vec<Arc<ib_sim::Hca>> = nic.hcas.clone();
    let setup = setup_node(&machine, hcas);

    println!("TABLE II: Supplemental Performance Events");
    println!("hardware,component,event,units");
    for status in setup.papi.component_status() {
        if !status.enabled || (status.name != "nvml" && status.name != "infiniband") {
            continue;
        }
        let comp = setup.papi.component(&status.name).unwrap();
        let hardware = match status.name.as_str() {
            "nvml" => "NVIDIA Tesla V100 GPU",
            _ => "Mellanox ConnectX-5 Ex",
        };
        for ev in comp.list_events() {
            println!("{hardware},{},{},{}", status.name, ev.name, ev.units);
        }
    }
    repro_bench::obsreport::write_artifacts("table2");
}
