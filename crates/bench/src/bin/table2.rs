//! Table II: the supplemental performance events (GPU power via NVML,
//! InfiniBand port traffic) available on a Summit node with a fabric.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("table2")
}
