//! Ablation study: what each model mechanism contributes to the paper's
//! phenomena. For every switchable mechanism of
//! [`p9_memsim::ModelPolicy`], a diagnostic kernel is run with the
//! mechanism on and off and the headline quantity compared:
//!
//! * `store_gather_bypass` — S1CF loop nest 1 (Fig. 6a): with the bypass,
//!   ~1 read per element; without, every store write-allocates and the
//!   routine looks like its `-fprefetch-loop-arrays` variant (~2 reads).
//! * `anti_pollution` — S1CF loop nest 2 just below the Eq. 7 bound
//!   (Fig. 7a): with streaming-store mid-LRU insertion the `tmp` reuse
//!   window survives up to the bound (sharp 2→5 crossover near N ≈ 724);
//!   with naive MRU insertion the `out` stream erodes the window early
//!   and the crossover smears to smaller N.
//! * `hw_prefetch` — a streaming read (GEMV row sweep): traffic is
//!   unchanged, but the exposed miss latency (cycles) rises sharply
//!   without prefetch.

use fft3d::resort::{LocalDims, ResortTrace, S1cfNest1, S1cfNest2};
use p9_memsim::{ModelPolicy, SimMachine};

fn quiet() -> SimMachine {
    SimMachine::quiet(p9_arch::Machine::summit(), 101)
}

/// Run a resort trace under `policy` with the all-cores L3 share;
/// returns (reads, writes) per 16-byte element.
fn resort_per_element<T: ResortTrace>(
    make: impl FnOnce(&mut SimMachine) -> T,
    policy: ModelPolicy,
) -> (f64, f64) {
    let mut m = quiet();
    m.set_policy(0, policy);
    let t = make(&mut m);
    let shared = m.socket_shared(0);
    let before = shared.counters().snapshot();
    let active = m.arch().node.sockets[0].usable_cores;
    m.run_parallel(0, active, |tid, core| {
        if tid == 0 {
            t.run(core);
        }
    });
    m.flush_socket(0);
    let d = shared.counters().snapshot().delta(&before);
    let elems = t.volume() as f64 / 16.0;
    (
        d.total_read() as f64 / 16.0 / elems,
        d.total_write() as f64 / 16.0 / elems,
    )
}

/// Streaming-read cycles per sector under `policy`.
fn stream_cycles(policy: ModelPolicy) -> f64 {
    let mut m = quiet();
    m.set_policy(0, policy);
    let bytes = 8u64 << 20;
    let r = m.alloc(bytes);
    let mut cycles = 0;
    m.run_single(0, |core| {
        let c0 = core.cycles();
        core.load_seq(r.base(), bytes);
        cycles = core.cycles() - c0;
    });
    cycles as f64 / (bytes / 64) as f64
}

fn main() {
    let on = ModelPolicy::default();
    println!("# Ablation study: model mechanisms vs the paper's phenomena");
    println!("mechanism,metric,with,without,effect");

    // --- store_gather_bypass ------------------------------------------
    let off = ModelPolicy {
        store_gather_bypass: false,
        ..on
    };
    let dims = LocalDims::for_grid(224, 2, 4);
    let (r_on, _) = resort_per_element(|m| S1cfNest1::allocate(m, dims), on);
    let (r_off, _) = resort_per_element(|m| S1cfNest1::allocate(m, dims), off);
    println!(
        "store_gather_bypass,S1CF-nest1 reads/elem,{r_on:.2},{r_off:.2},\
         bypass removes the read-for-ownership (Fig. 6a vs 6b)"
    );

    // --- anti_pollution -----------------------------------------------
    let off = ModelPolicy {
        anti_pollution: false,
        ..on
    };
    let dims = LocalDims::for_grid(672, 2, 4);
    let (r_on, _) = resort_per_element(|m| S1cfNest2::allocate(m, dims), on);
    let (r_off, _) = resort_per_element(|m| S1cfNest2::allocate(m, dims), off);
    println!(
        "anti_pollution,S1CF-nest2 reads/elem near Eq.7 (N=672),{r_on:.2},{r_off:.2},\
         streaming stores flushing the tmp window would smear the Eq.7 crossover"
    );

    // --- hw_prefetch ----------------------------------------------------
    let off = ModelPolicy {
        hw_prefetch: false,
        ..on
    };
    let c_on = stream_cycles(on);
    let c_off = stream_cycles(off);
    println!(
        "hw_prefetch,stream-read cycles/sector,{c_on:.1},{c_off:.1},\
         prefetch hides the demand-miss latency"
    );
    repro_bench::obsreport::write_artifacts("ablation");
}
