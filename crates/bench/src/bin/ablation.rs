//! Ablation study: what each model mechanism contributes to the paper's
//! phenomena. For every switchable mechanism of
//! [`p9_memsim::ModelPolicy`], a diagnostic kernel is run with the
//! mechanism on and off and the headline quantity compared:
//!
//! * `store_gather_bypass` — S1CF loop nest 1 (Fig. 6a): with the bypass,
//!   ~1 read per element; without, every store write-allocates and the
//!   routine looks like its `-fprefetch-loop-arrays` variant (~2 reads).
//! * `anti_pollution` — S1CF loop nest 2 just below the Eq. 7 bound
//!   (Fig. 7a): with streaming-store mid-LRU insertion the `tmp` reuse
//!   window survives up to the bound (sharp 2→5 crossover near N ≈ 724);
//!   with naive MRU insertion the `out` stream erodes the window early
//!   and the crossover smears to smaller N.
//! * `hw_prefetch` — a streaming read (GEMV row sweep): traffic is
//!   unchanged, but the exposed miss latency (cycles) rises sharply
//!   without prefetch.

use std::process::ExitCode;

fn main() -> ExitCode {
    repro_bench::experiments::run_bin("ablation")
}
