//! The parallel reproduction engine.
//!
//! An [`Experiment`] is an ordered list of [`Point`]s: static text
//! (headers, CSV column lines) and independent units of measurement
//! work. Every run point builds its own seeded `SimMachine` (see
//! [`crate::point_seed`]), so points share no state and the pool can
//! execute them in any order across any number of workers — the final
//! output is composed **in registration order** from the points' returned
//! strings, which makes an N-worker run byte-identical to a 1-worker run.
//! Wall-clock times never enter experiment output; they are quarantined
//! in the run report (`results/BENCH_repro.json`).
//!
//! Failure model: a point that returns an error (or panics — the pool
//! catches unwinds) fails **its experiment only**. The remaining points
//! still run, the error is recorded in the experiment's report, and the
//! composed output carries a `# point … failed:` marker line in the
//! failed point's place.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

/// Typed failure of a reproduction run.
#[derive(Debug, Clone)]
pub enum RunnerError {
    /// A measurement step inside a point returned an error (PAPI, PMCD
    /// spawn, profiler…). `message` preserves the source error's display.
    Point {
        experiment: String,
        point: String,
        message: String,
    },
    /// A point panicked; the pool caught the unwind.
    Panicked {
        experiment: String,
        point: String,
        message: String,
    },
    /// Reading or writing a results artifact failed.
    Io { path: String, message: String },
    /// Summary error: these experiments had failing points.
    Failed { experiments: Vec<String> },
    /// Bad command-line usage (unknown tag, malformed flag value…).
    Usage { message: String },
    /// The run's wall time regressed past the baseline gate.
    Regression { wall: f64, limit: f64 },
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunnerError::Point {
                experiment,
                point,
                message,
            } => write!(f, "{experiment}/{point}: {message}"),
            RunnerError::Panicked {
                experiment,
                point,
                message,
            } => write!(f, "{experiment}/{point}: panicked: {message}"),
            RunnerError::Io { path, message } => write!(f, "{path}: {message}"),
            RunnerError::Failed { experiments } => {
                write!(f, "experiments failed: {}", experiments.join(", "))
            }
            RunnerError::Usage { message } => write!(f, "usage: {message}"),
            RunnerError::Regression { wall, limit } => write!(
                f,
                "wall time {wall:.2}s exceeds the baseline gate of {limit:.2}s"
            ),
        }
    }
}

impl std::error::Error for RunnerError {}

/// What a run point produced: its slice of the experiment's output and
/// the bytes the simulator moved (throughput statistic only).
#[derive(Debug, Clone)]
pub struct PointOutput {
    pub text: String,
    pub sim_bytes: u64,
}

impl PointOutput {
    pub fn text(text: String) -> PointOutput {
        PointOutput { text, sim_bytes: 0 }
    }

    pub fn with_bytes(text: String, sim_bytes: u64) -> PointOutput {
        PointOutput { text, sim_bytes }
    }
}

type PointFn = Box<dyn FnOnce() -> Result<PointOutput, RunnerError> + Send>;

enum Work {
    /// Pre-rendered text (headers, column lines): no scheduling needed.
    Fixed(String),
    /// An independent measurement unit.
    Run(PointFn),
}

/// One schedulable unit of an experiment.
pub struct Point {
    label: String,
    work: Work,
}

impl Point {
    /// A static-text point (section header, CSV column line…). The
    /// trailing newline is appended here so builders pass bare lines.
    pub fn fixed(text: impl Into<String>) -> Point {
        let mut text = text.into();
        if !text.is_empty() && !text.ends_with('\n') {
            text.push('\n');
        }
        Point {
            label: String::from("static"),
            work: Work::Fixed(text),
        }
    }

    /// An independent measurement point. `f` runs on some pool worker;
    /// its returned text (newline appended if missing) lands at this
    /// point's position in the experiment output.
    pub fn run(
        label: impl Into<String>,
        f: impl FnOnce() -> Result<PointOutput, RunnerError> + Send + 'static,
    ) -> Point {
        Point {
            label: label.into(),
            work: Work::Run(Box::new(f)),
        }
    }

    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether this point carries measurement work (vs static text).
    pub fn is_measured(&self) -> bool {
        matches!(self.work, Work::Run(_))
    }
}

/// One experiment: a tag (`fig2`, `table1`, …), a human title, and its
/// ordered points.
pub struct Experiment {
    pub tag: &'static str,
    pub title: String,
    pub points: Vec<Point>,
}

impl Experiment {
    pub fn new(tag: &'static str, title: impl Into<String>) -> Experiment {
        Experiment {
            tag,
            title: title.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, p: Point) {
        self.points.push(p);
    }
}

/// Per-experiment outcome.
pub struct ExperimentReport {
    pub tag: &'static str,
    pub title: String,
    /// The composed output, identical for every worker count.
    pub output: String,
    /// Total points (measured + static).
    pub points: usize,
    /// Measured points.
    pub measured: usize,
    /// Sum of the measured points' individual wall times. Under
    /// parallel execution experiments overlap, so this is busy time,
    /// not elapsed time.
    pub busy_seconds: f64,
    /// Simulated bytes moved by this experiment's points.
    pub sim_bytes: u64,
    /// Errors of failed points, in point order.
    pub errors: Vec<RunnerError>,
}

/// Outcome of a whole run.
pub struct RunReport {
    pub experiments: Vec<ExperimentReport>,
    pub workers: usize,
    pub wall_seconds: f64,
}

impl RunReport {
    pub fn total_points(&self) -> usize {
        self.experiments.iter().map(|e| e.measured).sum()
    }

    pub fn total_sim_bytes(&self) -> u64 {
        self.experiments.iter().map(|e| e.sim_bytes).sum()
    }

    pub fn failed_tags(&self) -> Vec<String> {
        self.experiments
            .iter()
            .filter(|e| !e.errors.is_empty())
            .map(|e| e.tag.to_owned())
            .collect()
    }
}

/// The result slot of one scheduled point.
struct Slot {
    result: Option<Result<PointOutput, RunnerError>>,
    seconds: f64,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

/// Execute `experiments` on `workers` pool threads and compose each
/// experiment's output in registration order. `workers` is clamped to
/// at least 1; the output is independent of its value.
pub fn run_experiments(experiments: Vec<Experiment>, workers: usize) -> RunReport {
    let workers = workers.max(1);
    let t_start = Instant::now();

    // Flatten: (experiment index, point index) per schedulable job, the
    // closure store, and one result slot per job.
    let mut meta: Vec<(usize, usize)> = Vec::new();
    let mut jobs: Vec<Mutex<Option<PointFn>>> = Vec::new();
    let mut labels: Vec<(String, String)> = Vec::new(); // (tag, label)
    let mut skeleton: Vec<(usize, Vec<PointRender>)> = Vec::new();

    enum PointRender {
        Fixed(String),
        Job(usize),
    }

    for (ei, exp) in experiments.iter().enumerate() {
        skeleton.push((ei, Vec::with_capacity(exp.points.len())));
    }
    let mut experiments = experiments;
    for (ei, exp) in experiments.iter_mut().enumerate() {
        for (pi, point) in exp.points.drain(..).enumerate() {
            match point.work {
                Work::Fixed(text) => skeleton[ei].1.push(PointRender::Fixed(text)),
                Work::Run(f) => {
                    let job = jobs.len();
                    meta.push((ei, pi));
                    labels.push((exp.tag.to_owned(), point.label));
                    jobs.push(Mutex::new(Some(f)));
                    skeleton[ei].1.push(PointRender::Job(job));
                }
            }
        }
    }

    let slots: Vec<Mutex<Slot>> = (0..jobs.len())
        .map(|_| {
            Mutex::new(Slot {
                result: None,
                seconds: 0.0,
            })
        })
        .collect();

    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                // relaxed-ok: pure job-ticket counter; the claimed job's
                // closure is transferred through its Mutex (acquire /
                // release), so no other memory needs ordering with the
                // ticket RMW, and fetch_add cannot hand out duplicates.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let Some(f) = jobs[i].lock().take() else {
                    continue;
                };
                let t0 = Instant::now();
                let outcome = match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(r) => r,
                    Err(payload) => Err(RunnerError::Panicked {
                        experiment: labels[i].0.clone(),
                        point: labels[i].1.clone(),
                        message: panic_message(payload),
                    }),
                };
                let dt = t0.elapsed().as_secs_f64();
                let mut slot = slots[i].lock();
                slot.result = Some(outcome);
                slot.seconds = dt;
            });
        }
    });

    // Compose per-experiment output in registration order. Execution
    // order influenced only the Instant timings above, never this text.
    let mut reports = Vec::with_capacity(experiments.len());
    for (ei, renders) in skeleton {
        let exp = &experiments[ei];
        let mut output = String::new();
        let mut errors = Vec::new();
        let mut busy = 0.0;
        let mut sim_bytes = 0u64;
        let mut measured = 0usize;
        let total_points = renders.len();
        for render in renders {
            match render {
                PointRender::Fixed(text) => output.push_str(&text),
                PointRender::Job(job) => {
                    measured += 1;
                    let mut slot = slots[job].lock();
                    busy += slot.seconds;
                    match slot.result.take() {
                        Some(Ok(po)) => {
                            sim_bytes += po.sim_bytes;
                            output.push_str(&po.text);
                            if !po.text.is_empty() && !po.text.ends_with('\n') {
                                output.push('\n');
                            }
                        }
                        Some(Err(e)) => {
                            output.push_str(&format!("# point {} failed: {e}\n", labels[job].1));
                            errors.push(e);
                        }
                        None => {
                            let e = RunnerError::Point {
                                experiment: exp.tag.to_owned(),
                                point: labels[job].1.clone(),
                                message: String::from("point was never executed"),
                            };
                            output.push_str(&format!("# point {} failed: {e}\n", labels[job].1));
                            errors.push(e);
                        }
                    }
                }
            }
        }
        reports.push(ExperimentReport {
            tag: exp.tag,
            title: exp.title.clone(),
            output,
            points: total_points,
            measured,
            busy_seconds: busy,
            sim_bytes,
            errors,
        });
    }

    RunReport {
        experiments: reports,
        workers,
        wall_seconds: t_start.elapsed().as_secs_f64(),
    }
}

/// Escape `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counting_experiment(tag: &'static str, n: usize) -> Experiment {
        let mut exp = Experiment::new(tag, "test");
        exp.push(Point::fixed(format!("# {tag}")));
        for i in 0..n {
            exp.push(Point::run(format!("p{i}"), move || {
                Ok(PointOutput::with_bytes(format!("{tag},{i}"), 10))
            }));
        }
        exp
    }

    #[test]
    fn output_is_identical_across_worker_counts() {
        let reference: Vec<String> = run_experiments(
            vec![counting_experiment("a", 7), counting_experiment("b", 3)],
            1,
        )
        .experiments
        .iter()
        .map(|e| e.output.clone())
        .collect();
        for workers in [2, 4, 8] {
            let outs: Vec<String> = run_experiments(
                vec![counting_experiment("a", 7), counting_experiment("b", 3)],
                workers,
            )
            .experiments
            .iter()
            .map(|e| e.output.clone())
            .collect();
            assert_eq!(outs, reference, "workers = {workers}");
        }
    }

    #[test]
    fn a_failing_point_fails_only_its_experiment() {
        let mut bad = Experiment::new("bad", "has a failure");
        bad.push(Point::run("ok", || Ok(PointOutput::text("fine".into()))));
        bad.push(Point::run("boom", || {
            Err(RunnerError::Point {
                experiment: "bad".into(),
                point: "boom".into(),
                message: "synthetic".into(),
            })
        }));
        bad.push(Point::run("after", || {
            Ok(PointOutput::text("still runs".into()))
        }));
        let report = run_experiments(vec![bad, counting_experiment("good", 2)], 3);
        assert_eq!(report.failed_tags(), vec!["bad".to_owned()]);
        let bad = &report.experiments[0];
        assert_eq!(bad.errors.len(), 1);
        assert!(bad.output.contains("fine"));
        assert!(bad.output.contains("# point boom failed:"));
        assert!(bad.output.contains("still runs"));
        assert!(report.experiments[1].errors.is_empty());
    }

    #[test]
    fn panics_are_contained_as_typed_errors() {
        let mut exp = Experiment::new("p", "panics");
        exp.push(Point::run("kaboom", || panic!("deliberate test panic")));
        let report = run_experiments(vec![exp], 2);
        let errs = &report.experiments[0].errors;
        assert_eq!(errs.len(), 1);
        match &errs[0] {
            RunnerError::Panicked { message, .. } => {
                assert!(message.contains("deliberate test panic"))
            }
            other => panic!("wrong error variant: {other:?}"),
        }
    }

    #[test]
    fn report_accounts_points_and_bytes() {
        let report = run_experiments(vec![counting_experiment("a", 5)], 2);
        assert_eq!(report.total_points(), 5);
        assert_eq!(report.total_sim_bytes(), 50);
        assert_eq!(report.experiments[0].points, 6); // + header
        assert!(report.wall_seconds >= 0.0);
    }

    #[test]
    fn json_escape_round_trips_through_the_obs_parser() {
        let nasty = "line1\nline2\t\"quoted\\path\"\r\u{1}";
        let doc = format!("{{\"s\":\"{}\"}}", json_escape(nasty));
        match obs::chrome::parse_json(&doc) {
            Ok(obs::chrome::Json::Obj(fields)) => {
                assert_eq!(fields[0].1, obs::chrome::Json::Str(nasty.to_owned()));
            }
            other => panic!("parse failed: {other:?}"),
        }
    }
}
