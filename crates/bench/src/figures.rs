//! Measurement drivers shared by the figure binaries and the repro
//! runner.
//!
//! Every driver here measures **one sweep point** on a machine it builds
//! itself from the caller's seed (see [`crate::point_seed`]): points are
//! pure functions of their parameters, so the parallel runner can execute
//! them in any order — or all at once — and still compose bit-identical
//! figure output. Fallible steps return [`PapiError`] instead of
//! panicking; one failed point fails its experiment, not the process.

use blas_kernels::{
    measure_traffic, BatchedCappedGemvTrace, BatchedGemmTrace, MeasureConfig, NestEvents,
};
use fft3d::resort::ResortTrace;
use p9_memsim::SimMachine;
use papi_sim::{EventSet, PapiError};

use crate::System;

/// Allocate one resort trace at size `n` (fn pointer so points stay
/// `Send + 'static` without capturing).
pub type MakeResort = fn(&mut SimMachine, usize) -> Box<dyn ResortTrace>;

/// One row of a GEMM sweep (Figs. 2–4).
#[derive(Clone, Copy, Debug)]
pub struct GemmRow {
    pub n: u64,
    pub reps: u32,
    pub expected_read: f64,
    pub expected_write: f64,
    pub measured_read: f64,
    pub measured_write: f64,
}

/// Measure one GEMM sweep point on a fresh machine seeded with `seed`.
/// `threads = 1` for the single-threaded kernel, one per usable core for
/// the batched one.
pub fn gemm_point(
    system: System,
    threads: usize,
    n: u64,
    reps: u32,
    seed: u64,
) -> Result<GemmRow, PapiError> {
    #[cfg(feature = "obs")]
    let _span = obs::span!("bench.gemm_point", n);
    let (mut machine, setup) = crate::node(system, seed);
    let events = match system {
        System::Summit => NestEvents::pcp(&machine),
        System::Tellico => NestEvents::uncore(),
    };
    let cfg = MeasureConfig {
        reps,
        threads,
        factored: true,
    };
    let sample = measure_traffic(
        &mut machine,
        &setup.papi,
        &events,
        |mach, t| BatchedGemmTrace::allocate(mach, n, t),
        |k, tid, core| k.run_thread(tid, core),
        &cfg,
    )?;
    let expect = blas_kernels::gemm_expected(n).batched(threads);
    Ok(GemmRow {
        n,
        reps,
        expected_read: expect.read_bytes,
        expected_write: expect.write_bytes,
        measured_read: sample.read_bytes,
        measured_write: sample.write_bytes,
    })
}

/// One row of the capped-GEMV sweep (Fig. 5).
#[derive(Clone, Copy, Debug)]
pub struct GemvRow {
    pub m: u64,
    pub n: u64,
    pub reps: u32,
    pub expected_read: f64,
    pub expected_write: f64,
    pub measured_read: f64,
    pub measured_write: f64,
}

/// The capping width: square GEMV up to `M = 1280`, capped (fixed
/// `N = P = 1280`) beyond, per Section III.
pub const GEMV_CAP: u64 = 1280;

/// Measure one batched, capped GEMV point of Fig. 5.
pub fn gemv_point(system: System, threads: usize, m: u64, seed: u64) -> Result<GemvRow, PapiError> {
    #[cfg(feature = "obs")]
    let _span = obs::span!("bench.gemv_point", m);
    let (mut machine, setup) = crate::node(system, seed);
    let events = match system {
        System::Summit => NestEvents::pcp(&machine),
        System::Tellico => NestEvents::uncore(),
    };
    let n = m.min(GEMV_CAP);
    let reps = blas_kernels::repetitions(m);
    let cfg = MeasureConfig {
        reps,
        threads,
        factored: true,
    };
    let sample = measure_traffic(
        &mut machine,
        &setup.papi,
        &events,
        |mach, t| BatchedCappedGemvTrace::allocate(mach, m, n, t),
        |k, tid, core| k.run_thread(tid, core),
        &cfg,
    )?;
    let expect = blas_kernels::capped_gemv_expected(m, n).batched(threads);
    Ok(GemvRow {
        m,
        n,
        reps,
        expected_read: expect.read_bytes,
        expected_write: expect.write_bytes,
        measured_read: sample.read_bytes,
        measured_write: sample.write_bytes,
    })
}

/// One row of a re-sorting figure (Figs. 6–9): min/max over runs.
#[derive(Clone, Copy, Debug)]
pub struct ResortRow {
    pub n: usize,
    pub runs: usize,
    pub expected_read: f64,
    pub expected_write: f64,
    pub min_read: f64,
    pub max_read: f64,
    pub min_write: f64,
    pub max_write: f64,
    /// Per-16-byte-element read/write transactions (the paper's units).
    pub per_elem_read: f64,
    pub per_elem_write: f64,
    /// Mean simulated seconds per run (the Fig. 7b speedup shows here).
    pub seconds: f64,
}

/// Measure one re-sorting routine at size `n`, `runs` independent runs
/// with fresh buffers each (the paper reports min/max of 50 runs).
/// Routines run under the all-cores L3 share (the original loops are
/// OpenMP-parallel across the socket).
pub fn measure_resort(
    make: MakeResort,
    n: usize,
    prefetch: bool,
    runs: usize,
    seed: u64,
) -> Result<ResortRow, PapiError> {
    #[cfg(feature = "obs")]
    let _span = obs::span!("bench.resort_point", n as u64);
    let (mut machine, setup) = crate::node(System::Summit, seed);
    machine.set_software_prefetch(0, prefetch);
    let events = NestEvents::pcp(&machine);
    let mut es = EventSet::new();
    for e in events.reads.iter().chain(&events.writes) {
        es.add_event(e)?;
    }
    let nr = events.reads.len();
    let active = machine.arch().node.sockets[0].usable_cores;

    let runs = runs.max(1);
    let mut reads = Vec::with_capacity(runs);
    let mut writes = Vec::with_capacity(runs);
    let mut volume = 0u64;
    let mut expected = (0u64, 0u64);
    let mut seconds = 0.0;
    let shared = machine.socket_shared(0);
    for _ in 0..runs {
        let trace = make(&mut machine, n);
        volume = trace.volume();
        expected = trace.expected();
        es.start(&setup.papi)?;
        let t0 = shared.now_seconds();
        machine.run_parallel(0, active, |tid, core| {
            if tid == 0 {
                trace.run(core);
            }
        });
        seconds += shared.now_seconds() - t0;
        let vals = es.stop()?;
        reads.push(vals[..nr].iter().sum::<i64>() as f64);
        writes.push(vals[nr..].iter().sum::<i64>() as f64);
    }
    let seconds = seconds / runs as f64;

    let fold = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::INFINITY, f64::min),
            v.iter().cloned().fold(0.0, f64::max),
        )
    };
    let (min_read, max_read) = fold(&reads);
    let (min_write, max_write) = fold(&writes);
    let elems = volume as f64 / 16.0;
    Ok(ResortRow {
        n,
        runs,
        expected_read: expected.0 as f64,
        expected_write: expected.1 as f64,
        min_read,
        max_read,
        min_write,
        max_write,
        per_elem_read: (reads.iter().sum::<f64>() / runs as f64) / 16.0 / elems,
        per_elem_write: (writes.iter().sum::<f64>() / runs as f64) / 16.0 / elems,
        seconds,
    })
}

/// One row of the Fig. 10 bandwidth comparison.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthRow {
    pub routine: &'static str,
    pub n: usize,
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub seconds: f64,
}

/// Run one resort routine at scale and report raw counter deltas and
/// simulated wall time (Fig. 10 derives bandwidth from these).
pub fn bandwidth_point(
    make: MakeResort,
    routine: &'static str,
    n: usize,
    seed: u64,
) -> BandwidthRow {
    #[cfg(feature = "obs")]
    let _span = obs::span!("bench.bandwidth_point", n as u64);
    let (mut machine, _setup) = crate::node(System::Summit, seed);
    let active = machine.arch().node.sockets[0].usable_cores;
    let trace = make(&mut machine, n);
    let shared = machine.socket_shared(0);
    // privilege-ok: the sweep driver is the node's operator; it reads the
    // same SocketShared handle its PAPI stack opened with an elevated
    // token during setup_node.
    let before = shared.counters().snapshot();
    let t0 = shared.now_seconds();
    machine.run_parallel(0, active, |tid, core| {
        if tid == 0 {
            trace.run(core);
        }
    });
    // privilege-ok: same operator read as `before` above.
    let d = shared.counters().snapshot().delta(&before);
    let dt = shared.now_seconds() - t0;
    BandwidthRow {
        routine,
        n,
        read_bytes: d.total_read(),
        write_bytes: d.total_write(),
        seconds: dt,
    }
}

/// Column header of the resort CSVs (Figs. 6–9).
pub const RESORT_CSV_COLUMNS: &str = "n,runs,expected_read,expected_write,min_read,max_read,min_write,max_write,reads_per_elem,writes_per_elem,seconds";

/// Column header of the GEMM CSVs (Figs. 2–4).
pub const GEMM_CSV_COLUMNS: &str =
    "n,reps,expected_read,expected_write,measured_read,measured_write,read_ratio,write_ratio";

/// Column header of the GEMV CSV (Fig. 5).
pub const GEMV_CSV_COLUMNS: &str =
    "m,n,reps,expected_read,expected_write,measured_read,measured_write,read_ratio,write_ratio";

/// Column header of the bandwidth CSV (Fig. 10).
pub const BANDWIDTH_CSV_COLUMNS: &str =
    "routine,n,read_bytes,write_bytes,seconds,bandwidth_GBps,reads_per_write";

/// The `# cache-region bounds …` comment line above GEMM CSVs.
pub fn gemm_bounds_line() -> String {
    let bounds = blas_kernels::gemm_cache_bounds(p9_arch::L3_PER_CORE_BYTES);
    format!(
        "# cache-region bounds (Eq. 3/4): N in [{}, {}]",
        bounds.0, bounds.1
    )
}

impl GemmRow {
    pub fn csv_line(&self) -> String {
        format!(
            "{},{},{:.0},{:.0},{:.0},{:.0},{:.3},{:.3}",
            self.n,
            self.reps,
            self.expected_read,
            self.expected_write,
            self.measured_read,
            self.measured_write,
            self.measured_read / self.expected_read,
            self.measured_write / self.expected_write,
        )
    }

    /// Bytes the simulator moved for this point (throughput statistic).
    pub fn sim_bytes(&self) -> u64 {
        (self.measured_read + self.measured_write) as u64
    }
}

impl GemvRow {
    pub fn csv_line(&self) -> String {
        format!(
            "{},{},{},{:.0},{:.0},{:.0},{:.0},{:.3},{:.3}",
            self.m,
            self.n,
            self.reps,
            self.expected_read,
            self.expected_write,
            self.measured_read,
            self.measured_write,
            self.measured_read / self.expected_read,
            self.measured_write / self.expected_write,
        )
    }

    /// Bytes the simulator moved for this point.
    pub fn sim_bytes(&self) -> u64 {
        (self.measured_read + self.measured_write) as u64
    }
}

impl ResortRow {
    pub fn csv_line(&self) -> String {
        format!(
            "{},{},{:.0},{:.0},{:.0},{:.0},{:.0},{:.0},{:.3},{:.3},{:.6}",
            self.n,
            self.runs,
            self.expected_read,
            self.expected_write,
            self.min_read,
            self.max_read,
            self.min_write,
            self.max_write,
            self.per_elem_read,
            self.per_elem_write,
            self.seconds
        )
    }

    /// Bytes the simulator moved for this point (sum over runs of the
    /// mean measured traffic).
    pub fn sim_bytes(&self) -> u64 {
        let mean = (self.min_read + self.max_read + self.min_write + self.max_write) / 2.0;
        (mean * self.runs as f64) as u64
    }
}

impl BandwidthRow {
    pub fn csv_line(&self) -> String {
        let moved = (self.read_bytes + self.write_bytes) as f64;
        format!(
            "{},{},{},{},{:.6},{:.3},{:.3}",
            self.routine,
            self.n,
            self.read_bytes,
            self.write_bytes,
            self.seconds,
            moved / self.seconds / 1e9,
            self.read_bytes as f64 / self.write_bytes.max(1) as f64,
        )
    }

    pub fn sim_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_point_is_deterministic_per_seed() {
        let a = gemm_point(System::Summit, 1, 64, 1, 42).unwrap();
        let b = gemm_point(System::Summit, 1, 64, 1, 42).unwrap();
        assert_eq!(a.csv_line(), b.csv_line());
        let c = gemm_point(System::Summit, 1, 64, 1, 43).unwrap();
        // Different seed, different noise: the measured columns move.
        assert_ne!(
            (a.measured_read, a.measured_write),
            (c.measured_read, c.measured_write)
        );
        assert_eq!(a.expected_read, c.expected_read);
    }

    #[test]
    fn csv_lines_have_the_documented_arity() {
        let r = gemm_point(System::Summit, 1, 64, 1, 1).unwrap();
        assert_eq!(
            r.csv_line().split(',').count(),
            GEMM_CSV_COLUMNS.split(',').count()
        );
        let v = gemv_point(System::Summit, 21, 128, 1).unwrap();
        assert_eq!(
            v.csv_line().split(',').count(),
            GEMV_CSV_COLUMNS.split(',').count()
        );
    }
}
