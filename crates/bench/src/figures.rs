//! Measurement drivers shared by the figure binaries.

use blas_kernels::{
    measure_traffic, BatchedCappedGemvTrace, BatchedGemmTrace, MeasureConfig, NestEvents,
};
use fft3d::resort::ResortTrace;
use p9_memsim::SimMachine;
use papi_sim::EventSet;

use crate::System;

/// One row of a GEMM sweep (Figs. 2–4).
#[derive(Clone, Copy, Debug)]
pub struct GemmRow {
    pub n: u64,
    pub reps: u32,
    pub expected_read: f64,
    pub expected_write: f64,
    pub measured_read: f64,
    pub measured_write: f64,
}

/// Measure a GEMM sweep. `threads = 1` for the single-threaded kernel,
/// `21` for the batched one; `reps_of(n)` picks the repetition count
/// (`|_| 1` for Fig. 2, Eq. 5 for Figs. 3–4).
pub fn gemm_sweep(
    system: System,
    threads: usize,
    sizes: &[u64],
    reps_of: impl Fn(u64) -> u32,
    seed: u64,
) -> Vec<GemmRow> {
    let (mut machine, setup) = crate::node(system, seed);
    let events = match system {
        System::Summit => NestEvents::pcp(&machine),
        System::Tellico => NestEvents::uncore(),
    };
    sizes
        .iter()
        .map(|&n| {
            #[cfg(feature = "obs")]
            let _span = obs::span!("bench.gemm_point", n);
            let reps = reps_of(n);
            let cfg = MeasureConfig {
                reps,
                threads,
                factored: true,
            };
            let sample = measure_traffic(
                &mut machine,
                &setup.papi,
                &events,
                |mach, t| BatchedGemmTrace::allocate(mach, n, t),
                |k, tid, core| k.run_thread(tid, core),
                &cfg,
            )
            .expect("gemm measurement");
            let expect = blas_kernels::gemm_expected(n).batched(threads);
            GemmRow {
                n,
                reps,
                expected_read: expect.read_bytes,
                expected_write: expect.write_bytes,
                measured_read: sample.read_bytes,
                measured_write: sample.write_bytes,
            }
        })
        .collect()
}

/// One row of the capped-GEMV sweep (Fig. 5).
#[derive(Clone, Copy, Debug)]
pub struct GemvRow {
    pub m: u64,
    pub n: u64,
    pub reps: u32,
    pub expected_read: f64,
    pub expected_write: f64,
    pub measured_read: f64,
    pub measured_write: f64,
}

/// The capping width: square GEMV up to `M = 1280`, capped (fixed
/// `N = P = 1280`) beyond, per Section III.
pub const GEMV_CAP: u64 = 1280;

/// Measure the batched, capped GEMV sweep of Fig. 5.
pub fn gemv_sweep(system: System, threads: usize, sizes: &[u64], seed: u64) -> Vec<GemvRow> {
    let (mut machine, setup) = crate::node(system, seed);
    let events = match system {
        System::Summit => NestEvents::pcp(&machine),
        System::Tellico => NestEvents::uncore(),
    };
    sizes
        .iter()
        .map(|&m| {
            #[cfg(feature = "obs")]
            let _span = obs::span!("bench.gemv_point", m);
            let n = m.min(GEMV_CAP);
            let reps = blas_kernels::repetitions(m);
            let cfg = MeasureConfig {
                reps,
                threads,
                factored: true,
            };
            let sample = measure_traffic(
                &mut machine,
                &setup.papi,
                &events,
                |mach, t| BatchedCappedGemvTrace::allocate(mach, m, n, t),
                |k, tid, core| k.run_thread(tid, core),
                &cfg,
            )
            .expect("gemv measurement");
            let expect = blas_kernels::capped_gemv_expected(m, n).batched(threads);
            GemvRow {
                m,
                n,
                reps,
                expected_read: expect.read_bytes,
                expected_write: expect.write_bytes,
                measured_read: sample.read_bytes,
                measured_write: sample.write_bytes,
            }
        })
        .collect()
}

/// One row of a re-sorting figure (Figs. 6–9): min/max over runs.
#[derive(Clone, Copy, Debug)]
pub struct ResortRow {
    pub n: usize,
    pub runs: usize,
    pub expected_read: f64,
    pub expected_write: f64,
    pub min_read: f64,
    pub max_read: f64,
    pub min_write: f64,
    pub max_write: f64,
    /// Per-16-byte-element read/write transactions (the paper's units).
    pub per_elem_read: f64,
    pub per_elem_write: f64,
    /// Mean simulated seconds per run (the Fig. 7b speedup shows here).
    pub seconds: f64,
}

/// Measure one re-sorting routine at size `n`, `runs` independent runs
/// with fresh buffers each (the paper reports min/max of 50 runs).
/// Routines run under the all-cores L3 share (the original loops are
/// OpenMP-parallel across the socket).
pub fn measure_resort(
    make: &dyn Fn(&mut SimMachine, usize) -> Box<dyn ResortTrace>,
    n: usize,
    prefetch: bool,
    runs: usize,
    seed: u64,
) -> ResortRow {
    #[cfg(feature = "obs")]
    let _span = obs::span!("bench.resort_point", n as u64);
    let (mut machine, setup) = crate::node(System::Summit, seed);
    machine.set_software_prefetch(0, prefetch);
    let events = NestEvents::pcp(&machine);
    let mut es = EventSet::new();
    for e in events.reads.iter().chain(&events.writes) {
        es.add_event(e).unwrap();
    }
    let nr = events.reads.len();
    let active = machine.arch().node.sockets[0].usable_cores;

    let mut reads = Vec::with_capacity(runs);
    let mut writes = Vec::with_capacity(runs);
    let mut volume = 0u64;
    let mut expected = (0u64, 0u64);
    let mut seconds = 0.0;
    let shared = machine.socket_shared(0);
    for _ in 0..runs {
        let trace = make(&mut machine, n);
        volume = trace.volume();
        expected = trace.expected();
        es.start(&setup.papi).unwrap();
        let t0 = shared.now_seconds();
        machine.run_parallel(0, active, |tid, core| {
            if tid == 0 {
                trace.run(core);
            }
        });
        seconds += shared.now_seconds() - t0;
        let vals = es.stop().unwrap();
        reads.push(vals[..nr].iter().sum::<i64>() as f64);
        writes.push(vals[nr..].iter().sum::<i64>() as f64);
    }
    let seconds = seconds / runs as f64;

    let fold = |v: &[f64]| {
        (
            v.iter().cloned().fold(f64::INFINITY, f64::min),
            v.iter().cloned().fold(0.0, f64::max),
        )
    };
    let (min_read, max_read) = fold(&reads);
    let (min_write, max_write) = fold(&writes);
    let elems = volume as f64 / 16.0;
    ResortRow {
        n,
        runs,
        expected_read: expected.0 as f64,
        expected_write: expected.1 as f64,
        min_read,
        max_read,
        min_write,
        max_write,
        per_elem_read: (reads.iter().sum::<f64>() / runs as f64) / 16.0 / elems,
        per_elem_write: (writes.iter().sum::<f64>() / runs as f64) / 16.0 / elems,
        seconds,
    }
}

/// Print the CSV of a resort sweep.
pub fn print_resort_rows(rows: &[ResortRow]) {
    println!(
        "n,runs,expected_read,expected_write,min_read,max_read,min_write,max_write,reads_per_elem,writes_per_elem,seconds"
    );
    for r in rows {
        println!(
            "{},{},{:.0},{:.0},{:.0},{:.0},{:.0},{:.0},{:.3},{:.3},{:.6}",
            r.n,
            r.runs,
            r.expected_read,
            r.expected_write,
            r.min_read,
            r.max_read,
            r.min_write,
            r.max_write,
            r.per_elem_read,
            r.per_elem_write,
            r.seconds
        );
    }
}

/// Print the CSV of a GEMM sweep.
pub fn print_gemm_rows(rows: &[GemmRow], cache_bounds: (u64, u64)) {
    println!(
        "# cache-region bounds (Eq. 3/4): N in [{}, {}]",
        cache_bounds.0, cache_bounds.1
    );
    println!(
        "n,reps,expected_read,expected_write,measured_read,measured_write,read_ratio,write_ratio"
    );
    for r in rows {
        println!(
            "{},{},{:.0},{:.0},{:.0},{:.0},{:.3},{:.3}",
            r.n,
            r.reps,
            r.expected_read,
            r.expected_write,
            r.measured_read,
            r.measured_write,
            r.measured_read / r.expected_read,
            r.measured_write / r.expected_write,
        );
    }
}

/// Print the CSV of a GEMV sweep.
pub fn print_gemv_rows(rows: &[GemvRow]) {
    println!(
        "m,n,reps,expected_read,expected_write,measured_read,measured_write,read_ratio,write_ratio"
    );
    for r in rows {
        println!(
            "{},{},{},{:.0},{:.0},{:.0},{:.0},{:.3},{:.3}",
            r.m,
            r.n,
            r.reps,
            r.expected_read,
            r.expected_write,
            r.measured_read,
            r.measured_write,
            r.measured_read / r.expected_read,
            r.measured_write / r.expected_write,
        );
    }
}
