//! Self-observability artifacts for the figure binaries.
//!
//! Every binary calls [`write_artifacts`] once at the end of `main`.
//! When the stack was built with `--features obs` the tracer holds the
//! run's spans, and this writes a Chrome-trace JSON (loadable in
//! `chrome://tracing` / Perfetto) plus a folded-stack file (pipe into
//! `flamegraph.pl`) under `results/`. Without the feature nothing was
//! recorded and the call is a no-op, so call sites need no gating.

use std::fs;
use std::path::Path;

/// Drain the tracer and write `results/TRACE_<tag>.json` and
/// `results/FLAME_<tag>.folded`. Returns the number of events written.
pub fn write_artifacts(tag: &str) -> usize {
    let events = obs::drain();
    if events.is_empty() {
        return 0;
    }
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_err() {
        return 0;
    }
    let trace = obs::chrome::chrome_trace_json(&events);
    let _ = fs::write(dir.join(format!("TRACE_{tag}.json")), trace);
    let folded = obs::flame::folded_stacks(&events);
    let _ = fs::write(dir.join(format!("FLAME_{tag}.folded")), folded);
    eprintln!(
        "# obs: {} events -> results/TRACE_{tag}.json, results/FLAME_{tag}.folded ({} dropped)",
        events.len(),
        obs::dropped_records(),
    );
    events.len()
}

/// Render the global metric registry as a live-dashboard table to
/// stderr (counters, gauges, histogram sparklines). Metrics are always
/// on, so this shows MBA accounting totals even without the feature.
pub fn print_dashboard() {
    eprint!("{}", obs::dashboard::render(obs::registry()));
}

/// The canonical live-monitoring rules (DESIGN.md §11), shared by the
/// repro runner, the live-monitor smoke binary and the golden-figure
/// suite: a clean run must never shed scrape requests nor let the
/// server-side fetch p99 cross one second.
pub fn canonical_rules() -> Vec<obs::Rule> {
    vec![
        obs::Rule {
            name: "alert.queue.shedding",
            metric: "wire.scrape.shed",
            predicate: obs::Predicate::RateAbove(0.0),
        },
        obs::Rule {
            name: "alert.fetch.p99_over_budget",
            metric: "pmcd.fetch.latency_ns.p99",
            predicate: obs::Predicate::ValueAbove(1_000_000_000),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_written_when_events_exist() {
        let tmp = std::env::temp_dir().join(format!("obsreport-test-{}", std::process::id()));
        fs::create_dir_all(&tmp).unwrap();
        let cwd = std::env::current_dir().unwrap();
        std::env::set_current_dir(&tmp).unwrap();

        {
            let _span = obs::trace::SpanGuard::new("obsreport.test");
        }
        let n = write_artifacts("test");
        // Other tests in this binary may have drained first; only check
        // the artifact when our span survived until the drain.
        if n > 0 {
            let doc = fs::read_to_string("results/TRACE_test.json").unwrap();
            assert!(obs::chrome::parse_chrome_trace(&doc).is_ok());
            assert!(fs::metadata("results/FLAME_test.folded").is_ok());
        }

        std::env::set_current_dir(cwd).unwrap();
        let _ = fs::remove_dir_all(&tmp);
    }
}
