//! The experiment registry: every figure, table and study of the paper
//! as a declarative [`Experiment`] the parallel runner can execute.
//!
//! This is the single source of truth the thin per-figure binaries
//! (`fig1` … `papi_avail`) and the `repro` orchestrator both build from.
//! Each experiment decomposes into independent sweep points; a point's
//! machine seed derives from the experiment's base seed via
//! [`crate::point_seed`], so sequential and parallel execution produce
//! bit-identical output.

use std::fmt;
use std::sync::Arc;

use fft3d::gpu::GpuFft3dRank;
use fft3d::resort::{LocalDims, ResortTrace, S1cfCombined, S1cfNest1, S1cfNest2, S2cf};
use nvml_sim::{GpuDevice, GpuParams};
use p9_memsim::{ModelPolicy, SimMachine};
use papi_profiling::{Column, Profiler};
use papi_sim::components::{IbComponent, NvmlComponent, PcpComponent};
use pcp_sim::{PcpContext, Pmcd, PmcdConfig, Pmns};
use qmc_mini::app::{QmcApp, QmcConfig};
use ranksim::{ClusterSim, ProcessGrid};

use crate::figures::{self, bandwidth_point, gemm_point, gemv_point, measure_resort, MakeResort};
use crate::runner::{Experiment, Point, PointOutput, RunnerError};
use crate::{fft_sizes_for, gemm_sizes_for, gemv_sizes_for, header_lines, point_seed};
use crate::{Args, Mode, System};

/// Every registered experiment tag, in canonical (paper) order.
pub const TAGS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table1",
    "table2",
    "ablation",
    "papi_avail",
    "refute",
];

/// Map a point-level failure source into a typed runner error.
fn perr(tag: &'static str, label: &str, e: impl fmt::Display) -> RunnerError {
    RunnerError::Point {
        experiment: tag.to_owned(),
        point: label.to_owned(),
        message: e.to_string(),
    }
}

/// Build one experiment. Returns `None` for an unknown tag. `args`
/// supplies the per-figure knobs the binaries have always accepted
/// (`--seed`, `--system`, `--mode`, `--runs`, `--n`, …).
pub fn build(tag: &str, mode: Mode, args: &Args) -> Option<Experiment> {
    match tag {
        "fig1" => Some(fig1(args)),
        "fig2" => Some(fig2(mode, args)),
        "fig3" => Some(gemm_adaptive(
            "fig3",
            System::Summit,
            21,
            "PCP",
            3,
            mode,
            args,
        )),
        "fig4" => Some(gemm_adaptive(
            "fig4",
            System::Tellico,
            16,
            "perf_uncore on Tellico",
            4,
            mode,
            args,
        )),
        "fig5" => Some(fig5(mode, args)),
        "fig6" => Some(resort_figure(
            "fig6",
            "S1CF loop nest 1",
            make_nest1,
            &[false, true],
            6,
            mode,
            args,
        )),
        "fig7" => Some(fig7(mode, args)),
        "fig8" => Some(fig8(mode, args)),
        "fig9" => Some(resort_figure(
            "fig9",
            "S2CF",
            make_s2cf,
            &[false, true],
            9,
            mode,
            args,
        )),
        "fig10" => Some(fig10(mode, args)),
        "fig11" => Some(fig11(mode, args)),
        "fig12" => Some(fig12(mode, args)),
        "table1" => Some(table1()),
        "table2" => Some(table2()),
        "ablation" => Some(ablation(mode)),
        "papi_avail" => Some(papi_avail(args)),
        "refute" => Some(refute_exp(args)),
        _ => None,
    }
}

/// Build every experiment of the catalog for one mode (the `repro`
/// orchestrator's default work list).
pub fn build_all(mode: Mode, args: &Args) -> Vec<Experiment> {
    TAGS.iter().filter_map(|t| build(t, mode, args)).collect()
}

/// Entry point of the thin per-figure binaries: parse the common flags,
/// build the experiment, run it (sequentially unless `--workers` says
/// otherwise) and print its composed output.
pub fn run_bin(tag: &'static str) -> std::process::ExitCode {
    let args = Args::parse();
    let mode = Mode::from_args(&args);
    let Some(exp) = build(tag, mode, &args) else {
        eprintln!("unknown experiment tag: {tag}");
        return std::process::ExitCode::FAILURE;
    };
    let workers = args.get_usize("workers", 1);
    let report = crate::runner::run_experiments(vec![exp], workers);
    let mut failed = false;
    for er in &report.experiments {
        print!("{}", er.output);
        for e in &er.errors {
            eprintln!("error: {e}");
            failed = true;
        }
    }
    crate::obsreport::write_artifacts(tag);
    if failed {
        std::process::ExitCode::FAILURE
    } else {
        std::process::ExitCode::SUCCESS
    }
}

// --- resort trace constructors (fn pointers keep points `Send`) -------

fn make_nest1(m: &mut SimMachine, n: usize) -> Box<dyn ResortTrace> {
    Box::new(S1cfNest1::allocate(m, LocalDims::for_grid(n, 2, 4)))
}

fn make_nest2(m: &mut SimMachine, n: usize) -> Box<dyn ResortTrace> {
    Box::new(S1cfNest2::allocate(m, LocalDims::for_grid(n, 2, 4)))
}

fn make_combined(m: &mut SimMachine, n: usize) -> Box<dyn ResortTrace> {
    Box::new(S1cfCombined::allocate(m, LocalDims::for_grid(n, 2, 4)))
}

fn make_s2cf(m: &mut SimMachine, n: usize) -> Box<dyn ResortTrace> {
    Box::new(S2cf::for_grid(m, n, 2, 4))
}

fn make_combined_4x8(m: &mut SimMachine, n: usize) -> Box<dyn ResortTrace> {
    Box::new(S1cfCombined::allocate(m, LocalDims::for_grid(n, 4, 8)))
}

fn make_s2cf_4x8(m: &mut SimMachine, n: usize) -> Box<dyn ResortTrace> {
    Box::new(S2cf::for_grid(m, n, 4, 8))
}

// --- Fig. 1 -----------------------------------------------------------

fn fig1(args: &Args) -> Experiment {
    let m = args.get_u64("m", 4096).max(1);
    let n = args.get_u64("n", 1280).max(1);
    let mut exp = Experiment::new("fig1", "Capped-GEMV memory-usage schematic");
    exp.push(Point::run("schematic", move || {
        Ok(PointOutput::text(fig1_text(m, n)))
    }));
    exp
}

fn fig1_text(m: u64, n: u64) -> String {
    use blas_kernels::CappedGemvTrace;
    let mut machine = SimMachine::summit(1);
    let t = CappedGemvTrace::allocate(&mut machine, m, n);
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 1: capped GEMV memory usage (M = {m}, N = {n}, P = {})\n\n",
        t.p
    ));
    let width = 40usize;
    let rows = 16usize;
    let cap_rows = ((t.p as f64 / m as f64) * rows as f64).ceil().max(1.0) as usize;
    out.push_str("        x (N elements, read once)\n");
    out.push_str(&format!("   +{}+\n", "-".repeat(width)));
    for r in 0..rows.min(cap_rows) {
        let tag = if r == cap_rows / 2 {
            " A (allocated: P x N)"
        } else {
            ""
        };
        out.push_str(&format!("   |{}|{tag}\n", "#".repeat(width)));
    }
    for r in cap_rows..rows {
        let tag = if r == (cap_rows + rows) / 2 {
            " rows i >= P reuse row i mod P (never allocated)"
        } else {
            ""
        };
        out.push_str(&format!("   |{}|{tag}\n", "/ ".repeat(width / 2)));
    }
    out.push_str(&format!("   +{}+\n", "-".repeat(width)));
    out.push_str("        y (M elements, written once)\n\n");
    let full = m * n * 8;
    let capped = t.p * n * 8;
    out.push_str(&format!(
        "allocated A: {} MiB (vs {} MiB uncapped) -> {:.1}x saving at equal write traffic\n",
        capped >> 20,
        full >> 20,
        full as f64 / capped as f64
    ));
    out
}

// --- Figs. 2–4: GEMM sweeps -------------------------------------------

// A sweep section is genuinely 8-dimensional; bundling into a struct
// would only rename the arguments.
#[allow(clippy::too_many_arguments)]
fn push_gemm_rows(
    exp: &mut Experiment,
    tag: &'static str,
    system: System,
    threads: usize,
    reps_of: fn(u64) -> u32,
    sizes: &[u64],
    base_seed: u64,
    section: u64,
) {
    exp.push(Point::fixed(figures::gemm_bounds_line()));
    exp.push(Point::fixed(figures::GEMM_CSV_COLUMNS));
    for &n in sizes {
        let seed = point_seed(base_seed, tag, section * 1_000_000 + n);
        exp.push(Point::run(format!("n={n}"), move || {
            let row = gemm_point(system, threads, n, reps_of(n), seed)
                .map_err(|e| perr(tag, &format!("n={n}"), e))?;
            Ok(PointOutput::with_bytes(row.csv_line(), row.sim_bytes()))
        }));
    }
}

fn one_rep(_: u64) -> u32 {
    1
}

fn fig2(mode: Mode, args: &Args) -> Experiment {
    let system = System::from_arg(&args.get_or("system", "summit"));
    let sizes = gemm_sizes_for(mode);
    let seed = args.get_u64("seed", 2);
    let mut exp = Experiment::new("fig2", "Single-threaded GEMM, 1 repetition");
    exp.push(Point::fixed(header_lines(
        "Fig. 2: single-threaded GEMM, 1 repetition",
        &[
            ("system", system.name().into()),
            (
                "events",
                if system == System::Summit {
                    "pcp".into()
                } else {
                    "perf_uncore".into()
                },
            ),
            ("seed", seed.to_string()),
        ],
    )));
    push_gemm_rows(&mut exp, "fig2", system, 1, one_rep, &sizes, seed, 0);
    exp
}

/// Figs. 3 and 4: the single-vs-batched adaptive-repetition comparison,
/// on Summit/PCP (Fig. 3) or Tellico/perf_uncore (Fig. 4).
fn gemm_adaptive(
    tag: &'static str,
    system: System,
    batched_threads: usize,
    events_label: &str,
    default_seed: u64,
    mode: Mode,
    args: &Args,
) -> Experiment {
    let run_mode = args.get_or("mode", "both");
    let sizes = gemm_sizes_for(mode);
    let seed = args.get_u64("seed", default_seed);
    let fig_no = if tag == "fig3" { 3 } else { 4 };
    let scheme = if tag == "fig3" {
        "adaptive repetitions (Eq. 5), PCP".to_owned()
    } else {
        format!("adaptive repetitions, {events_label}")
    };
    let mut exp = Experiment::new(
        tag,
        format!("GEMM single vs batched, adaptive repetitions ({events_label})"),
    );
    let mut sections: Vec<(&str, usize)> = Vec::new();
    if run_mode == "single" || run_mode == "both" {
        sections.push(("single", 1));
    }
    if run_mode == "batched" || run_mode == "both" {
        sections.push(("batched", batched_threads));
    }
    for (sec, (label, threads)) in sections.into_iter().enumerate() {
        exp.push(Point::fixed(header_lines(
            &format!("Fig. {fig_no} ({label}): GEMM, {scheme}"),
            &[("threads", threads.to_string()), ("seed", seed.to_string())],
        )));
        push_gemm_rows(
            &mut exp,
            tag,
            system,
            threads,
            blas_kernels::repetitions,
            &sizes,
            seed,
            sec as u64,
        );
        exp.push(Point::fixed("\n"));
    }
    exp
}

// --- Fig. 5: capped GEMV ----------------------------------------------

fn fig5(mode: Mode, args: &Args) -> Experiment {
    let system = System::from_arg(&args.get_or("system", "summit"));
    let sizes = gemv_sizes_for(mode);
    let seed = args.get_u64("seed", 5);
    let threads = if system == System::Summit { 21 } else { 16 };
    let mut exp = Experiment::new("fig5", "Batched, capped GEMV");
    exp.push(Point::fixed(header_lines(
        "Fig. 5: batched, capped GEMV",
        &[
            ("system", system.name().into()),
            ("threads", threads.to_string()),
            ("cap (M=N=P transition)", figures::GEMV_CAP.to_string()),
            ("seed", seed.to_string()),
        ],
    )));
    exp.push(Point::fixed(figures::GEMV_CSV_COLUMNS));
    for &m in &sizes {
        let seed = point_seed(seed, "fig5", m);
        exp.push(Point::run(format!("m={m}"), move || {
            let row = gemv_point(system, threads, m, seed)
                .map_err(|e| perr("fig5", &format!("m={m}"), e))?;
            Ok(PointOutput::with_bytes(row.csv_line(), row.sim_bytes()))
        }));
    }
    exp
}

// --- Figs. 6–9: re-sorting sweeps -------------------------------------

fn resort_runs(mode: Mode, args: &Args) -> usize {
    let default = if mode == Mode::Quick { 1 } else { 2 };
    args.get_usize("runs", default).max(1)
}

#[allow(clippy::too_many_arguments)]
fn push_resort_rows(
    exp: &mut Experiment,
    tag: &'static str,
    make: MakeResort,
    sizes: &[usize],
    prefetch: bool,
    runs: usize,
    base_seed: u64,
    section: u64,
) {
    exp.push(Point::fixed(figures::RESORT_CSV_COLUMNS));
    for &n in sizes {
        let seed = point_seed(base_seed, tag, section * 1_000_000 + n as u64);
        exp.push(Point::run(format!("n={n}"), move || {
            let row = measure_resort(make, n, prefetch, runs, seed)
                .map_err(|e| perr(tag, &format!("n={n}"), e))?;
            Ok(PointOutput::with_bytes(row.csv_line(), row.sim_bytes()))
        }));
    }
}

/// Figs. 6 and 9 share their shape: one routine, a section without and
/// (optionally) with `-fprefetch-loop-arrays`.
fn resort_figure(
    tag: &'static str,
    routine: &'static str,
    make: MakeResort,
    prefetch_variants: &[bool],
    default_seed: u64,
    mode: Mode,
    args: &Args,
) -> Experiment {
    let sizes = fft_sizes_for(mode);
    let runs = resort_runs(mode, args);
    let seed = args.get_u64("seed", default_seed);
    let fig_no = if tag == "fig6" { 6 } else { 9 };
    let mut exp = Experiment::new(tag, format!("{routine} memory traffic"));
    for (sec, &prefetch) in prefetch_variants.iter().enumerate() {
        exp.push(Point::fixed(header_lines(
            &format!(
                "Fig. {fig_no}{}: {routine}, {} -fprefetch-loop-arrays",
                if prefetch { 'b' } else { 'a' },
                if prefetch { "with" } else { "without" }
            ),
            &[("grid", "2x4".into()), ("runs", runs.to_string())],
        )));
        push_resort_rows(
            &mut exp, tag, make, &sizes, prefetch, runs, seed, sec as u64,
        );
        exp.push(Point::fixed("\n"));
    }
    exp
}

fn fig7(mode: Mode, args: &Args) -> Experiment {
    let sizes = fft_sizes_for(mode);
    let runs = resort_runs(mode, args);
    let seed = args.get_u64("seed", 7);
    let bound = fft3d::model::eq7_bound(p9_arch::L3_PER_CORE_BYTES, 8);
    let mut exp = Experiment::new("fig7", "S1CF loop nest 2 memory traffic");
    for (sec, prefetch) in [false, true].into_iter().enumerate() {
        exp.push(Point::fixed(header_lines(
            &format!(
                "Fig. 7{}: S1CF loop nest 2, {} -fprefetch-loop-arrays",
                if prefetch { 'b' } else { 'a' },
                if prefetch { "with" } else { "without" }
            ),
            &[
                ("grid", "2x4".into()),
                ("runs", runs.to_string()),
                ("eq7 bound", bound.to_string()),
            ],
        )));
        push_resort_rows(
            &mut exp, "fig7", make_nest2, &sizes, prefetch, runs, seed, sec as u64,
        );
        exp.push(Point::fixed("\n"));
    }
    exp
}

fn fig8(mode: Mode, args: &Args) -> Experiment {
    let sizes = fft_sizes_for(mode);
    let runs = resort_runs(mode, args);
    let seed = args.get_u64("seed", 8);
    let mut exp = Experiment::new("fig8", "S1CF combined loop nest memory traffic");
    exp.push(Point::fixed(header_lines(
        "Fig. 8: S1CF combined loop nest, no additional compiler optimizations",
        &[("grid", "2x4".into()), ("runs", runs.to_string())],
    )));
    push_resort_rows(
        &mut exp,
        "fig8",
        make_combined,
        &sizes,
        false,
        runs,
        seed,
        0,
    );
    exp
}

// --- Fig. 10: bandwidth at scale --------------------------------------

fn fig10(mode: Mode, args: &Args) -> Experiment {
    let seed = args.get_u64("seed", 10);
    let (r, c) = (4usize, 8usize);
    let sizes: Vec<usize> = match mode {
        Mode::Quick => vec![672],
        // 1344 runs in seconds; 2016 is the paper's larger size.
        Mode::Default => vec![672, 1344],
        Mode::Full => vec![1344, 2016],
    };
    let mut exp = Experiment::new("fig10", "S1CF vs S2CF bandwidth at scale");
    exp.push(Point::fixed(header_lines(
        "Fig. 10: S1CF vs S2CF bandwidth, 16 nodes, 4x8 grid",
        &[
            ("grid", format!("{r}x{c}")),
            ("sizes", format!("{sizes:?}")),
            ("seed", seed.to_string()),
        ],
    )));
    exp.push(Point::fixed(figures::BANDWIDTH_CSV_COLUMNS));
    for &n in &sizes {
        for (ri, routine) in ["S1CF", "S2CF"].into_iter().enumerate() {
            let make = if ri == 0 {
                make_combined_4x8
            } else {
                make_s2cf_4x8
            };
            let seed = point_seed(seed, "fig10", n as u64 * 10 + ri as u64);
            exp.push(Point::run(format!("{routine} n={n}"), move || {
                let row = bandwidth_point(make, routine, n, seed);
                Ok(PointOutput::with_bytes(row.csv_line(), row.sim_bytes()))
            }));
        }
    }
    exp
}

// --- Figs. 11–12: multi-component profiles ----------------------------

/// The four columns both application profiles monitor (Table II events).
fn profile_columns() -> Vec<Column> {
    vec![
        Column::gauge("nvml:::Tesla_V100-SXM2-16GB:device_0:power", "gpu_power_mW"),
        Column::counter(
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value:cpu87",
            "mem_read_Bps",
        )
        .scaled(8.0),
        Column::counter(
            "pcp:::perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value:cpu87",
            "mem_write_Bps",
        )
        .scaled(8.0),
        Column::counter(
            "infiniband:::mlx5_0_1_ext:port_recv_data",
            "ib_recv_words_ps",
        )
        .scaled(2.0),
    ]
}

/// Wire a cluster's PAPI stack: PCP over the instrumented node's
/// sockets, NVML over the pipeline's GPU, InfiniBand over node 0's
/// rails. Returns the stack plus the PMCD whose lifetime bounds it.
fn profile_papi(
    tag: &'static str,
    cluster: &ClusterSim,
    gpu: &Arc<GpuDevice>,
) -> Result<(papi_sim::Papi, Pmcd), RunnerError> {
    let pmns = Pmns::for_machine(cluster.machine().arch());
    let sockets: Vec<_> = (0..cluster.machine().num_sockets())
        .map(|s| cluster.machine().socket_shared(s))
        .collect();
    let pmcd = Pmcd::spawn_system(pmns.clone(), sockets.clone(), PmcdConfig::default())
        .map_err(|e| perr(tag, "pmcd", e))?;
    let ctx = PcpContext::connect(pmcd.handle(), Some(cluster.machine().socket_shared(0)));
    let mut papi = papi_sim::Papi::new();
    papi.register(Box::new(PcpComponent::new(ctx, pmns, sockets)));
    papi.register(Box::new(NvmlComponent::new(vec![Arc::clone(gpu)])));
    papi.register(Box::new(IbComponent::new(
        cluster.fabric().node(0).hcas.clone(),
    )));
    Ok((papi, pmcd))
}

fn timeline_text(timeline: &papi_profiling::Timeline) -> String {
    let mut out = String::new();
    out.push_str(&timeline.to_csv());
    out.push('\n');
    out.push_str("# phase means:\n");
    out.push_str("phase,gpu_power_mW,mem_read_Bps,mem_write_Bps,ib_recv_words_ps\n");
    for (phase, means) in timeline.phase_summary() {
        out.push_str(&format!(
            "{phase},{:.0},{:.3e},{:.3e},{:.3e}\n",
            means[0], means[1], means[2], means[3]
        ));
    }
    out
}

fn fig11(mode: Mode, args: &Args) -> Experiment {
    let (dn, ds) = if mode == Mode::Quick {
        (448, 2)
    } else {
        (896, 6)
    };
    let n = args.get_usize("n", dn);
    let slabs = args.get_usize("slabs", ds);
    let seed = args.get_u64("seed", 11);
    let mut exp = Experiment::new("fig11", "Multi-component profile of a 3D-FFT rank");
    exp.push(Point::fixed(header_lines(
        "Fig. 11: performance profile of a single 3D-FFT rank",
        &[
            ("grid", "8x8 (32 nodes)".into()),
            ("N", n.to_string()),
            ("slabs per phase", slabs.to_string()),
        ],
    )));
    exp.push(Point::run("profile", move || {
        fig11_profile(n, slabs, seed).map(PointOutput::text)
    }));
    exp
}

fn fig11_profile(n: usize, slabs: usize, seed: u64) -> Result<String, RunnerError> {
    let tag = "fig11";
    let machine = System::Summit.machine(seed);
    let gpu = Arc::new(GpuDevice::new(
        0,
        GpuParams::default(),
        machine.socket_shared(0),
    ));
    let mut cluster = ClusterSim::new(machine, ProcessGrid::new(8, 8), 2);
    let rank = GpuFft3dRank::new(&mut cluster, Arc::clone(&gpu), n, slabs);
    let (papi, _pmcd) = profile_papi(tag, &cluster, &gpu)?;

    let mut profiler =
        Profiler::start(&papi, profile_columns()).map_err(|e| perr(tag, "profiler start", e))?;
    let mut tick_err: Option<papi_sim::PapiError> = None;
    rank.run(&mut cluster, |phase, cl| {
        let now = cl.machine().socket_shared(0).now_seconds();
        if tick_err.is_none() {
            if let Err(e) = profiler.tick(phase, now) {
                tick_err = Some(e);
            }
        }
    });
    if let Some(e) = tick_err {
        return Err(perr(tag, "sample", e));
    }
    let timeline = profiler
        .finish()
        .map_err(|e| perr(tag, "profiler stop", e))?;
    Ok(timeline_text(&timeline))
}

fn fig12(mode: Mode, args: &Args) -> Experiment {
    let (dw, db, dst) = if mode == Mode::Quick {
        (256, 3, 10)
    } else {
        (1024, 10, 30)
    };
    let seed = args.get_u64("seed", 12);
    let cfg = QmcConfig {
        walkers: args.get_usize("walkers", dw),
        blocks_per_phase: args.get_usize("blocks", db),
        steps_per_block: args.get_usize("steps", dst),
        alpha: 0.85,
        seed,
    };
    let mut exp = Experiment::new("fig12", "Multi-component profile of a QMCPACK rank");
    exp.push(Point::fixed(header_lines(
        "Fig. 12: performance profile of a single QMCPACK rank",
        &[
            ("phases", "vmc, vmc-drift, dmc".into()),
            ("walkers", cfg.walkers.to_string()),
            ("blocks/phase", cfg.blocks_per_phase.to_string()),
        ],
    )));
    exp.push(Point::run("profile", move || {
        fig12_profile(cfg).map(PointOutput::text)
    }));
    exp
}

fn fig12_profile(cfg: QmcConfig) -> Result<String, RunnerError> {
    let tag = "fig12";
    let machine = System::Summit.machine(cfg.seed);
    let gpu = Arc::new(GpuDevice::new(
        0,
        GpuParams::default(),
        machine.socket_shared(0),
    ));
    let mut cluster = ClusterSim::new(machine, ProcessGrid::new(4, 4), 2);
    let app = QmcApp::new(&mut cluster, Arc::clone(&gpu), cfg);
    let (papi, _pmcd) = profile_papi(tag, &cluster, &gpu)?;

    let mut profiler =
        Profiler::start(&papi, profile_columns()).map_err(|e| perr(tag, "profiler start", e))?;
    let mut tick_err: Option<papi_sim::PapiError> = None;
    let result = app.run(&mut cluster, |phase, cl| {
        let now = cl.machine().socket_shared(0).now_seconds();
        if tick_err.is_none() {
            if let Err(e) = profiler.tick(phase, now) {
                tick_err = Some(e);
            }
        }
    });
    if let Some(e) = tick_err {
        return Err(perr(tag, "sample", e));
    }
    let timeline = profiler
        .finish()
        .map_err(|e| perr(tag, "profiler stop", e))?;
    let mut out = timeline_text(&timeline);
    out.push('\n');
    out.push_str(&format!(
        "# physics check: E(vmc)={:.4}, E(vmc-drift)={:.4}, E(dmc)={:.4} (exact 1.5)\n",
        result.vmc_energy, result.vmc_drift_energy, result.dmc_energy
    ));
    Ok(out)
}

// --- Tables and listings ----------------------------------------------

fn table1() -> Experiment {
    let mut exp = Experiment::new("table1", "Architectures and performance events");
    exp.push(Point::run("listing", || {
        Ok(PointOutput::text(table1_text()))
    }));
    exp
}

fn table1_text() -> String {
    let mut out = String::new();
    out.push_str("TABLE I: Architectures and Performance Events\n");
    out.push_str("system,arch,component,event\n");
    for system in [System::Summit, System::Tellico] {
        let (machine, setup) = crate::node(system, 1);
        let arch = "IBM POWER9";
        for status in setup.papi.component_status() {
            if !status.enabled {
                continue;
            }
            if status.name != "pcp" && status.name != "perf_uncore" {
                continue;
            }
            let Ok(comp) = setup.papi.component(&status.name) else {
                continue;
            };
            for ev in comp.list_events() {
                if ev.name.contains("BYTES") {
                    out.push_str(&format!(
                        "{},{},{},{}\n",
                        system.name(),
                        arch,
                        status.name,
                        ev.name
                    ));
                }
            }
        }
        // Also report the disabled path: the access-control story of the
        // paper (Summit users cannot take the direct route).
        for status in setup.papi.component_status() {
            if !status.enabled && status.name == "perf_uncore" {
                out.push_str(&format!(
                    "{},{},{},DISABLED ({})\n",
                    system.name(),
                    arch,
                    status.name,
                    status.reason.as_deref().unwrap_or("")
                ));
            }
        }
        drop(machine);
    }
    out
}

fn table2() -> Experiment {
    let mut exp = Experiment::new("table2", "Supplemental performance events");
    exp.push(Point::run("listing", || {
        Ok(PointOutput::text(table2_text()))
    }));
    exp
}

fn table2_text() -> String {
    use papi_sim::papi::setup_node;
    let machine = SimMachine::summit(1);
    // A two-rail node NIC, as on Summit.
    let nic = ib_sim::NodeNic::new(machine.arch().node.ib_ports);
    let hcas: Vec<Arc<ib_sim::Hca>> = nic.hcas.clone();
    let setup = setup_node(&machine, hcas);

    let mut out = String::new();
    out.push_str("TABLE II: Supplemental Performance Events\n");
    out.push_str("hardware,component,event,units\n");
    for status in setup.papi.component_status() {
        if !status.enabled || (status.name != "nvml" && status.name != "infiniband") {
            continue;
        }
        let Ok(comp) = setup.papi.component(&status.name) else {
            continue;
        };
        let hardware = match status.name.as_str() {
            "nvml" => "NVIDIA Tesla V100 GPU",
            _ => "Mellanox ConnectX-5 Ex",
        };
        for ev in comp.list_events() {
            out.push_str(&format!(
                "{hardware},{},{},{}\n",
                status.name, ev.name, ev.units
            ));
        }
    }
    out
}

// --- Ablation study ---------------------------------------------------

fn quiet() -> SimMachine {
    SimMachine::quiet(p9_arch::Machine::summit(), 101)
}

/// Run a resort trace under `policy` with the all-cores L3 share;
/// returns (reads, writes) per 16-byte element.
fn resort_per_element<T: ResortTrace>(
    make: impl FnOnce(&mut SimMachine) -> T,
    policy: ModelPolicy,
) -> (f64, f64) {
    let mut m = quiet();
    m.set_policy(0, policy);
    let t = make(&mut m);
    let shared = m.socket_shared(0);
    let before = shared.counters().snapshot();
    let active = m.arch().node.sockets[0].usable_cores;
    m.run_parallel(0, active, |tid, core| {
        if tid == 0 {
            t.run(core);
        }
    });
    m.flush_socket(0);
    let d = shared.counters().snapshot().delta(&before);
    let elems = t.volume() as f64 / 16.0;
    (
        d.total_read() as f64 / 16.0 / elems,
        d.total_write() as f64 / 16.0 / elems,
    )
}

/// Streaming-read cycles per sector under `policy`.
fn stream_cycles(policy: ModelPolicy, bytes: u64) -> f64 {
    let mut m = quiet();
    m.set_policy(0, policy);
    let r = m.alloc(bytes);
    let mut cycles = 0;
    m.run_single(0, |core| {
        let c0 = core.cycles();
        core.load_seq(r.base(), bytes);
        cycles = core.cycles() - c0;
    });
    cycles as f64 / (bytes / 64) as f64
}

fn ablation(mode: Mode) -> Experiment {
    let mut exp = Experiment::new("ablation", "Model-mechanism ablation study");
    exp.push(Point::fixed(
        "# Ablation study: model mechanisms vs the paper's phenomena",
    ));
    exp.push(Point::fixed("mechanism,metric,with,without,effect"));
    let on = ModelPolicy::default();
    // Quick mode shrinks the diagnostic problems so the whole study runs
    // in CI time; the mechanism contrasts survive the smaller footprints.
    let (nest1_n, nest2_n, stream_bytes) = match mode {
        Mode::Quick => (112, 560, 2u64 << 20),
        Mode::Default | Mode::Full => (224, 672, 8u64 << 20),
    };

    exp.push(Point::run("store_gather_bypass", move || {
        let off = ModelPolicy {
            store_gather_bypass: false,
            ..on
        };
        let dims = LocalDims::for_grid(nest1_n, 2, 4);
        let (r_on, _) = resort_per_element(|m| S1cfNest1::allocate(m, dims), on);
        let (r_off, _) = resort_per_element(|m| S1cfNest1::allocate(m, dims), off);
        Ok(PointOutput::text(format!(
            "store_gather_bypass,S1CF-nest1 reads/elem,{r_on:.2},{r_off:.2},\
             bypass removes the read-for-ownership (Fig. 6a vs 6b)"
        )))
    }));

    exp.push(Point::run("anti_pollution", move || {
        let off = ModelPolicy {
            anti_pollution: false,
            ..on
        };
        let dims = LocalDims::for_grid(nest2_n, 2, 4);
        let (r_on, _) = resort_per_element(|m| S1cfNest2::allocate(m, dims), on);
        let (r_off, _) = resort_per_element(|m| S1cfNest2::allocate(m, dims), off);
        Ok(PointOutput::text(format!(
            "anti_pollution,S1CF-nest2 reads/elem near Eq.7 (N={nest2_n}),{r_on:.2},{r_off:.2},\
             streaming stores flushing the tmp window would smear the Eq.7 crossover"
        )))
    }));

    exp.push(Point::run("hw_prefetch", move || {
        let off = ModelPolicy {
            hw_prefetch: false,
            ..on
        };
        let c_on = stream_cycles(on, stream_bytes);
        let c_off = stream_cycles(off, stream_bytes);
        Ok(PointOutput::text(format!(
            "hw_prefetch,stream-read cycles/sector,{c_on:.1},{c_off:.1},\
             prefetch hides the demand-miss latency"
        )))
    }));
    exp
}

// --- papi_avail -------------------------------------------------------

fn papi_avail(args: &Args) -> Experiment {
    let system = System::from_arg(&args.get_or("system", "summit"));
    let mut exp = Experiment::new("papi_avail", "PAPI component and event listing");
    exp.push(Point::run("listing", move || {
        Ok(PointOutput::text(papi_avail_text(system)))
    }));
    exp
}

fn papi_avail_text(system: System) -> String {
    let (_machine, setup) = crate::node(system, 1);
    let mut out = String::new();
    out.push_str(&format!(
        "PAPI component availability on {}:\n",
        system.name()
    ));
    out.push_str(&format!("{:-<72}\n", ""));
    for s in setup.papi.component_status() {
        match (&s.enabled, &s.reason) {
            (true, _) => out.push_str(&format!("  {:<14} [enabled]\n", s.name)),
            (false, Some(r)) => out.push_str(&format!("  {:<14} [disabled: {r}]\n", s.name)),
            _ => {}
        }
    }
    out.push('\n');
    out.push_str("Native events:\n");
    out.push_str(&format!("{:-<72}\n", ""));
    for ev in setup.papi.list_all_events() {
        out.push_str(&format!("  {:<78} ({})\n", ev.name, ev.units));
    }
    out
}

// --- refute -----------------------------------------------------------

/// Columns of the refutation verdict table ([`refute::Verdict::csv_line`]).
const REFUTE_CSV_COLUMNS: &str = "mechanism,band_rel,band_abs_bytes,pred_read_bytes,\
                                  meas_read_bytes,pred_write_bytes,meas_write_bytes,\
                                  worst_err_bytes,worst_site,verdict";

/// The CounterPoint-style refutation catalog (DESIGN.md §15): every
/// mechanism of [`refute::CATALOG`] runs its micro-kernel through the
/// full PAPI → PCP → wire path and is judged against its closed-form
/// prediction. A contradiction is a *point error* — it fails the run
/// (and hence the golden gate), not just a row in the table.
fn refute_exp(args: &Args) -> Experiment {
    let base = args.get_u64("seed", 1);
    let mut exp = Experiment::new("refute", "Model-refutation verdict catalog");
    exp.push(Point::fixed(header_lines(
        "refute",
        &[
            ("mechanisms", refute::CATALOG.len().to_string()),
            ("path", "PAPI/PCP/wire".to_owned()),
            ("machine", "quiet Summit".to_owned()),
        ],
    )));
    exp.push(Point::fixed(REFUTE_CSV_COLUMNS));
    for (i, mech) in refute::CATALOG.iter().enumerate() {
        let seed = point_seed(base, "refute", i as u64);
        exp.push(Point::run(mech.name, move || {
            let mech = &refute::CATALOG[i];
            let v =
                refute::refute_mechanism(mech, seed).map_err(|e| perr("refute", mech.name, e))?;
            if !v.agrees {
                return Err(perr("refute", mech.name, v.detail()));
            }
            Ok(PointOutput::with_bytes(v.csv_line(), v.measured.total()))
        }));
    }
    exp.push(Point::fixed("\n# Models under test:"));
    for mech in refute::CATALOG {
        exp.push(Point::fixed(format!("#   {}: {}", mech.name, mech.model)));
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_tag_builds() {
        let args = Args::default();
        for tag in TAGS {
            assert!(
                build(tag, Mode::Quick, &args).is_some(),
                "tag {tag} did not build"
            );
        }
        assert!(build("nonsense", Mode::Quick, &args).is_none());
    }

    #[test]
    fn quick_experiments_have_the_expected_shape() {
        let args = Args::default();
        let exp = build("fig2", Mode::Quick, &args).expect("fig2");
        // header + bounds + columns + one row per quick size.
        let measured = exp.points.iter().filter(|p| p.is_measured()).count();
        assert_eq!(measured, gemm_sizes_for(Mode::Quick).len());
        let exp = build("fig3", Mode::Quick, &args).expect("fig3");
        let measured = exp.points.iter().filter(|p| p.is_measured()).count();
        assert_eq!(measured, 2 * gemm_sizes_for(Mode::Quick).len());
    }

    #[test]
    fn seeds_differ_between_points_and_sections() {
        let a = point_seed(3, "fig3", 64);
        let b = point_seed(3, "fig3", 128);
        let c = point_seed(3, "fig3", 1_000_000 + 64);
        let d = point_seed(3, "fig4", 64);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
