//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary prints a CSV (plus a short header of run parameters) whose
//! rows correspond to the series of one paper figure. `EXPERIMENTS.md` at
//! the repository root records the paper-vs-measured comparison for each.

use p9_memsim::SimMachine;
use papi_sim::papi::{setup_node, NodeSetup};

pub mod experiments;
pub mod figures;
pub mod obsreport;
pub mod runner;

/// Minimal `--key value` / `--flag` argument parser (no external deps).
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    pub fn parse() -> Args {
        let mut out = Args::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    out.pairs.push((key.to_owned(), argv[i + 1].clone()));
                    i += 2;
                } else {
                    out.flags.push(key.to_owned());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        out
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_owned()
    }

    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// How large a sweep an experiment run covers.
///
/// `Quick` trims every sweep to the sizes that finish in seconds (the
/// golden-figure regression suite and the CI `repro-quick` lane run
/// here); `Default` matches the figure binaries' historical defaults;
/// `Full` extends to the paper's largest problem sizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    Quick,
    Default,
    Full,
}

impl Mode {
    /// `--quick` / `--full` flags (default: `Default`). `--quick` wins
    /// when both are given, matching the cheaper interpretation.
    pub fn from_args(args: &Args) -> Mode {
        if args.flag("quick") {
            Mode::Quick
        } else if args.flag("full") {
            Mode::Full
        } else {
            Mode::Default
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Mode::Quick => "quick",
            Mode::Default => "default",
            Mode::Full => "full",
        }
    }
}

/// Which of the paper's systems an experiment models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum System {
    Summit,
    Tellico,
}

impl System {
    pub fn from_arg(s: &str) -> System {
        match s {
            "tellico" => System::Tellico,
            _ => System::Summit,
        }
    }

    pub fn machine(self, seed: u64) -> SimMachine {
        match self {
            System::Summit => SimMachine::summit(seed),
            System::Tellico => SimMachine::tellico(seed),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            System::Summit => "summit",
            System::Tellico => "tellico",
        }
    }
}

/// Wire a machine with its PAPI stack.
pub fn node(system: System, seed: u64) -> (SimMachine, NodeSetup) {
    let m = system.machine(seed);
    let setup = setup_node(&m, Vec::new());
    (m, setup)
}

/// The GEMM problem-size sweep used by Figs. 2–4. `full` extends to the
/// paper's largest sizes (slower).
pub fn gemm_sizes(full: bool) -> Vec<u64> {
    gemm_sizes_for(if full { Mode::Full } else { Mode::Default })
}

/// Mode-aware GEMM sweep. Quick keeps one point either side of the
/// Eq. 3/4 cache-region bounds so the golden suite still exercises the
/// crossover.
pub fn gemm_sizes_for(mode: Mode) -> Vec<u64> {
    let mut v = match mode {
        Mode::Quick => return vec![64, 96, 128, 192, 256],
        _ => vec![
            64, 96, 128, 192, 256, 320, 384, 448, 512, 640, 768, 896, 1024, 1280, 1536,
        ],
    };
    if mode == Mode::Full {
        v.extend([2048, 2560, 3072]);
    }
    v
}

/// The capped-GEMV output-size sweep of Fig. 5 (square until the capping
/// point at 1280, capped beyond).
pub fn gemv_sizes(full: bool) -> Vec<u64> {
    gemv_sizes_for(if full { Mode::Full } else { Mode::Default })
}

/// Mode-aware GEMV sweep. Quick still crosses the capping point at 1280
/// and reaches the write-noise floor around 10⁴.
pub fn gemv_sizes_for(mode: Mode) -> Vec<u64> {
    let mut v = match mode {
        Mode::Quick => return vec![128, 512, 1280, 4096, 16384],
        _ => vec![
            128, 256, 512, 768, 1024, 1280, 2048, 4096, 8192, 16384, 32768, 65536,
        ],
    };
    if mode == Mode::Full {
        v.extend([131_072, 262_144]);
    }
    v
}

/// The FFT problem sizes of Figs. 6–9 (divisible by the 2×4 grid).
pub fn fft_sizes(full: bool) -> Vec<usize> {
    fft_sizes_for(if full { Mode::Full } else { Mode::Default })
}

/// Mode-aware FFT sweep (sizes divisible by the 2×4 grid).
pub fn fft_sizes_for(mode: Mode) -> Vec<usize> {
    let mut v = match mode {
        Mode::Quick => return vec![112, 168, 224],
        _ => vec![112, 168, 224, 336, 448, 560, 672, 896],
    };
    if mode == Mode::Full {
        v.extend([1120, 1344]);
    }
    v
}

/// Derive the seed for one sweep point from the experiment's base seed,
/// its tag and a point-local salt (section index × 10⁶ + problem size
/// for the sweeps). Every point builds its own `SimMachine` from this,
/// so points are independent of execution order and of each other —
/// the property the parallel runner's determinism rests on. The mixer
/// is a splitmix64 finalizer over an FNV-folded tag.
pub fn point_seed(base: u64, tag: &str, salt: u64) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt.wrapping_add(1));
    for b in tag.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Print the standard experiment header.
pub fn header(figure: &str, params: &[(&str, String)]) {
    print!("{}", header_lines(figure, params));
}

/// The standard experiment header as a string (the runner composes
/// experiment output from strings so parallel workers never interleave
/// on stdout).
pub fn header_lines(figure: &str, params: &[(&str, String)]) -> String {
    let mut out = format!("# {figure}\n");
    for (k, v) in params {
        out.push_str(&format!("# {k} = {v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_sorted_and_grid_compatible() {
        let g = gemm_sizes(true);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        let f = fft_sizes(true);
        assert!(f.windows(2).all(|w| w[0] < w[1]));
        // Figs. 6-9 run on a 2x4 grid: sizes must divide.
        assert!(f.iter().all(|n| n % 4 == 0 && n % 2 == 0));
        let v = gemv_sizes(false);
        assert!(v.contains(&figures::GEMV_CAP), "sweep must hit the cap");
    }

    #[test]
    fn system_parsing() {
        assert_eq!(System::from_arg("tellico"), System::Tellico);
        assert_eq!(System::from_arg("summit"), System::Summit);
        assert_eq!(System::from_arg("anything-else"), System::Summit);
        assert_eq!(System::Tellico.name(), "tellico");
    }

    #[test]
    fn node_wiring_matches_system() {
        let (m, setup) = node(System::Tellico, 3);
        assert_eq!(m.arch().node.sockets[0].usable_cores, 16);
        assert!(setup
            .papi
            .component_status()
            .iter()
            .any(|s| s.name == "perf_uncore" && s.enabled));
    }
}
