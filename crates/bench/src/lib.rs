//! Shared helpers for the figure/table regeneration binaries.
//!
//! Every binary prints a CSV (plus a short header of run parameters) whose
//! rows correspond to the series of one paper figure. `EXPERIMENTS.md` at
//! the repository root records the paper-vs-measured comparison for each.

use p9_memsim::SimMachine;
use papi_sim::papi::{setup_node, NodeSetup};

pub mod figures;
pub mod obsreport;

/// Minimal `--key value` / `--flag` argument parser (no external deps).
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    pub fn parse() -> Args {
        let mut out = Args::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    out.pairs.push((key.to_owned(), argv[i + 1].clone()));
                    i += 2;
                } else {
                    out.flags.push(key.to_owned());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        out
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    pub fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_owned()
    }

    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// Which of the paper's systems an experiment models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum System {
    Summit,
    Tellico,
}

impl System {
    pub fn from_arg(s: &str) -> System {
        match s {
            "tellico" => System::Tellico,
            _ => System::Summit,
        }
    }

    pub fn machine(self, seed: u64) -> SimMachine {
        match self {
            System::Summit => SimMachine::summit(seed),
            System::Tellico => SimMachine::tellico(seed),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            System::Summit => "summit",
            System::Tellico => "tellico",
        }
    }
}

/// Wire a machine with its PAPI stack.
pub fn node(system: System, seed: u64) -> (SimMachine, NodeSetup) {
    let m = system.machine(seed);
    let setup = setup_node(&m, Vec::new());
    (m, setup)
}

/// The GEMM problem-size sweep used by Figs. 2–4. `full` extends to the
/// paper's largest sizes (slower).
pub fn gemm_sizes(full: bool) -> Vec<u64> {
    let mut v = vec![
        64, 96, 128, 192, 256, 320, 384, 448, 512, 640, 768, 896, 1024, 1280, 1536,
    ];
    if full {
        v.extend([2048, 2560, 3072]);
    }
    v
}

/// The capped-GEMV output-size sweep of Fig. 5 (square until the capping
/// point at 1280, capped beyond).
pub fn gemv_sizes(full: bool) -> Vec<u64> {
    let mut v = vec![
        128, 256, 512, 768, 1024, 1280, 2048, 4096, 8192, 16384, 32768, 65536,
    ];
    if full {
        v.extend([131_072, 262_144]);
    }
    v
}

/// The FFT problem sizes of Figs. 6–9 (divisible by the 2×4 grid).
pub fn fft_sizes(full: bool) -> Vec<usize> {
    let mut v = vec![112, 168, 224, 336, 448, 560, 672, 896];
    if full {
        v.extend([1120, 1344]);
    }
    v
}

/// Print the standard experiment header.
pub fn header(figure: &str, params: &[(&str, String)]) {
    println!("# {figure}");
    for (k, v) in params {
        println!("# {k} = {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_sorted_and_grid_compatible() {
        let g = gemm_sizes(true);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        let f = fft_sizes(true);
        assert!(f.windows(2).all(|w| w[0] < w[1]));
        // Figs. 6-9 run on a 2x4 grid: sizes must divide.
        assert!(f.iter().all(|n| n % 4 == 0 && n % 2 == 0));
        let v = gemv_sizes(false);
        assert!(v.contains(&figures::GEMV_CAP), "sweep must hit the cap");
    }

    #[test]
    fn system_parsing() {
        assert_eq!(System::from_arg("tellico"), System::Tellico);
        assert_eq!(System::from_arg("summit"), System::Summit);
        assert_eq!(System::from_arg("anything-else"), System::Summit);
        assert_eq!(System::Tellico.name(), "tellico");
    }

    #[test]
    fn node_wiring_matches_system() {
        let (m, setup) = node(System::Tellico, 3);
        assert_eq!(m.arch().node.sockets[0].usable_cores, 16);
        assert!(setup
            .papi
            .component_status()
            .iter()
            .any(|s| s.name == "perf_uncore" && s.enabled));
    }
}
