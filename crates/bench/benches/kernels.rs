//! Criterion benchmarks of the BLAS kernels: the numeric reference
//! implementations and the trace generators that feed Figs. 2-5.

use blas_kernels::{gemm_ref, gemv_ref, CappedGemvTrace, GemmTrace};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p9_arch::Machine;
use p9_memsim::SimMachine;

fn bench_numeric_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm/numeric");
    for n in [64usize, 128] {
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let a = vec![1.0f64; n * n];
            let bm = vec![2.0f64; n * n];
            let mut cm = vec![0.0f64; n * n];
            b.iter(|| gemm_ref(&a, &bm, &mut cm, n));
        });
    }
    g.finish();
}

fn bench_numeric_gemv(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv/numeric");
    for n in [256usize, 1024] {
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let a = vec![1.0f64; n * n];
            let x = vec![0.5f64; n];
            let mut y = vec![0.0f64; n];
            b.iter(|| gemv_ref(&a, &x, &mut y, n, n));
        });
    }
    g.finish();
}

fn bench_gemm_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm/trace");
    g.sample_size(10);
    for n in [128u64, 256] {
        g.throughput(Throughput::Elements(n * n * n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut m = SimMachine::quiet(Machine::summit(), 5);
            let t = GemmTrace::allocate(&mut m, n);
            b.iter(|| m.run_single(0, |core| t.run(core)));
        });
    }
    g.finish();
}

fn bench_gemv_trace(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemv/trace");
    g.sample_size(10);
    let (m_sz, n_sz) = (8192u64, 1280u64);
    g.throughput(Throughput::Elements(m_sz * n_sz));
    g.bench_function("capped_8192x1280", |b| {
        let mut m = SimMachine::quiet(Machine::summit(), 6);
        let t = CappedGemvTrace::allocate(&mut m, m_sz, n_sz);
        b.iter(|| m.run_single(0, |core| t.run(core)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_numeric_gemm,
    bench_numeric_gemv,
    bench_gemm_trace,
    bench_gemv_trace
);
criterion_main!(benches);
