//! Criterion benchmarks of the FFT stack: the mixed-radix 1D transform,
//! the distributed pencil pipeline, and the re-sorting traces of
//! Figs. 6-10.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fft3d::resort::{LocalDims, ResortTrace, S1cfCombined, S2cf};
use fft3d::{distributed_fft3d, fft, Complex};
use p9_arch::Machine;
use p9_memsim::SimMachine;
use ranksim::ProcessGrid;

fn bench_fft1d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft1d");
    for n in [1024usize, 1344, 2016] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let data: Vec<Complex> = (0..n)
                .map(|i| Complex::new(i as f64, -(i as f64)))
                .collect();
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d);
                d
            });
        });
    }
    g.finish();
}

fn bench_distributed_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft3d/distributed");
    g.sample_size(10);
    for n in [16usize, 32] {
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let input: Vec<Complex> = (0..n * n * n)
                .map(|i| Complex::new((i % 13) as f64, 0.0))
                .collect();
            b.iter(|| distributed_fft3d(&input, n, ProcessGrid::new(2, 2)));
        });
    }
    g.finish();
}

fn bench_resort_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("resort/trace");
    g.sample_size(10);
    let n = 224;
    g.bench_function("s1cf_combined_n224", |b| {
        let mut m = SimMachine::quiet(Machine::summit(), 7);
        let t = S1cfCombined::allocate(&mut m, LocalDims::for_grid(n, 2, 4));
        b.iter(|| m.run_single(0, |core| t.run(core)));
    });
    g.bench_function("s2cf_n224", |b| {
        let mut m = SimMachine::quiet(Machine::summit(), 8);
        let t = S2cf::for_grid(&mut m, n, 2, 4);
        b.iter(|| m.run_single(0, |core| t.run(core)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fft1d,
    bench_distributed_fft,
    bench_resort_traces
);
criterion_main!(benches);
