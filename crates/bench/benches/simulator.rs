//! Criterion microbenchmarks of the simulator substrate itself: these
//! bound the cost of regenerating the paper's figures and catch
//! performance regressions in the hot cache-simulation paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use p9_arch::Machine;
use p9_memsim::SimMachine;

fn bench_streaming_loads(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsim/load_seq");
    for kb in [64u64, 1024, 8192] {
        let bytes = kb * 1024;
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(BenchmarkId::from_parameter(kb), &bytes, |b, &bytes| {
            let mut m = SimMachine::quiet(Machine::summit(), 1);
            let r = m.alloc(bytes);
            b.iter(|| {
                m.run_single(0, |core| core.load_seq(r.base(), bytes));
            });
        });
    }
    g.finish();
}

fn bench_strided_loads(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsim/strided_load");
    let count = 100_000u64;
    g.throughput(Throughput::Elements(count));
    g.bench_function("stride_4_sectors", |b| {
        let mut m = SimMachine::quiet(Machine::summit(), 2);
        let r = m.alloc(count * 256 + 64);
        b.iter(|| {
            m.run_single(0, |core| {
                for i in 0..count {
                    core.load(r.base() + i * 256, 8);
                }
            });
        });
    });
    g.finish();
}

fn bench_bypass_stores(c: &mut Criterion) {
    let mut g = c.benchmark_group("memsim/store_seq");
    let bytes = 1024 * 1024u64;
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("1MiB", |b| {
        let mut m = SimMachine::quiet(Machine::summit(), 3);
        let r = m.alloc(bytes);
        b.iter(|| {
            m.run_single(0, |core| core.store_seq(r.base(), bytes));
        });
    });
    g.finish();
}

fn bench_pcp_fetch(c: &mut Criterion) {
    use pcp_sim::{PcpContext, Pmcd, PmcdConfig, Pmns};
    let m = SimMachine::quiet(Machine::summit(), 4);
    let pmns = Pmns::for_machine(m.arch());
    let sockets = (0..m.num_sockets()).map(|s| m.socket_shared(s)).collect();
    let d = Pmcd::spawn_system(pmns.clone(), sockets, PmcdConfig::default()).expect("spawn pmcd");
    let ctx = PcpContext::connect(d.handle(), None);
    let reqs: Vec<_> = (0..8)
        .map(|ch| {
            let id = pmns
                .lookup(&format!(
                    "perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_READ_BYTES.value"
                ))
                .unwrap();
            (id, pcp_sim::InstanceId(87))
        })
        .collect();
    c.bench_function("pcp/fetch_8_metrics", |b| {
        b.iter(|| ctx.pm_fetch(&reqs).unwrap());
    });
}

criterion_group!(
    benches,
    bench_streaming_loads,
    bench_strided_loads,
    bench_bypass_stores,
    bench_pcp_fetch
);
criterion_main!(benches);
