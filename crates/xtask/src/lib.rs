//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The only task so far is [`lint`]: the repo-specific static-analysis pass
//! described in DESIGN.md §8 (rules 1–5) and §13 (the cross-line
//! concurrency rules 6–7, built on the token layer in `tokens` and the
//! lock-order/blocking analyzer in `conc`).

pub mod lint;

pub(crate) mod conc;
pub(crate) mod tokens;
