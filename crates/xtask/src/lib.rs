//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! The only task so far is [`lint`]: the repo-specific static-analysis pass
//! described in DESIGN.md §8.

pub mod lint;
