//! Token stream over the scrubbed code view — the "token-tree" layer the
//! cross-line rules (6 and 7) are built on.
//!
//! The scrubber ([`crate::lint`]) already blanks comments, strings and
//! char literals, so tokenizing its code view is trivial: runs of
//! identifier characters become [`Tok::ident`] tokens, every other
//! non-whitespace character becomes a one-character punctuation token.
//! On top of that flat stream this module matches `()`/`[]`/`{}`
//! delimiter pairs and records, for every token, the innermost enclosing
//! brace — which is exactly the scope information guard tracking needs
//! (a `let`-bound lock guard lives to the end of its enclosing block).
//!
//! Generics are *not* treated as delimiters: `<`/`>` are ambiguous with
//! comparison operators, and none of the analyses need them matched.

/// One token of scrubbed source.
#[derive(Debug, Clone)]
pub(crate) struct Tok {
    /// Identifier text, or the single punctuation character.
    pub text: String,
    /// 0-based source line.
    pub line: usize,
    /// True for identifier/number tokens.
    pub ident: bool,
    /// True when the token sits on a `#[cfg(test)]`-gated line.
    pub is_test: bool,
    /// For `(`/`[`/`{` and `)`/`]`/`}`: index of the matching partner.
    pub mate: Option<usize>,
    /// Index of the innermost `{` token enclosing this one.
    pub brace: Option<usize>,
}

/// Tokenize the scrubbed `code` lines. `is_test` is the parallel
/// per-line test marking; both come from the scrubber.
pub(crate) fn tokenize(code: &[String], is_test: &[bool]) -> Vec<Tok> {
    let mut toks: Vec<Tok> = Vec::new();
    for (ln, line) in code.iter().enumerate() {
        let test = is_test.get(ln).copied().unwrap_or(false);
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    text: chars[start..i].iter().collect(),
                    line: ln,
                    ident: true,
                    is_test: test,
                    mate: None,
                    brace: None,
                });
            } else {
                toks.push(Tok {
                    text: c.to_string(),
                    line: ln,
                    ident: false,
                    is_test: test,
                    mate: None,
                    brace: None,
                });
                i += 1;
            }
        }
    }
    match_delims(&mut toks);
    toks
}

/// Match `()`/`[]`/`{}` pairs and record each token's enclosing brace.
/// Unbalanced input (possible on pathological sources) degrades to
/// unmatched tokens rather than panicking.
fn match_delims(toks: &mut [Tok]) {
    let mut stack: Vec<(char, usize)> = Vec::new();
    for i in 0..toks.len() {
        // The innermost enclosing '{' *before* processing this token, so
        // an opening brace records its parent, not itself.
        toks[i].brace = stack.iter().rev().find(|(c, _)| *c == '{').map(|&(_, j)| j);
        let c = match toks[i].text.as_str() {
            "(" | "[" | "{" => {
                stack.push((toks[i].text.chars().next().unwrap_or('('), i));
                continue;
            }
            ")" => '(',
            "]" => '[',
            "}" => '{',
            _ => continue,
        };
        // Pop to the nearest matching opener; mismatched closers between
        // are left unmatched (tolerant of scrub artifacts).
        if let Some(pos) = stack.iter().rposition(|(open, _)| *open == c) {
            let (_, open_idx) = stack.remove(pos);
            toks[open_idx].mate = Some(i);
            toks[i].mate = Some(open_idx);
        }
    }
}

/// Index just past the statement containing token `i`: the first `;` at
/// the same brace depth (delimiter groups are skipped whole), or the
/// index of the `}` closing the enclosing block, or `end`.
pub(crate) fn stmt_end(toks: &[Tok], i: usize, end: usize) -> usize {
    let brace = toks[i].brace;
    let mut j = i;
    while j < end {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => {
                // Skip the whole group.
                match toks[j].mate {
                    Some(m) if m > j => j = m + 1,
                    _ => j += 1,
                }
                continue;
            }
            ";" if toks[j].brace == brace => return j + 1,
            "}" => return j,
            _ => j += 1,
        }
    }
    end
}

/// End (exclusive) of the block enclosing token `i`: the index of the
/// `}` matching the innermost enclosing `{`, or `end`.
pub(crate) fn block_end(toks: &[Tok], i: usize, end: usize) -> usize {
    match toks[i].brace.and_then(|b| toks[b].mate) {
        Some(close) => close.min(end),
        None => end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> Vec<Tok> {
        let lines: Vec<String> = src.lines().map(str::to_owned).collect();
        let marks = vec![false; lines.len()];
        tokenize(&lines, &marks)
    }

    #[test]
    fn idents_and_puncts_with_lines() {
        let t = lex("let x = a.lock();\nfoo(y)");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "a", ".", "lock", "(", ")", ";", "foo", "(", "y", ")"]
        );
        assert_eq!(t[0].line, 0);
        assert_eq!(t[9].line, 1);
    }

    #[test]
    fn delimiters_match_across_lines() {
        let t = lex("fn f() {\n    if x { y(); }\n}");
        // Outer braces: token index of '{' on line 0 pairs with final '}'.
        let open = t.iter().position(|k| k.text == "{").unwrap();
        let close = t[open].mate.unwrap();
        assert_eq!(t[close].line, 2);
        // The inner call's tokens are enclosed by the *inner* brace.
        let y = t.iter().position(|k| k.text == "y").unwrap();
        let inner_open = t[y].brace.unwrap();
        assert!(inner_open > open, "innermost brace wins");
    }

    #[test]
    fn stmt_end_skips_nested_groups() {
        let t = lex("let a = f(|| { g(); });\nh();");
        let la = 0;
        let e = stmt_end(&t, la, t.len());
        // The ';' inside the closure does not end the outer statement.
        assert_eq!(t[e - 1].text, ";");
        assert_eq!(t[e - 1].line, 0);
        assert_eq!(t[e].text, "h");
    }

    #[test]
    fn unbalanced_input_does_not_panic() {
        let t = lex("} ) ] fn f( {");
        assert!(!t.is_empty());
        let _ = stmt_end(&t, 0, t.len());
        let _ = block_end(&t, 0, t.len());
    }
}
