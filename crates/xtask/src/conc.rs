//! Rules 6 and 7: whole-workspace lock-order and no-blocking-under-lock.
//!
//! Built on [`crate::tokens`] (a delimiter-matched token stream over the
//! scrubbed code view). The analysis is deliberately name-based and
//! conservative — no type inference, no external crates:
//!
//! **Rule 6 (lock-order).** Every `Mutex<...>`/`RwLock<...>` declaration
//! in the analyzed crates must carry a `// lock-rank: <ns>.<N>`
//! annotation binding the declared name (field, static, or fn-return
//! accessor) to a rank. The analyzer tracks guard bindings
//! (`let g = x.lock()...` lives to end of enclosing block, `drop(g)`,
//! or consumption by `Condvar::wait*`; bare `x.lock()...` expressions
//! live to end of statement), records every rank acquired while a guard
//! is live — including transitively through direct calls to workspace
//! `fn`s whose name is unique — and fails on (a) same-namespace rank
//! inversions (held rank N acquiring M <= N, which also catches
//! reacquisition) and (b) any cycle in the global rank graph, rendered
//! edge-by-edge in the error.
//!
//! **Rule 7 (no-blocking-under-lock).** While a guard is live, any
//! blocking call — `recv`/`recv_timeout`/`recv_deadline`, `join`,
//! `accept`, socket/stream I/O (`read`, `read_exact`, `read_to_end`,
//! `write_all`, `flush`), `sleep`, `connect`, `Condvar::wait*` — is
//! flagged, directly or through a uniquely-resolved workspace call,
//! unless the site carries `// blocking-ok: <why>`. A `Condvar::wait*`
//! that consumes the tracked guard ends the guard instead (the wait
//! atomically releases it); the enclosing fn is still marked blocking
//! for its callers.
//!
//! Known limitations (documented in DESIGN.md §13): calls through
//! trait objects / non-unique fn names are not followed; a guard
//! rebound from a `Condvar::wait` result is not re-tracked; closures
//! are attributed to the enclosing fn.

use crate::lint::{annotation_text, Rule, Violation, Waiver};
use crate::tokens::{block_end, stmt_end, tokenize, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// Metric/trace macros that take the named lock internally (via the
/// registry / ring-registration path). Only applies when the mapped
/// binding name actually carries a lock-rank in the analyzed set.
const MACRO_LOCKS: &[(&str, &str)] = &[
    ("counter", "entries"),
    ("gauge", "entries"),
    ("histogram", "entries"),
    ("span", "RINGS"),
    ("instant", "RINGS"),
];

/// Method names never followed as workspace calls in `Type::m(...)`,
/// `x.m(...)` and `self.field.m(...)` form: std/container vocabulary
/// that would otherwise collide with same-named workspace fns.
const DENY_METHODS: &[&str] = &[
    "clone",
    "flush",
    "len",
    "is_empty",
    "iter",
    "into_iter",
    "next",
    "take",
    "get",
    "read",
    "write",
    "send",
    "lock",
    "try_lock",
    "min",
    "max",
    "sum",
    "snapshot",
    "stats",
    "push",
    "pop",
    "push_back",
    "pop_front",
    "clear",
    "contains",
    "contains_key",
    "extend",
    "drain",
    "map",
    "filter",
    "find",
    "collect",
    "join",
    "recv",
    "matches",
    "elapsed",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "into_inner",
    "to_owned",
    "to_string",
    "to_vec",
    "as_bytes",
    "new",
    "default",
    "with_capacity",
    "insert",
    "wait",
    "wait_timeout",
    "wait_while",
    "notify_one",
    "notify_all",
    "spawn",
    "retain",
    "keys",
    "values",
    "cloned",
    "rev",
    "chain",
    "split",
    "trim",
    "parse",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "borrow",
    "as_ref",
    "as_mut",
    "take_mut",
];

/// Additionally denied for plain `x.m(...)` receivers (no `self.` or
/// type path to disambiguate): names common on std containers that are
/// also bona-fide workspace fns.
const DENY_METHODS_UNTYPED: &[&str] = &[
    "remove", "store", "load", "set", "add", "inc", "record", "observe", "key", "value", "count",
];

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "impl", "pub", "use", "mod",
    "as", "in", "move", "ref", "else", "unsafe", "where", "crate", "self", "Self", "super",
    "break", "continue", "static", "const", "type", "struct", "enum", "trait", "dyn", "mut",
    "Some", "Ok", "Err", "None", "Box", "assert",
];

/// Blocking methods in `.m(...)` form. `true` = only when the argument
/// list is empty (distinguishes `rx.recv()` from e.g. `Vec::recv`-less
/// noise and `w.flush()` from nothing).
const BLOCKING_METHODS: &[(&str, bool)] = &[
    ("recv", true),
    ("recv_timeout", false),
    ("recv_deadline", false),
    ("join", true),
    ("accept", true),
    ("flush", true),
    ("wait", false),
    ("wait_timeout", false),
    ("wait_while", false),
    ("read", false),
    ("read_exact", false),
    ("read_to_end", false),
    ("write_all", false),
];

const WAIT_FAMILY: &[&str] = &["wait", "wait_timeout", "wait_while"];

/// Blocking free/path calls: `thread::sleep(..)`, `TcpStream::connect(..)`.
const BLOCKING_CALLEES: &[&str] = &["sleep", "connect"];

#[derive(Debug, Clone)]
struct Decl {
    name: String,
    ns: String,
    rank: u32,
    file: usize,
    line: usize, // 0-based
}

#[derive(Debug, Clone)]
struct AcqEvent {
    lock: String,
    tok: usize,
    line: usize,
    /// True for macro-implied acquisitions (`counter!` → `entries`),
    /// which only count when the mapped name actually carries a rank.
    mac: bool,
}

#[derive(Debug, Clone)]
struct CallEvent {
    callee: String,
    tok: usize,
    line: usize,
}

#[derive(Debug, Clone)]
struct BlockEvent {
    desc: String,
    tok: usize,
    line: usize,
    /// Identifier arguments, for `Condvar::wait*` guard consumption.
    wait_args: Vec<String>,
}

#[derive(Debug, Clone)]
struct GuardEvent {
    lock: String,
    bind: Option<String>,
    /// First token index inside the guard's live region.
    start: usize,
    /// Scope end (exclusive) before drop/wait truncation.
    scope_end: usize,
}

#[derive(Debug, Clone)]
struct DropEvent {
    arg: String,
    tok: usize,
}

#[derive(Debug, Default)]
struct FnUnit {
    name: String,
    acqs: Vec<AcqEvent>,
    unranked: Vec<(usize, usize, Option<String>)>, // (tok, line, receiver)
    calls: Vec<CallEvent>,
    blocks: Vec<BlockEvent>,
    guards: Vec<GuardEvent>,
    drops: Vec<DropEvent>,
}

struct FileScan {
    rel: String,
    scrub: crate::lint::Scrubbed,
    decls: Vec<Decl>,
    units: Vec<FnUnit>,
    bad_decls: Vec<(usize, String)>, // (line, msg)
}

/// Run rules 6 and 7 over `(rel_path, source)` pairs. Returns the
/// violations plus every waiver (`lock-ok`, `blocking-ok`) that was
/// actually used to suppress a finding.
pub(crate) fn check(files: &[(String, String)]) -> (Vec<Violation>, Vec<Waiver>) {
    let scans: Vec<FileScan> = files
        .iter()
        .enumerate()
        .map(|(idx, (rel, src))| scan_file(idx, rel, src))
        .collect();

    let mut violations = Vec::new();
    let mut waivers = Vec::new();

    // ---- rank table -------------------------------------------------
    let mut ranks: BTreeMap<String, Decl> = BTreeMap::new();
    for scan in &scans {
        for (line, msg) in &scan.bad_decls {
            violations.push(viol(&scan.rel, *line, msg.clone()));
        }
        for d in &scan.decls {
            match ranks.get(&d.name) {
                None => {
                    ranks.insert(d.name.clone(), d.clone());
                }
                Some(prev) if prev.ns == d.ns && prev.rank == d.rank => {}
                Some(prev) => {
                    violations.push(viol(
                        &scan.rel,
                        d.line,
                        format!(
                            "conflicting lock-rank for `{}`: {}.{} here vs {}.{} at {}:{}",
                            d.name,
                            d.ns,
                            d.rank,
                            prev.ns,
                            prev.rank,
                            scans[prev.file].rel,
                            prev.line + 1
                        ),
                    ));
                }
            }
        }
    }

    // ---- fn name resolution (unique bodied fns only) ----------------
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, scan) in scans.iter().enumerate() {
        for (ui, u) in scan.units.iter().enumerate() {
            if !u.name.starts_with('<') {
                by_name.entry(u.name.as_str()).or_default().push((fi, ui));
            }
        }
    }
    let resolve = |name: &str| -> Option<(usize, usize)> {
        match by_name.get(name) {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    };

    // ---- fixpoint fn summaries --------------------------------------
    // Per-(file, unit): locks acquired (name -> provenance) and, if the
    // fn may block, why.
    type Summary = (BTreeMap<String, String>, Option<String>);
    let mut sums: BTreeMap<(usize, usize), Summary> = BTreeMap::new();
    for (fi, scan) in scans.iter().enumerate() {
        for (ui, u) in scan.units.iter().enumerate() {
            let mut r = BTreeMap::new();
            for a in &u.acqs {
                r.entry(a.lock.clone())
                    .or_insert_with(|| format!("acquired at {}:{}", scan.rel, a.line + 1));
            }
            let b = u
                .blocks
                .first()
                .map(|b| format!("{} at {}:{}", b.desc, scan.rel, b.line + 1));
            sums.insert((fi, ui), (r, b));
        }
    }
    let keys: Vec<(usize, usize)> = sums.keys().copied().collect();
    for _ in 0..=keys.len() {
        let mut changed = false;
        for &(fi, ui) in &keys {
            let calls = scans[fi].units[ui].calls.clone();
            for c in &calls {
                let Some(target) = resolve(&c.callee) else {
                    continue;
                };
                if target == (fi, ui) {
                    continue;
                }
                let (tr, tb) = sums.get(&target).cloned().unwrap_or_default();
                let entry = sums.get_mut(&(fi, ui)).expect("summary exists");
                for (lock, prov) in tr {
                    entry.0.entry(lock).or_insert_with(|| {
                        changed = true;
                        clip(&format!("via `{}`: {}", c.callee, prov))
                    });
                }
                if entry.1.is_none() {
                    if let Some(why) = tb {
                        entry.1 = Some(clip(&format!("calls `{}`: {}", c.callee, why)));
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // ---- per-guard evaluation ---------------------------------------
    // Edge: (from lock, to lock) -> (file rel, line, detail).
    let mut edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
    for scan in &scans {
        for u in &scan.units {
            // Unresolvable receivers plus resolved names with no rank
            // anywhere in the workspace: both need a rank or a waiver.
            let loose = u
                .unranked
                .iter()
                .map(|(_, line, recv)| (*line, recv.clone()))
                .chain(
                    u.acqs
                        .iter()
                        .filter(|a| !a.mac && !ranks.contains_key(&a.lock))
                        .map(|a| (a.line, Some(a.lock.clone()))),
                );
            for (line, recv) in loose {
                if let Some((why, wl)) = annotation_text(&scan.scrub, line, "lock-ok:") {
                    waivers.push(Waiver {
                        file: scan.rel.clone(),
                        line: wl + 1,
                        tag: "lock-ok".into(),
                        why,
                    });
                    continue;
                }
                let what = match recv {
                    Some(n) => {
                        format!(".lock() on `{n}`, which carries no `// lock-rank:` annotation")
                    }
                    None => "cannot resolve the receiver of this .lock()".into(),
                };
                violations.push(viol(
                    &scan.rel,
                    line,
                    format!("{what}; annotate the declaration or waive with `// lock-ok: <why>`"),
                ));
            }
            for g in &u.guards {
                let Some(held) = ranks.get(&g.lock) else {
                    continue;
                };
                let end = effective_end(g, u);
                let within = |t: usize| t >= g.start && t < end;
                for a in u.acqs.iter().filter(|a| within(a.tok)) {
                    let Some(to) = ranks.get(&a.lock) else {
                        continue;
                    };
                    record_edge(
                        &mut edges,
                        &mut violations,
                        held,
                        to,
                        &g.lock,
                        &a.lock,
                        &scan.rel,
                        a.line,
                        None,
                    );
                }
                for c in u.calls.iter().filter(|c| within(c.tok)) {
                    let Some(target) = resolve(&c.callee) else {
                        continue;
                    };
                    let (tr, tb) = sums.get(&target).cloned().unwrap_or_default();
                    for (lock, prov) in &tr {
                        let Some(to) = ranks.get(lock) else { continue };
                        record_edge(
                            &mut edges,
                            &mut violations,
                            held,
                            to,
                            &g.lock,
                            lock,
                            &scan.rel,
                            c.line,
                            Some(&format!("`{}` ({})", c.callee, prov)),
                        );
                    }
                    if let Some(why) = tb {
                        blocking_finding(
                            &mut violations,
                            &mut waivers,
                            scan,
                            c.line,
                            &format!("call to `{}` may block ({})", c.callee, clip(&why)),
                            &g.lock,
                            held,
                        );
                    }
                }
                for b in u.blocks.iter().filter(|b| within(b.tok)) {
                    blocking_finding(
                        &mut violations,
                        &mut waivers,
                        scan,
                        b.line,
                        &format!("blocking call {}", b.desc),
                        &g.lock,
                        held,
                    );
                }
            }
        }
    }

    // ---- cycle detection over rank keys -----------------------------
    if let Some(v) = find_cycle(&edges, &ranks) {
        violations.push(v);
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    waivers.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    (violations, waivers)
}

fn viol(rel: &str, line0: usize, msg: String) -> Violation {
    Violation {
        file: rel.to_string(),
        line: line0 + 1,
        rule: Rule::LockOrder,
        msg,
    }
}

fn clip(s: &str) -> String {
    if s.len() > 160 {
        let mut cut = 157;
        while !s.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}...", &s[..cut])
    } else {
        s.to_string()
    }
}

fn key_of(d: &Decl) -> String {
    format!("{}.{}", d.ns, d.rank)
}

#[allow(clippy::too_many_arguments)]
fn record_edge(
    edges: &mut BTreeMap<(String, String), (String, usize, String)>,
    violations: &mut Vec<Violation>,
    held: &Decl,
    to: &Decl,
    held_name: &str,
    to_name: &str,
    rel: &str,
    line: usize,
    via: Option<&str>,
) {
    let detail = match via {
        Some(v) => format!("holding `{held_name}`, via call to {v}"),
        None => format!("holding `{held_name}`, acquires `{to_name}`"),
    };
    edges
        .entry((held_name.to_string(), to_name.to_string()))
        .or_insert_with(|| (rel.to_string(), line, detail));
    if held.ns == to.ns && to.rank <= held.rank {
        let what = if held_name == to_name {
            format!(
                "lock-order inversion: reacquiring `{held_name}` ({}) while it is already held",
                key_of(held)
            )
        } else {
            format!(
                "lock-order inversion: acquiring `{to_name}` ({}) while holding `{held_name}` ({}); ranks within a namespace must strictly increase",
                key_of(to),
                key_of(held)
            )
        };
        let what = match via {
            Some(v) => format!("{what}; via call to {v}"),
            None => what,
        };
        violations.push(viol(rel, line, what));
    }
}

fn blocking_finding(
    violations: &mut Vec<Violation>,
    waivers: &mut Vec<Waiver>,
    scan: &FileScan,
    line: usize,
    what: &str,
    held_name: &str,
    held: &Decl,
) {
    if let Some((why, wl)) = annotation_text(&scan.scrub, line, "blocking-ok:") {
        waivers.push(Waiver {
            file: scan.rel.clone(),
            line: wl + 1,
            tag: "blocking-ok".into(),
            why,
        });
        return;
    }
    violations.push(Violation {
        file: scan.rel.clone(),
        line: line + 1,
        rule: Rule::BlockingUnderLock,
        msg: format!(
            "{what} while holding `{held_name}` ({}); drop the guard first or waive with `// blocking-ok: <why>`",
            key_of(held)
        ),
    });
}

fn effective_end(g: &GuardEvent, u: &FnUnit) -> usize {
    let mut end = g.scope_end;
    if let Some(bind) = &g.bind {
        for d in &u.drops {
            if d.tok > g.start && d.tok < end && &d.arg == bind {
                end = d.tok;
            }
        }
        for b in &u.blocks {
            if b.tok > g.start && b.tok < end && b.wait_args.iter().any(|a| a == bind) {
                end = b.tok;
            }
        }
    }
    end
}

/// DFS over the `ns.N` rank-key graph; first cycle found is rendered
/// with per-edge provenance plus the whole acquisition graph.
fn find_cycle(
    edges: &BTreeMap<(String, String), (String, usize, String)>,
    ranks: &BTreeMap<String, Decl>,
) -> Option<Violation> {
    // Collapse lock-name edges onto rank keys; remember one witness per
    // key edge (first in BTreeMap order = deterministic).
    let mut graph: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut witness: BTreeMap<(String, String), (String, String, usize, String)> = BTreeMap::new();
    for ((from, to), (rel, line, detail)) in edges {
        let (Some(df), Some(dt)) = (ranks.get(from), ranks.get(to)) else {
            continue;
        };
        let (kf, kt) = (key_of(df), key_of(dt));
        if kf == kt {
            continue; // self-loops are reported as inversions already
        }
        graph.entry(kf.clone()).or_default().insert(kt.clone());
        graph.entry(kt.clone()).or_default();
        witness.entry((kf, kt)).or_insert_with(|| {
            (
                format!("{from} -> {to}"),
                rel.clone(),
                *line,
                detail.clone(),
            )
        });
    }

    let nodes: Vec<String> = graph.keys().cloned().collect();
    let mut color: BTreeMap<&str, u8> = nodes.iter().map(|n| (n.as_str(), 0u8)).collect();
    let mut path: Vec<&str> = Vec::new();
    let mut cycle: Option<Vec<String>> = None;

    fn dfs<'a>(
        n: &'a str,
        graph: &'a BTreeMap<String, BTreeSet<String>>,
        color: &mut BTreeMap<&'a str, u8>,
        path: &mut Vec<&'a str>,
        cycle: &mut Option<Vec<String>>,
    ) {
        if cycle.is_some() {
            return;
        }
        color.insert(n, 1);
        path.push(n);
        if let Some(next) = graph.get(n) {
            for m in next {
                match color.get(m.as_str()).copied().unwrap_or(0) {
                    0 => dfs(m, graph, color, path, cycle),
                    1
                        // Back edge: slice the current path from m.
                        if cycle.is_none() => {
                            let start = path.iter().position(|p| *p == m.as_str()).unwrap_or(0);
                            let mut c: Vec<String> =
                                path[start..].iter().map(|s| s.to_string()).collect();
                            c.push(m.clone());
                            *cycle = Some(c);
                        }
                    _ => {}
                }
                if cycle.is_some() {
                    break;
                }
            }
        }
        path.pop();
        color.insert(n, 2);
    }

    for n in &nodes {
        if color.get(n.as_str()).copied().unwrap_or(0) == 0 {
            dfs(n, &graph, &mut color, &mut path, &mut cycle);
        }
        if cycle.is_some() {
            break;
        }
    }
    let cycle = cycle?;

    let mut msg = String::from("lock-acquisition cycle detected:\n");
    let mut anchor: Option<(String, usize)> = None;
    for w in cycle.windows(2) {
        if let Some((names, rel, line, detail)) = witness.get(&(w[0].clone(), w[1].clone())) {
            msg.push_str(&format!(
                "    {} -> {} ({names}): {detail} at {rel}:{}\n",
                w[0],
                w[1],
                line + 1
            ));
            if anchor.is_none() {
                anchor = Some((rel.clone(), *line));
            }
        }
    }
    msg.push_str("  full lock-acquisition graph:\n");
    for ((kf, kt), (names, rel, line, _)) in &witness {
        msg.push_str(&format!(
            "    {kf} -> {kt} ({names}) [{rel}:{}]\n",
            line + 1
        ));
    }
    let (file, line) = anchor.unwrap_or_else(|| ("<workspace>".into(), 0));
    Some(Violation {
        file,
        line: line + 1,
        rule: Rule::LockOrder,
        msg: msg.trim_end().to_string(),
    })
}

// ---------------------------------------------------------------------
// Per-file scanning
// ---------------------------------------------------------------------

fn scan_file(file_idx: usize, rel: &str, src: &str) -> FileScan {
    let scrub = crate::lint::scrub(src);
    let toks = tokenize(&scrub.code, &scrub.is_test);
    let n = toks.len();

    // -- lock declarations -------------------------------------------
    let mut decls = Vec::new();
    let mut bad_decls = Vec::new();
    for i in 0..n {
        if !toks[i].ident
            || (toks[i].text != "Mutex" && toks[i].text != "RwLock")
            || toks[i].is_test
        {
            continue;
        }
        if i + 1 >= n || toks[i + 1].text != "<" {
            continue; // `Mutex::new`, use-paths, bare mentions
        }
        match bind_decl(&toks, i) {
            Some((name, name_line)) => {
                let ann = annotation_text(&scrub, toks[i].line, "lock-rank:")
                    .or_else(|| annotation_text(&scrub, name_line, "lock-rank:"));
                match ann {
                    Some((text, _)) => match parse_rank(&text) {
                        Some((ns, rank)) => decls.push(Decl {
                            name,
                            ns,
                            rank,
                            file: file_idx,
                            line: toks[i].line,
                        }),
                        None => bad_decls.push((
                            toks[i].line,
                            format!(
                                "malformed lock-rank annotation on `{name}`: expected `// lock-rank: <ns>.<N>`"
                            ),
                        )),
                    },
                    None => bad_decls.push((
                        toks[i].line,
                        format!(
                            "Mutex/RwLock declaration `{name}` lacks a lock-rank annotation; add `// lock-rank: <ns>.<N>`"
                        ),
                    )),
                }
            }
            None => bad_decls.push((
                toks[i].line,
                "cannot infer a binding name for this Mutex/RwLock declaration; \
                 bind it to a named field, static, or fn return"
                    .to_string(),
            )),
        }
    }

    // -- fn bodies + ownership map ------------------------------------
    let mut units: Vec<FnUnit> = vec![FnUnit {
        name: format!("<toplevel:{rel}>"),
        ..Default::default()
    }];
    let mut owner: Vec<usize> = vec![0; n];
    let mut i = 0;
    let mut spans: Vec<(usize, usize, usize)> = Vec::new(); // (open+1, close, unit)
    while i < n {
        if toks[i].ident && toks[i].text == "fn" && !toks[i].is_test {
            if let Some(name_tok) = toks.get(i + 1).filter(|t| t.ident) {
                // Find the body opening brace (skip the parameter list).
                let mut j = i + 2;
                let mut open = None;
                while j < n {
                    match toks[j].text.as_str() {
                        "(" | "[" => {
                            j = toks[j].mate.map(|m| m + 1).unwrap_or(j + 1);
                            continue;
                        }
                        "{" => {
                            open = Some(j);
                            break;
                        }
                        ";" | "}" => break, // bodiless trait decl / malformed
                        _ => j += 1,
                    }
                }
                if let Some(open) = open {
                    let close = toks[open].mate.unwrap_or(n);
                    units.push(FnUnit {
                        name: name_tok.text.clone(),
                        ..Default::default()
                    });
                    spans.push((open + 1, close, units.len() - 1));
                }
            }
        }
        i += 1;
    }
    // Later (inner) spans overwrite enclosing ones.
    for (s, e, u) in &spans {
        for slot in owner.iter_mut().take((*e).min(n)).skip(*s) {
            *slot = *u;
        }
    }

    // -- event extraction ---------------------------------------------
    let mut i = 0;
    while i < n {
        if toks[i].is_test {
            i += 1;
            continue;
        }
        let u = owner[i];

        // `.method(` forms -------------------------------------------
        if toks[i].text == "." && i + 2 < n && toks[i + 1].ident && toks[i + 2].text == "(" {
            let m = toks[i + 1].text.clone();
            let close = toks[i + 2].mate.unwrap_or(i + 2);
            let empty = close == i + 3;
            if m == "lock" && empty {
                lock_acq(&toks, i, close, &mut units[u]);
                i = close + 1;
                continue;
            }
            if (m == "read" || m == "write") && empty {
                // RwLock acquisition only when the receiver is a known
                // ranked name; an argless io `.read()`/`.write()` is
                // meaningless, so anything else is ignored.
                let (recv, _) = receiver(&toks, i);
                if recv.is_some() {
                    lock_acq(&toks, i, close, &mut units[u]);
                }
                i = close + 1;
                continue;
            }
            if let Some(&(_, need_empty)) = BLOCKING_METHODS.iter().find(|(name, _)| *name == m) {
                if !need_empty || empty {
                    let wait_args = if WAIT_FAMILY.contains(&m.as_str()) {
                        toks[i + 3..close]
                            .iter()
                            .filter(|t| t.ident)
                            .map(|t| t.text.clone())
                            .collect()
                    } else {
                        Vec::new()
                    };
                    units[u].blocks.push(BlockEvent {
                        desc: format!("`.{m}(...)`"),
                        tok: i,
                        line: toks[i + 1].line,
                        wait_args,
                    });
                    i += 3;
                    continue;
                }
            }
            // call-candidate classification by receiver shape
            let r = i.wrapping_sub(1);
            if i >= 1 && toks[r].ident {
                let follow = if r >= 2 && toks[r - 1].text == "." {
                    // self.field.m( — followed; a.b.m( — skipped
                    r >= 2 && toks[r - 2].text == "self" && !DENY_METHODS.contains(&m.as_str())
                } else if toks[r].text == "self" {
                    true // self.m( — always followed
                } else {
                    !DENY_METHODS.contains(&m.as_str())
                        && !DENY_METHODS_UNTYPED.contains(&m.as_str())
                };
                if follow && !KEYWORDS.contains(&m.as_str()) {
                    units[u].calls.push(CallEvent {
                        callee: m,
                        tok: i,
                        line: toks[i + 1].line,
                    });
                }
            }
            i += 3;
            continue;
        }

        // `name!(` macro forms ---------------------------------------
        if toks[i].ident && i + 1 < n && toks[i + 1].text == "!" {
            if let Some(&(_, lock)) = MACRO_LOCKS.iter().find(|(name, _)| *name == toks[i].text) {
                units[u].acqs.push(AcqEvent {
                    lock: lock.to_string(),
                    tok: i,
                    line: toks[i].line,
                    mac: true,
                });
            }
            i += 2;
            continue;
        }

        // `name(` free/path-call forms -------------------------------
        if toks[i].ident
            && i + 1 < n
            && toks[i + 1].text == "("
            && (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "fn"))
        {
            let name = toks[i].text.clone();
            let close = toks[i + 1].mate.unwrap_or(i + 1);
            let path = i >= 1 && toks[i - 1].text == ":";
            if name == "drop" {
                let args: Vec<&Tok> = toks[i + 2..close.min(n)]
                    .iter()
                    .filter(|t| t.ident)
                    .collect();
                if args.len() == 1 {
                    units[u].drops.push(DropEvent {
                        arg: args[0].text.clone(),
                        tok: i,
                    });
                }
            } else if BLOCKING_CALLEES.contains(&name.as_str()) {
                units[u].blocks.push(BlockEvent {
                    desc: format!("`{name}(...)`"),
                    tok: i,
                    line: toks[i].line,
                    wait_args: Vec::new(),
                });
            } else if !KEYWORDS.contains(&name.as_str())
                && (!path || !DENY_METHODS.contains(&name.as_str()))
            {
                units[u].calls.push(CallEvent {
                    callee: name,
                    tok: i,
                    line: toks[i].line,
                });
            }
            i += 2;
            continue;
        }

        i += 1;
    }

    FileScan {
        rel: rel.to_string(),
        scrub,
        decls,
        units,
        bad_decls,
    }
}

/// Record a `.lock()` / ranked `.read()`/`.write()` acquisition at dot
/// index `d` (arg close paren at `close`): resolve the receiver, create
/// the guard region, classify unranked receivers.
fn lock_acq(toks: &[Tok], d: usize, close: usize, unit: &mut FnUnit) {
    let (recv, rstart) = receiver(toks, d);
    let line = toks[d].line;
    let Some(name) = recv else {
        unit.unranked.push((d, line, None));
        return;
    };
    unit.acqs.push(AcqEvent {
        lock: name.clone(),
        tok: d,
        line,
        mac: false,
    });
    // Guard binding: `let [mut] NAME = <receiver>...`.
    let bind = let_binding(toks, rstart);
    let start = close + 1;
    let scope_end = match &bind {
        Some(b) if b != "_" => block_end(toks, d, toks.len()),
        _ => stmt_end(toks, d, toks.len()),
    };
    unit.guards.push(GuardEvent {
        lock: name,
        bind: bind.filter(|b| b != "_"),
        start,
        scope_end,
    });
}

/// Resolve the receiver of `.lock()` at dot index `d`. Returns the
/// bound name (field/var/fn) plus the first token of the receiver
/// expression (for `let` detection).
fn receiver(toks: &[Tok], d: usize) -> (Option<String>, usize) {
    if d == 0 {
        return (None, d);
    }
    let last = d - 1;
    if toks[last].ident {
        // a.b.c.lock(): name = c; rstart walks the `ident .` chain back.
        let name = toks[last].text.clone();
        let mut s = last;
        while s >= 2 && toks[s - 1].text == "." && toks[s - 2].ident {
            s -= 2;
        }
        return (Some(name), s);
    }
    if toks[last].text == ")" {
        // registry().lock(): name = the called fn (whose return carries
        // the rank binding).
        if let Some(open) = toks[last].mate {
            if open >= 1 && toks[open - 1].ident {
                let name = toks[open - 1].text.clone();
                let mut s = open - 1;
                while s >= 3
                    && toks[s - 1].text == ":"
                    && toks[s - 2].text == ":"
                    && toks[s - 3].ident
                {
                    s -= 3;
                }
                return (Some(name), s);
            }
        }
    }
    (None, last)
}

/// Detect `let [mut] NAME =` immediately before the receiver at
/// `rstart`; returns the bound name.
fn let_binding(toks: &[Tok], rstart: usize) -> Option<String> {
    if rstart < 2 || toks[rstart - 1].text != "=" {
        return None;
    }
    let mut k = rstart - 2;
    if !toks[k].ident {
        return None; // tuple/struct patterns: treat as unbound
    }
    let name = toks[k].text.clone();
    if k >= 1 && toks[k - 1].text == "mut" {
        k -= 1;
    }
    if k >= 1 && toks[k - 1].ident && toks[k - 1].text == "let" {
        Some(name)
    } else {
        None
    }
}

/// Walk back from the `Mutex`/`RwLock` token to find what the type is
/// bound to: `name: ..Mutex<..>` (field/static/param) or
/// `fn name(..) -> ..Mutex<..>` (accessor). Returns (name, name line).
fn bind_decl(toks: &[Tok], mx: usize) -> Option<(String, usize)> {
    let mut j = mx;
    let mut saw_arrow = false;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.text.as_str() {
            ";" | "{" | "}" => return None,
            ":" => {
                // `::` path separator vs binding colon.
                if (j >= 1 && toks[j - 1].text == ":")
                    || toks.get(j + 1).map(|t| t.text == ":").unwrap_or(false)
                {
                    continue;
                }
                if j >= 1 && toks[j - 1].ident {
                    return Some((toks[j - 1].text.clone(), toks[j - 1].line));
                }
                return None;
            }
            ">" if j >= 1 && toks[j - 1].text == "-" => {
                saw_arrow = true;
                j -= 1; // consume the '-'
            }
            ")" if saw_arrow => {
                if let Some(open) = t.mate {
                    if open >= 2 && toks[open - 1].ident && toks[open - 2].text == "fn" {
                        return Some((toks[open - 1].text.clone(), toks[open - 1].line));
                    }
                    j = open; // keep walking (e.g. generics before parens)
                }
            }
            _ => {}
        }
    }
    None
}

/// Parse `<ns>.<N>` out of annotation text (trailing prose allowed).
fn parse_rank(text: &str) -> Option<(String, u32)> {
    let t = text.trim();
    let dot = t.find('.')?;
    let ns: String = t[..dot].trim().to_string();
    if ns.is_empty()
        || !ns
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '-')
    {
        return None;
    }
    let digits: String = t[dot + 1..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    if digits.is_empty() {
        return None;
    }
    Some((ns, digits.parse().ok()?))
}
