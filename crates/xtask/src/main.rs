//! `cargo xtask <task>` — workspace automation entry point.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> crates/ -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let json = args.iter().skip(1).any(|a| a == "--json");
            let result = if json {
                xtask::lint::run_json(&workspace_root())
            } else {
                xtask::lint::run(&workspace_root())
            };
            match result {
                Ok(0) => ExitCode::SUCCESS,
                Ok(_) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("xtask lint: io error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--json]");
            ExitCode::FAILURE
        }
    }
}
