//! `papi-verify` static-analysis pass.
//!
//! Five repo-specific rules, enforced over every non-test source line of
//! the workspace (vendored shims excluded):
//!
//! 1. **no-panic** — the server and codec crates (`pcp-wire`, `pcp`) must
//!    not contain `.unwrap()`, `.expect(…)` or `panic!` outside test code.
//!    Request paths run on daemon threads; a panic there kills a worker and
//!    silently degrades the pool, so fallible paths must return typed
//!    errors (`PduError`, `ServerError`, `PmcdError`).
//! 2. **relaxed-ok** — every `Ordering::Relaxed` must carry a
//!    `// relaxed-ok: <why>` justification on the same line or in the
//!    comment block directly above it (multi-line justifications carry the
//!    tag on their first line). The simulator is deliberately lock-free
//!    around the nest counters; the annotation forces each site to argue
//!    why relaxed ordering cannot lose or reorder anything the readers
//!    care about.
//! 3. **privilege-taint** — outside `memsim` and `pcp` (the two crates that
//!    *implement* the privilege boundary), any `pub fn` whose body reads
//!    `NestCounters` (via `.counters()` / `.counters_arc()`) must either
//!    take a `&PrivilegeToken` in its signature or waive the rule with a
//!    `// privilege-ok: <why>` comment at the access site. This is a taint
//!    check: socket-wide counters are privileged state, and every public
//!    door to them must show its capability.
//! 4. **obs-feature-gate** — every `obs::span!` / `obs::instant!` call in
//!    non-test code must sit behind a `#[cfg(feature = "obs")]` attribute
//!    (same line or the contiguous attribute block directly above), or
//!    waive the rule with a `// obs-ok: <why>` comment. Spans are hot-path
//!    instrumentation; the gate guarantees default builds pay nothing for
//!    them. The `obs` crate itself is exempt (it implements the layer).
//!    Because the attribute's `"obs"` is a string literal — which the
//!    scrubber blanks — this rule inspects the raw source lines.
//! 5. **metric-catalog** — the metric name at every `counter!` / `gauge!` /
//!    `histogram!` call site in non-test code must be a string literal
//!    that appears (backtick-quoted) in the checked-in `METRICS.md`, or
//!    waive the rule with a `// metric-ok: <why>` comment. Exported
//!    metric names are external API: dashboards, scrape rules and the
//!    PMNS `pmcd.obs.*` subtree all key on them, so an uncatalogued name
//!    is an undocumented interface and a typo is a silently dead series.
//!    The `obs` crate (which implements the macros) is exempt.
//!
//! The scanner is a lightweight lexer (comments, strings and char literals
//! stripped; `#[cfg(test)]` modules brace-matched and skipped), not a full
//! parser — deliberately dependency-free so `cargo xtask lint` works
//! offline.

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free (rule 1). `bench` is
/// held to the same bar as the daemons: a failed sweep point must
/// surface as a typed `RunnerError` that fails its experiment, never as
/// a panic that kills the whole reproduction run. `store` holds whole
/// archived runs — a panic there loses history, so every fallible path
/// must return a typed `StoreError`.
const NO_PANIC_CRATES: &[&str] = &["pcp-wire", "pcp", "bench", "store"];

/// Crates allowed to read `NestCounters` without a token (rule 3): they
/// implement the privilege boundary rather than crossing it.
const TAINT_EXEMPT_CRATES: &[&str] = &["memsim", "pcp"];

/// Tracer call sites that must be feature-gated (rule 4).
const OBS_NEEDLES: &[&str] = &["obs::span!", "obs::instant!"];

/// Crates exempt from rule 4: the tracer crate itself.
const OBS_EXEMPT_CRATES: &[&str] = &["obs"];

/// Metric-registration macros whose name argument must be catalogued
/// (rule 5).
const METRIC_NEEDLES: &[&str] = &["counter!(", "gauge!(", "histogram!("];

/// Crates exempt from rule 5: the metrics crate itself.
const METRIC_EXEMPT_CRATES: &[&str] = &["obs"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub msg: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    NoPanic,
    RelaxedOk,
    PrivilegeTaint,
    ObsFeatureGate,
    MetricCatalog,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::NoPanic => write!(f, "no-panic"),
            Rule::RelaxedOk => write!(f, "relaxed-ok"),
            Rule::PrivilegeTaint => write!(f, "privilege-taint"),
            Rule::ObsFeatureGate => write!(f, "obs-feature-gate"),
            Rule::MetricCatalog => write!(f, "metric-catalog"),
        }
    }
}

/// The set of documented metric names, parsed from `METRICS.md`: every
/// backtick-quoted whitespace-free token in the document counts as a
/// catalogued name, so both table rows and prose mentions register.
#[derive(Debug, Clone, Default)]
pub struct MetricCatalog {
    names: std::collections::BTreeSet<String>,
}

impl MetricCatalog {
    pub fn parse(md: &str) -> Self {
        let mut names = std::collections::BTreeSet::new();
        for line in md.lines() {
            let mut rest = line;
            while let Some(start) = rest.find('`') {
                let after = &rest[start + 1..];
                let Some(end) = after.find('`') else { break };
                let tok = &after[..end];
                if !tok.is_empty() && !tok.contains(char::is_whitespace) {
                    names.insert(tok.to_owned());
                }
                rest = &after[end + 1..];
            }
        }
        MetricCatalog { names }
    }

    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// A source file split into parallel per-line views.
struct Scrubbed {
    /// Code with comments, string contents and char literals blanked.
    code: Vec<String>,
    /// Comment text per line (line + block comments).
    comment: Vec<String>,
    /// The unmodified source lines — for checks that must see string
    /// literals, like `feature = "obs"` inside a `#[cfg(…)]` attribute.
    raw: Vec<String>,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    is_test: Vec<bool>,
}

/// Lex `source` into code/comment line views.
fn scrub(source: &str) -> Scrubbed {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }

    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(source.len() / 4);
    let mut state = State::Code;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            code.push('\n');
            comment.push('\n');
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push(' ');
                    comment.push(' ');
                    i += 1; // second slash consumed below as comment text
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '"' {
                    state = State::Str;
                    code.push(' ');
                    comment.push(' ');
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&code) {
                    // Possible raw / byte / raw-byte string prefix.
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') && (c == 'r' || bytes.get(i + 1) != Some(&'"')) {
                        // r"…", r#"…"#, br"…" — but a plain b"…" only when
                        // the quote directly follows the b.
                        for _ in i..=j {
                            code.push(' ');
                            comment.push(' ');
                        }
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    } else if c == 'b' && bytes.get(i + 1) == Some(&'"') {
                        code.push_str("  ");
                        comment.push_str("  ");
                        state = State::Str;
                        i += 2;
                        continue;
                    } else {
                        code.push(c);
                        comment.push(' ');
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a char literal closes with
                    // a quote one or two (escaped) chars later.
                    let is_char = matches!(
                        (next, bytes.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char {
                        state = State::Char;
                    }
                    code.push(' ');
                    comment.push(' ');
                } else {
                    code.push(c);
                    comment.push(' ');
                }
            }
            State::LineComment => {
                code.push(' ');
                comment.push(c);
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    continue;
                } else if c == '/' && next == Some('*') {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                    continue;
                }
                code.push(' ');
                comment.push(c);
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                code.push(' ');
                comment.push(' ');
                if c == '"' {
                    state = State::Code;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            code.push(' ');
                            comment.push(' ');
                        }
                        i += hashes + 1;
                        state = State::Code;
                        continue;
                    }
                }
                code.push(' ');
                comment.push(' ');
            }
            State::Char => {
                if c == '\\' {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                code.push(' ');
                comment.push(' ');
                if c == '\'' {
                    state = State::Code;
                }
            }
        }
        i += 1;
    }

    let code: Vec<String> = code.lines().map(str::to_owned).collect();
    let comment: Vec<String> = comment.lines().map(str::to_owned).collect();
    let raw: Vec<String> = source.lines().map(str::to_owned).collect();
    let is_test = mark_test_lines(&code);
    Scrubbed {
        code,
        comment,
        raw,
        is_test,
    }
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Mark lines belonging to `#[cfg(test)]` items (brace-matched).
fn mark_test_lines(code: &[String]) -> Vec<bool> {
    mark_gated_lines(code, code, &|a| {
        a.contains("cfg(test") || a.contains("cfg(all(test")
    })
}

/// Mark lines belonging to items behind an attribute matching `is_gate`
/// (brace-matched). Attribute lines are detected on the `code` view;
/// `is_gate` runs against the same line of `attr_view` — pass the raw
/// view when the attribute's argument is a string literal the scrubber
/// blanks (e.g. `feature = "obs"`).
fn mark_gated_lines(
    code: &[String],
    attr_view: &[String],
    is_gate: &dyn Fn(&str) -> bool,
) -> Vec<bool> {
    let mut out = vec![false; code.len()];
    let mut pending_attr = false;
    let mut depth: i64 = 0; // >0 while inside a gated item
    let mut waiting_open = false;
    for (ln, line) in code.iter().enumerate() {
        if depth > 0 || waiting_open {
            out[ln] = true;
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        waiting_open = false;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if depth <= 0 && !waiting_open {
                depth = 0;
            }
            continue;
        }
        let t = line.trim_start();
        if t.starts_with("#[") && is_gate(attr_view[ln].trim_start()) {
            pending_attr = true;
            out[ln] = true;
            continue;
        }
        if pending_attr {
            out[ln] = true;
            if t.starts_with("#[") {
                continue; // stacked attributes
            }
            pending_attr = false;
            if t.starts_with("mod ")
                || t.starts_with("pub mod ")
                || t.contains("fn ")
                || t.starts_with("impl")
            {
                waiting_open = true;
                for c in line.chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            waiting_open = false;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if depth <= 0 && !waiting_open {
                    depth = 0;
                }
            }
            // Otherwise (`use`, type alias …) the attribute gates only this
            // line, which is already marked.
        }
    }
    out
}

/// True when `line`'s or the previous line's comment carries `tag`.
fn annotated(s: &Scrubbed, ln: usize, tag: &str) -> bool {
    if s.comment[ln].contains(tag) {
        return true;
    }
    // Walk up through the contiguous comment block directly above: a
    // multi-line justification may carry the tag on its first line.
    let mut i = ln;
    while i > 0 {
        i -= 1;
        if s.comment[i].contains(tag) {
            return true;
        }
        // Stop once we leave the comment block (a code line or a blank
        // line). The line immediately above may carry code (a trailing
        // comment there still counts, matching the one-line form).
        if !s.code[i].trim().is_empty() || s.comment[i].trim().is_empty() {
            break;
        }
    }
    false
}

/// Lint one file's source with rules 1–4 only (no metric catalog; rule 5
/// needs the workspace's `METRICS.md` and runs via
/// [`lint_source_with_catalog`]).
pub fn lint_source(crate_name: &str, file: &str, source: &str) -> Vec<Violation> {
    lint_source_with_catalog(crate_name, file, source, None)
}

/// Lint one file's source. `crate_name` is the directory name under
/// `crates/` (the root package lints as `papi-repro`). Rule 5 runs only
/// when a parsed [`MetricCatalog`] is supplied.
pub fn lint_source_with_catalog(
    crate_name: &str,
    file: &str,
    source: &str,
    catalog: Option<&MetricCatalog>,
) -> Vec<Violation> {
    let s = scrub(source);
    let mut out = Vec::new();

    // Rule 1: no-panic in server/codec crates.
    if NO_PANIC_CRATES.contains(&crate_name) {
        for (ln, code) in s.code.iter().enumerate() {
            if s.is_test[ln] {
                continue;
            }
            for needle in [".unwrap()", ".expect(", "panic!"] {
                if code.contains(needle) {
                    out.push(Violation {
                        file: file.to_owned(),
                        line: ln + 1,
                        rule: Rule::NoPanic,
                        msg: format!(
                            "`{needle}` in non-test {crate_name} code; return a typed error instead"
                        ),
                    });
                }
            }
        }
    }

    // Rule 2: relaxed-ok justifications.
    for (ln, code) in s.code.iter().enumerate() {
        if s.is_test[ln] || !code.contains("Ordering::Relaxed") {
            continue;
        }
        if !annotated(&s, ln, "relaxed-ok:") {
            out.push(Violation {
                file: file.to_owned(),
                line: ln + 1,
                rule: Rule::RelaxedOk,
                msg: "`Ordering::Relaxed` without a `// relaxed-ok:` justification".to_owned(),
            });
        }
    }

    // Rule 3: privilege taint.
    if !TAINT_EXEMPT_CRATES.contains(&crate_name) {
        taint_check(&s, file, &mut out);
    }

    // Rule 4: obs call sites must be feature-gated. Item-level gates
    // (`#[cfg(feature = "obs")]` on the enclosing fn/mod/impl) are
    // brace-matched; statement-level and same-line gates are checked by
    // `obs_gated`. Detection runs on the raw view because the scrubber
    // blanks the attribute's `"obs"` string literal.
    if !OBS_EXEMPT_CRATES.contains(&crate_name) {
        let in_gated_item = mark_gated_lines(&s.code, &s.raw, &|a| {
            let flat: String = a.split_whitespace().collect();
            flat.contains("feature=\"obs\"")
        });
        for (ln, code) in s.code.iter().enumerate() {
            if s.is_test[ln] || !OBS_NEEDLES.iter().any(|n| code.contains(n)) {
                continue;
            }
            if in_gated_item[ln] || obs_gated(&s, ln) || annotated(&s, ln, "obs-ok:") {
                continue;
            }
            out.push(Violation {
                file: file.to_owned(),
                line: ln + 1,
                rule: Rule::ObsFeatureGate,
                msg: "tracer call without a `#[cfg(feature = \"obs\")]` gate \
                      (add the attribute or a `// obs-ok:` waiver)"
                    .to_owned(),
            });
        }
    }

    // Rule 5: metric names must be catalogued in METRICS.md.
    if let Some(catalog) = catalog {
        if !METRIC_EXEMPT_CRATES.contains(&crate_name) {
            metric_catalog_check(&s, file, catalog, &mut out);
        }
    }

    out.sort_by_key(|v| v.line);
    out
}

/// Rule 5 body: find every metric-macro call site in non-test code,
/// extract its name literal from the raw view (the scrubber blanks
/// string contents out of the code view) and require it to appear in
/// the catalog — or carry a `// metric-ok:` waiver.
fn metric_catalog_check(
    s: &Scrubbed,
    file: &str,
    catalog: &MetricCatalog,
    out: &mut Vec<Violation>,
) {
    for (ln, code) in s.code.iter().enumerate() {
        if s.is_test[ln] {
            continue;
        }
        for needle in METRIC_NEEDLES {
            let mut pos = 0;
            while let Some(p) = code[pos..].find(needle) {
                let at = pos + p;
                pos = at + needle.len();
                // Token boundary on the left: `counter!(` must not match
                // inside a longer macro name.
                if code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    continue;
                }
                if annotated(s, ln, "metric-ok:") {
                    continue;
                }
                match metric_name_at(&s.raw, ln, needle) {
                    Some(name) if catalog.contains(&name) => {}
                    Some(name) => out.push(Violation {
                        file: file.to_owned(),
                        line: ln + 1,
                        rule: Rule::MetricCatalog,
                        msg: format!(
                            "metric name \"{name}\" is not catalogued in METRICS.md \
                             (document it there or add a `// metric-ok:` waiver)"
                        ),
                    }),
                    None => out.push(Violation {
                        file: file.to_owned(),
                        line: ln + 1,
                        rule: Rule::MetricCatalog,
                        msg: format!(
                            "`{needle}…)` without a string-literal metric name; exported \
                             names are external API and must be literals catalogued in \
                             METRICS.md (or waived with `// metric-ok:`)"
                        ),
                    }),
                }
            }
        }
    }
}

/// The string literal naming the metric at a macro call site: the first
/// quoted token after `needle` on the raw line, falling back to the next
/// line for calls whose argument wrapped.
fn metric_name_at(raw: &[String], ln: usize, needle: &str) -> Option<String> {
    let start = raw[ln].find(needle)? + needle.len();
    first_quoted(&raw[ln][start..]).or_else(|| raw.get(ln + 1).and_then(|l| first_quoted(l)))
}

fn first_quoted(s: &str) -> Option<String> {
    let open = s.find('"')?;
    let rest = &s[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_owned())
}

/// True when line `ln` sits behind a `#[cfg(feature = "obs")]` gate: the
/// attribute appears on the line itself or in the contiguous run of
/// attribute lines directly above. Works on the raw lines because the
/// scrubber blanks the `"obs"` string literal out of the code view.
fn obs_gated(s: &Scrubbed, ln: usize) -> bool {
    let has_gate = |line: &str| {
        let flat: String = line.split_whitespace().collect();
        flat.contains("feature=\"obs\"")
    };
    if has_gate(&s.raw[ln]) {
        return true;
    }
    let mut i = ln;
    while i > 0 {
        i -= 1;
        let t = s.raw[i].trim_start();
        if t.starts_with("#[") {
            if has_gate(t) {
                return true;
            }
            continue; // stacked attributes
        }
        if t.starts_with("//") {
            continue; // comments may interleave with attributes
        }
        break;
    }
    false
}

/// Needles that constitute a `NestCounters` read.
const TAINT_NEEDLES: &[&str] = &[".counters()", ".counters_arc()"];

fn taint_check(s: &Scrubbed, file: &str, out: &mut Vec<Violation>) {
    let flat: String = s
        .code
        .iter()
        .flat_map(|l| l.chars().chain(std::iter::once('\n')))
        .collect();
    let line_of = |pos: usize| flat[..pos].matches('\n').count();

    let mut search = 0;
    while let Some(rel) = flat[search..].find("fn ") {
        let at = search + rel;
        search = at + 3;
        // Token boundary on the left.
        if at > 0
            && flat[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        let fn_line = line_of(at);
        if s.is_test[fn_line] {
            continue;
        }
        // Public? The declaration line must start with plain `pub`
        // (`pub(crate)`/`pub(super)` are not public API).
        let decl = s.code[fn_line].trim_start();
        let is_pub = decl.starts_with("pub fn")
            || decl.starts_with("pub async fn")
            || decl.starts_with("pub const fn")
            || decl.starts_with("pub unsafe fn");
        if !is_pub {
            continue;
        }
        // Signature: everything up to the body brace (or `;` for decls).
        let Some(body_open) = find_body_open(&flat, at) else {
            continue;
        };
        let signature = &flat[at..body_open];
        let Some(body_close) = match_brace(&flat, body_open) else {
            continue;
        };
        let body = &flat[body_open..body_close];
        if !TAINT_NEEDLES.iter().any(|n| body.contains(n)) {
            continue;
        }
        if signature.contains("PrivilegeToken") {
            continue;
        }
        // No token in the signature: every access site needs a waiver.
        for needle in TAINT_NEEDLES {
            let mut pos = 0;
            while let Some(p) = body[pos..].find(needle) {
                let abs = body_open + pos + p;
                pos += p + needle.len();
                let ln = line_of(abs);
                if !annotated(s, ln, "privilege-ok:") {
                    out.push(Violation {
                        file: file.to_owned(),
                        line: ln + 1,
                        rule: Rule::PrivilegeTaint,
                        msg: format!(
                            "public fn reads NestCounters via `{needle}` without taking \
                             `&PrivilegeToken` (add the parameter or a `// privilege-ok:` waiver)"
                        ),
                    });
                }
            }
        }
        search = body_close;
    }
}

/// Find the `{` opening the body of the fn declared at `at`, or `None` for
/// a bodiless declaration (trait method). Skips braces inside the argument
/// list / return type generics by tracking parens and angle depth coarsely.
fn find_body_open(flat: &str, at: usize) -> Option<usize> {
    let bytes = flat.as_bytes();
    let mut paren = 0i64;
    for (off, &b) in bytes[at..].iter().enumerate() {
        match b {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b'{' if paren == 0 => return Some(at + off),
            b';' if paren == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Index one past the `}` matching the `{` at `open`.
fn match_brace(flat: &str, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (off, b) in flat.as_bytes()[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`. Walks the root package's
/// `src/` and `examples/` plus every `crates/*/src` (vendored shims and
/// `tests/` trees are out of scope: the former are stand-ins, the latter
/// are test code by definition). Rule 5 reads the workspace `METRICS.md`;
/// a missing catalog is itself a violation, so the rule cannot silently
/// disappear.
pub fn lint_workspace(root: &Path) -> std::io::Result<(usize, Vec<Violation>)> {
    let mut files = Vec::new();
    walk(&root.join("src"), &mut files)?;
    walk(&root.join("examples"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            walk(&dir.join("src"), &mut files)?;
            walk(&dir.join("examples"), &mut files)?;
        }
    }

    let catalog = std::fs::read_to_string(root.join("METRICS.md"))
        .ok()
        .map(|md| MetricCatalog::parse(&md));

    let mut violations = Vec::new();
    if catalog.is_none() {
        violations.push(Violation {
            file: "METRICS.md".to_owned(),
            line: 1,
            rule: Rule::MetricCatalog,
            msg: "METRICS.md is missing; the metric-name catalog is required".to_owned(),
        });
    }
    let nfiles = files.len();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let crate_name = crate_of(rel);
        let source = std::fs::read_to_string(&path)?;
        violations.extend(lint_source_with_catalog(
            &crate_name,
            &rel.display().to_string(),
            &source,
            catalog.as_ref(),
        ));
    }
    Ok((nfiles, violations))
}

/// Crate name of a workspace-relative path (`crates/<name>/…` or the root
/// package).
fn crate_of(rel: &Path) -> String {
    let mut parts = rel.components();
    match parts.next().and_then(|c| c.as_os_str().to_str()) {
        Some("crates") => parts
            .next()
            .and_then(|c| c.as_os_str().to_str())
            .unwrap_or("papi-repro")
            .to_owned(),
        _ => "papi-repro".to_owned(),
    }
}

/// Entry point for `cargo xtask lint`: prints findings, returns the count.
pub fn run(root: &Path) -> std::io::Result<usize> {
    let (nfiles, violations) = lint_workspace(root)?;
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        eprintln!("lint clean: {nfiles} files, 5 rules");
    } else {
        eprintln!("{} violation(s) in {nfiles} files", violations.len());
    }
    Ok(violations.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let s = scrub("let x = \"panic!\"; // panic! in comment\n");
        assert!(!s.code[0].contains("panic!"));
        assert!(s.comment[0].contains("panic!"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let s = scrub("fn f<'a>(x: &'a str) { x.unwrap() }\n");
        assert!(s.code[0].contains(".unwrap()"));
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap() }\n}\nfn c() {}\n";
        let s = scrub(src);
        assert!(!s.is_test[0]);
        assert!(s.is_test[2]);
        assert!(s.is_test[3]);
        assert!(s.is_test[4]);
        assert!(!s.is_test[5]);
    }

    #[test]
    fn relaxed_annotation_may_precede() {
        let src = "// relaxed-ok: statistics only\nx.load(Ordering::Relaxed);\n";
        assert!(lint_source("memsim", "f.rs", src).is_empty());
        let bad = "x.load(Ordering::Relaxed);\n";
        let v = lint_source("memsim", "f.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RelaxedOk);
    }

    #[test]
    fn obs_gate_rule_accepts_gated_waived_and_exempt_sites() {
        // Statement-level gate directly above the call.
        let gated = "#[cfg(feature = \"obs\")]\nlet _s = obs::span!(\"x\");\n";
        assert!(lint_source("memsim", "f.rs", gated).is_empty());
        // Item-level gate on the enclosing fn (brace-matched).
        let item = "#[cfg(feature = \"obs\")]\nfn f() {\n    obs::instant!(\"x\");\n}\n";
        assert!(lint_source("memsim", "f.rs", item).is_empty());
        // Waiver comment.
        let waived = "// obs-ok: measures the tracer itself\nlet _s = obs::span!(\"x\");\n";
        assert!(lint_source("papi-repro", "f.rs", waived).is_empty());
        // Ungated call: one violation, right line; the obs crate is exempt.
        let bad = "fn f() {\n    let _s = obs::span!(\"x\");\n}\n";
        let v = lint_source("kernels", "f.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ObsFeatureGate);
        assert_eq!(v[0].line, 2);
        assert!(lint_source("obs", "f.rs", bad).is_empty());
    }

    #[test]
    fn metric_catalog_parses_backtick_tokens_and_checks_sites() {
        let cat = MetricCatalog::parse(
            "# Metrics\n\n| `a.count` | counter |\nprose mentions `b.depth` too, \
             but `not a name` has spaces.\n",
        );
        assert_eq!(cat.len(), 2, "{cat:?}");
        assert!(cat.contains("a.count") && cat.contains("b.depth"));
        let ok = "fn f() { obs::counter!(\"a.count\").inc(); }\n";
        assert!(lint_source_with_catalog("kernels", "f.rs", ok, Some(&cat)).is_empty());
        let wrapped = "fn f() {\n    obs::counter!(\n        \"a.count\"\n    ).inc();\n}\n";
        assert!(lint_source_with_catalog("kernels", "f.rs", wrapped, Some(&cat)).is_empty());
        let bad = "fn f() { obs::gauge!(\"rogue.depth\").set(1); }\n";
        let v = lint_source_with_catalog("kernels", "f.rs", bad, Some(&cat));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::MetricCatalog);
        // A computed name cannot be checked against the catalog, so it
        // is a violation unless waived.
        let dynamic = "fn f(n: &'static str) { obs::counter!(n).inc(); }\n";
        let v = lint_source_with_catalog("kernels", "f.rs", dynamic, Some(&cat));
        assert_eq!(v.len(), 1, "{v:?}");
        let waived = "// metric-ok: name computed per channel\n\
                      fn f(n: &'static str) { obs::counter!(n).inc(); }\n";
        assert!(lint_source_with_catalog("kernels", "f.rs", waived, Some(&cat)).is_empty());
    }

    #[test]
    fn relaxed_annotation_spans_comment_block() {
        // Tag on the first line of a multi-line justification.
        let src = "// relaxed-ok: a long argument that\n// wraps onto a second line.\nx.load(Ordering::Relaxed);\n";
        assert!(lint_source("memsim", "f.rs", src).is_empty());
        // A blank line breaks the block: the tag no longer applies.
        let bad = "// relaxed-ok: detached\n\nx.load(Ordering::Relaxed);\n";
        let v = lint_source("memsim", "f.rs", bad);
        assert_eq!(v.len(), 1);
        // An intervening code line breaks the block too.
        let bad = "// relaxed-ok: for the store\ny.store(1, Ordering::Relaxed);\nx.load(Ordering::Relaxed);\n";
        let v = lint_source("memsim", "f.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }
}
