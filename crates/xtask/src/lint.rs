//! `papi-verify` static-analysis pass.
//!
//! Seven repo-specific rules, enforced over every non-test source line of
//! the workspace (vendored shims excluded):
//!
//! 1. **no-panic** — the server and codec crates (`pcp-wire`, `pcp`) must
//!    not contain `.unwrap()`, `.expect(…)` or `panic!` outside test code.
//!    Request paths run on daemon threads; a panic there kills a worker and
//!    silently degrades the pool, so fallible paths must return typed
//!    errors (`PduError`, `ServerError`, `PmcdError`).
//! 2. **relaxed-ok** — every `Ordering::Relaxed` must carry a
//!    `// relaxed-ok: <why>` justification on the same line or in the
//!    comment block directly above it (multi-line justifications carry the
//!    tag on their first line). The simulator is deliberately lock-free
//!    around the nest counters; the annotation forces each site to argue
//!    why relaxed ordering cannot lose or reorder anything the readers
//!    care about.
//! 3. **privilege-taint** — outside `memsim` and `pcp` (the two crates that
//!    *implement* the privilege boundary), any `pub fn` whose body reads
//!    `NestCounters` (via `.counters()` / `.counters_arc()`) must either
//!    take a `&PrivilegeToken` in its signature or waive the rule with a
//!    `// privilege-ok: <why>` comment at the access site. This is a taint
//!    check: socket-wide counters are privileged state, and every public
//!    door to them must show its capability.
//! 4. **obs-feature-gate** — every `obs::span!` / `obs::instant!` call in
//!    non-test code must sit behind a `#[cfg(feature = "obs")]` attribute
//!    (same line or the contiguous attribute block directly above), or
//!    waive the rule with a `// obs-ok: <why>` comment. Spans are hot-path
//!    instrumentation; the gate guarantees default builds pay nothing for
//!    them. The `obs` crate itself is exempt (it implements the layer).
//!    Because the attribute's `"obs"` is a string literal — which the
//!    scrubber blanks — this rule inspects the raw source lines.
//! 5. **metric-catalog** — the metric name at every `counter!` / `gauge!` /
//!    `histogram!` call site in non-test code must be a string literal
//!    that appears (backtick-quoted) in the checked-in `METRICS.md`, or
//!    waive the rule with a `// metric-ok: <why>` comment. Exported
//!    metric names are external API: dashboards, scrape rules and the
//!    PMNS `pmcd.obs.*` subtree all key on them, so an uncatalogued name
//!    is an undocumented interface and a typo is a silently dead series.
//!    The `obs` crate (which implements the macros) is exempt.
//! 6. **lock-order** — every `Mutex`/`RwLock` declaration in the
//!    concurrent-core crates (`pcp-wire`, `store`, `obs`, `pcp`) must
//!    carry a `// lock-rank: <ns>.<N>` annotation; the analyzer tracks
//!    guard lifetimes, builds the workspace-wide static lock-acquisition
//!    graph (including across direct intra-workspace calls) and fails on
//!    same-namespace rank inversions or any cycle, rendering the graph in
//!    the error. Unresolvable `.lock()` receivers need `// lock-ok: <why>`.
//!    See [`crate::conc`] and DESIGN.md §13.
//! 7. **no-blocking-under-lock** — no guard from a ranked lock may be
//!    live across a blocking call (`recv*`, `join`, `accept`, stream
//!    I/O, `sleep`, `connect`, `Condvar::wait*`), directly or through a
//!    uniquely-resolved workspace call, unless the site carries a
//!    `// blocking-ok: <why>` waiver. A `Condvar::wait*` consuming the
//!    guard ends it (the wait releases the lock atomically).
//!
//! Rules 1–5 run on a lightweight lexer (comments, strings and char
//! literals stripped; `#[cfg(test)]` items brace-matched and skipped);
//! rules 6–7 run on a delimiter-matched token stream built over the same
//! scrubbed view ([`crate::tokens`]). Not a full parser — deliberately
//! dependency-free so `cargo xtask lint` works offline.

use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free (rule 1). `bench` is
/// held to the same bar as the daemons: a failed sweep point must
/// surface as a typed `RunnerError` that fails its experiment, never as
/// a panic that kills the whole reproduction run. `store` holds whole
/// archived runs — a panic there loses history, so every fallible path
/// must return a typed `StoreError`. `obs` runs on every hot path of
/// every instrumented binary — a panic in the tracer takes the host
/// process down with it, so it too must stay typed-error-only. `fleet`
/// federates every host's data: a panic in the aggregator blinds the
/// whole fleet at once, so scrape/merge failures must degrade to
/// per-host staleness instead. `refute` renders verdicts inside the
/// repro runner — a panic there would take the whole refutation sweep
/// down instead of failing one mechanism with a typed `RefuteError`.
const NO_PANIC_CRATES: &[&str] = &[
    "pcp-wire", "pcp", "bench", "store", "obs", "fleet", "refute",
];

/// Crates allowed to read `NestCounters` without a token (rule 3): they
/// implement the privilege boundary rather than crossing it.
const TAINT_EXEMPT_CRATES: &[&str] = &["memsim", "pcp"];

/// Tracer call sites that must be feature-gated (rule 4).
const OBS_NEEDLES: &[&str] = &["obs::span!", "obs::instant!"];

/// Crates exempt from rule 4: the tracer crate itself.
const OBS_EXEMPT_CRATES: &[&str] = &["obs"];

/// Metric-registration macros whose name argument must be catalogued
/// (rule 5).
const METRIC_NEEDLES: &[&str] = &["counter!(", "gauge!(", "histogram!("];

/// Crates exempt from rule 5: the metrics crate itself.
const METRIC_EXEMPT_CRATES: &[&str] = &["obs"];

/// Crates whose locks fall under rules 6–7: the concurrent measurement
/// core whose deadlock-freedom the paper's indirection claim rests on.
pub const LOCK_RANK_CRATES: &[&str] = &["pcp-wire", "store", "obs", "pcp", "fleet", "refute"];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub msg: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    NoPanic,
    RelaxedOk,
    PrivilegeTaint,
    ObsFeatureGate,
    MetricCatalog,
    LockOrder,
    BlockingUnderLock,
}

/// All rule names, in rule-number order (stable: part of the `--json`
/// schema).
pub const RULE_NAMES: &[&str] = &[
    "no-panic",
    "relaxed-ok",
    "privilege-taint",
    "obs-feature-gate",
    "metric-catalog",
    "lock-order",
    "no-blocking-under-lock",
];

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::NoPanic => write!(f, "no-panic"),
            Rule::RelaxedOk => write!(f, "relaxed-ok"),
            Rule::PrivilegeTaint => write!(f, "privilege-taint"),
            Rule::ObsFeatureGate => write!(f, "obs-feature-gate"),
            Rule::MetricCatalog => write!(f, "metric-catalog"),
            Rule::LockOrder => write!(f, "lock-order"),
            Rule::BlockingUnderLock => write!(f, "no-blocking-under-lock"),
        }
    }
}

/// A waiver annotation found in the workspace (`relaxed-ok:`,
/// `privilege-ok:`, `obs-ok:`, `metric-ok:`, `blocking-ok:`, `lock-ok:`):
/// surfaced in the `--json` report so suppressions are auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub file: String,
    /// 1-based line number of the annotation.
    pub line: usize,
    /// Tag without the trailing colon, e.g. `blocking-ok`.
    pub tag: String,
    /// The justification text following the tag.
    pub why: String,
}

/// The set of documented metric names, parsed from `METRICS.md`: every
/// backtick-quoted whitespace-free token in the document counts as a
/// catalogued name, so both table rows and prose mentions register.
#[derive(Debug, Clone, Default)]
pub struct MetricCatalog {
    names: std::collections::BTreeSet<String>,
}

impl MetricCatalog {
    pub fn parse(md: &str) -> Self {
        let mut names = std::collections::BTreeSet::new();
        for line in md.lines() {
            let mut rest = line;
            while let Some(start) = rest.find('`') {
                let after = &rest[start + 1..];
                let Some(end) = after.find('`') else { break };
                let tok = &after[..end];
                if !tok.is_empty() && !tok.contains(char::is_whitespace) {
                    names.insert(tok.to_owned());
                }
                rest = &after[end + 1..];
            }
        }
        MetricCatalog { names }
    }

    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// A source file split into parallel per-line views. Every view has the
/// same number of lines and — because the scrubber blanks characters
/// one-for-one — identical per-line character counts, so a character
/// position is meaningful across views.
pub(crate) struct Scrubbed {
    /// Code with comments, string contents and char literals blanked.
    pub(crate) code: Vec<String>,
    /// Comment text per line (line + block comments).
    pub(crate) comment: Vec<String>,
    /// The unmodified source lines — for checks that must see string
    /// literals, like `feature = "obs"` inside a `#[cfg(…)]` attribute.
    pub(crate) raw: Vec<String>,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    pub(crate) is_test: Vec<bool>,
}

/// Lex `source` into code/comment line views.
pub(crate) fn scrub(source: &str) -> Scrubbed {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }

    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(source.len() / 4);
    let mut state = State::Code;
    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            code.push('\n');
            comment.push('\n');
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                } else if c == '"' {
                    state = State::Str;
                    code.push(' ');
                    comment.push(' ');
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&code) {
                    // Possible raw / byte / raw-byte string prefix.
                    let mut j = i + 1;
                    if c == 'b' && bytes.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') && (c == 'r' || bytes.get(i + 1) != Some(&'"')) {
                        // r"…", r#"…"#, br"…" — but a plain b"…" only when
                        // the quote directly follows the b.
                        for _ in i..=j {
                            code.push(' ');
                            comment.push(' ');
                        }
                        state = State::RawStr(hashes);
                        i = j + 1;
                        continue;
                    } else if c == 'b' && bytes.get(i + 1) == Some(&'"') {
                        code.push_str("  ");
                        comment.push_str("  ");
                        state = State::Str;
                        i += 2;
                        continue;
                    } else {
                        code.push(c);
                        comment.push(' ');
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime: a char literal closes with
                    // a quote one or two (escaped) chars later.
                    let is_char = matches!(
                        (next, bytes.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char {
                        state = State::Char;
                    }
                    code.push(' ');
                    comment.push(' ');
                } else {
                    code.push(c);
                    comment.push(' ');
                }
            }
            State::LineComment => {
                code.push(' ');
                comment.push(c);
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    continue;
                } else if c == '/' && next == Some('*') {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    state = State::BlockComment(depth + 1);
                    continue;
                }
                code.push(' ');
                comment.push(c);
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                code.push(' ');
                comment.push(' ');
                if c == '"' {
                    state = State::Code;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            code.push(' ');
                            comment.push(' ');
                        }
                        i += hashes + 1;
                        state = State::Code;
                        continue;
                    }
                }
                code.push(' ');
                comment.push(' ');
            }
            State::Char => {
                if c == '\\' {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                code.push(' ');
                comment.push(' ');
                if c == '\'' {
                    state = State::Code;
                }
            }
        }
        i += 1;
    }

    let code: Vec<String> = code.lines().map(str::to_owned).collect();
    let comment: Vec<String> = comment.lines().map(str::to_owned).collect();
    let raw: Vec<String> = source.lines().map(str::to_owned).collect();
    let is_test = mark_test_lines(&code);
    Scrubbed {
        code,
        comment,
        raw,
        is_test,
    }
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Mark lines belonging to `#[cfg(test)]` items (brace-matched).
fn mark_test_lines(code: &[String]) -> Vec<bool> {
    mark_gated_lines(code, code, &|a| {
        a.contains("cfg(test") || a.contains("cfg(all(test")
    })
}

/// Mark lines belonging to items behind an attribute matching `is_gate`.
/// Attribute spans are detected on the `code` view and may wrap across
/// lines (`#[cfg(all(\n    test,\n    ...\n))]` — brackets are matched
/// character by character); `is_gate` runs against the whitespace-
/// flattened text of the same span taken from `attr_view` — pass the raw
/// view when the attribute's argument is a string literal the scrubber
/// blanks (e.g. `feature = "obs"`). The gated item is then brace-matched
/// (block items, including an item opening on the attribute's own line)
/// or taken to the terminating `;` (statements, `use`, type aliases),
/// so nested modules and `#[cfg(test)] mod t { … }` one-liners both mark
/// correctly.
fn mark_gated_lines(
    code: &[String],
    attr_view: &[String],
    is_gate: &dyn Fn(&str) -> bool,
) -> Vec<bool> {
    #[derive(Clone, Copy, PartialEq)]
    enum St {
        Idle,
        Attr,    // inside an attribute's brackets
        Between, // after an attribute, before its item (or next attribute)
        Item,    // inside a gated item
    }

    let n = code.len();
    let mut out = vec![false; n];
    let mut state = St::Idle;
    let mut gated = false;
    let mut chain_start = 0usize; // first line of the attribute chain
    let mut depth: i64 = 0; // attr bracket depth / item brace depth
    let mut opened = false; // item: first `{` seen
    let mut attr_buf = String::new();

    for ln in 0..n {
        let cv: Vec<char> = code[ln].chars().collect();
        let av: Vec<char> = attr_view[ln].chars().collect();
        let mut i = 0usize;
        loop {
            match state {
                St::Idle => {
                    while i < cv.len() && cv[i].is_whitespace() {
                        i += 1;
                    }
                    if i + 1 < cv.len() && cv[i] == '#' && cv[i + 1] == '[' {
                        state = St::Attr;
                        gated = false;
                        chain_start = ln;
                        depth = 0;
                        attr_buf.clear();
                        continue; // reprocess from `#`
                    }
                    break; // rest of the line is plain code
                }
                St::Attr => {
                    let mut closed = false;
                    while i < cv.len() {
                        attr_buf.push(av.get(i).copied().unwrap_or(' '));
                        match cv[i] {
                            '[' => depth += 1,
                            ']' => {
                                depth -= 1;
                                if depth == 0 {
                                    closed = true;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                        if closed {
                            break;
                        }
                    }
                    if closed {
                        let flat: String = attr_buf.split_whitespace().collect();
                        gated = gated || is_gate(&flat);
                        attr_buf.clear();
                        state = St::Between;
                        continue;
                    }
                    attr_buf.push(' ');
                    break; // attribute continues on the next line
                }
                St::Between => {
                    while i < cv.len() && cv[i].is_whitespace() {
                        i += 1;
                    }
                    if i >= cv.len() {
                        break; // item (or next attribute) on a later line
                    }
                    if i + 1 < cv.len() && cv[i] == '#' && cv[i + 1] == '[' {
                        state = St::Attr; // stacked attribute, chain continues
                        depth = 0;
                        continue;
                    }
                    if !gated {
                        state = St::Idle;
                        break; // ungated item: leave the rest of the line alone
                    }
                    for slot in out.iter_mut().take(ln + 1).skip(chain_start) {
                        *slot = true;
                    }
                    state = St::Item;
                    depth = 0;
                    opened = false;
                    continue;
                }
                St::Item => {
                    out[ln] = true;
                    let mut done = false;
                    while i < cv.len() {
                        match cv[i] {
                            '{' => {
                                depth += 1;
                                opened = true;
                            }
                            '}' => {
                                depth -= 1;
                                if opened && depth <= 0 {
                                    done = true;
                                }
                            }
                            ';' if !opened && depth == 0 => done = true,
                            _ => {}
                        }
                        i += 1;
                        if done {
                            break;
                        }
                    }
                    if done {
                        state = St::Idle;
                        continue; // the same line may start another item/attr
                    }
                    break; // item continues on the next line
                }
            }
        }
        // Lines fully inside a wrapped gated construct still need marking
        // even when the per-line loop exits early.
        if state == St::Item || (gated && (state == St::Attr || state == St::Between)) {
            out[ln] = true;
        }
        // Not-yet-gated attribute chains are marked retroactively once the
        // gate is confirmed and the item starts; nothing to do here.
    }
    out
}

/// Scrubbed views of `source` for external property tests: the code
/// lines (comments, string contents, and char literals blanked — what
/// rules 2–7 match against) and the comment lines.
pub fn scrub_lines(source: &str) -> (Vec<String>, Vec<String>) {
    let s = scrub(source);
    (s.code, s.comment)
}

/// True when `line`'s or the previous line's comment carries `tag`.
pub(crate) fn annotated(s: &Scrubbed, ln: usize, tag: &str) -> bool {
    annotation_text(s, ln, tag).is_some()
}

/// The text following `tag` in the comment on line `ln` or in the
/// contiguous comment block directly above; returns `(text, tag line)`.
/// Shares `annotated`'s placement rules: same line, or a comment block
/// above that is not broken by code or blank lines (the line directly
/// above may carry code with a trailing comment, matching the one-line
/// form).
pub(crate) fn annotation_text(s: &Scrubbed, ln: usize, tag: &str) -> Option<(String, usize)> {
    let grab = |i: usize| {
        s.comment[i]
            .find(tag)
            .map(|p| (s.comment[i][p + tag.len()..].trim().to_owned(), i))
    };
    if let Some(hit) = grab(ln) {
        return Some(hit);
    }
    let mut i = ln;
    while i > 0 {
        i -= 1;
        if let Some(hit) = grab(i) {
            return Some(hit);
        }
        if !s.code[i].trim().is_empty() || s.comment[i].trim().is_empty() {
            break;
        }
    }
    None
}

/// Lint one file's source with rules 1–4 only (no metric catalog; rule 5
/// needs the workspace's `METRICS.md` and runs via
/// [`lint_source_with_catalog`]).
pub fn lint_source(crate_name: &str, file: &str, source: &str) -> Vec<Violation> {
    lint_source_with_catalog(crate_name, file, source, None)
}

/// Lint one file's source. `crate_name` is the directory name under
/// `crates/` (the root package lints as `papi-repro`). Rule 5 runs only
/// when a parsed [`MetricCatalog`] is supplied.
pub fn lint_source_with_catalog(
    crate_name: &str,
    file: &str,
    source: &str,
    catalog: Option<&MetricCatalog>,
) -> Vec<Violation> {
    let s = scrub(source);
    let mut out = Vec::new();

    // Rule 1: no-panic in server/codec crates.
    if NO_PANIC_CRATES.contains(&crate_name) {
        for (ln, code) in s.code.iter().enumerate() {
            if s.is_test[ln] {
                continue;
            }
            for needle in [".unwrap()", ".expect(", "panic!"] {
                if code.contains(needle) {
                    out.push(Violation {
                        file: file.to_owned(),
                        line: ln + 1,
                        rule: Rule::NoPanic,
                        msg: format!(
                            "`{needle}` in non-test {crate_name} code; return a typed error instead"
                        ),
                    });
                }
            }
        }
    }

    // Rule 2: relaxed-ok justifications.
    for (ln, code) in s.code.iter().enumerate() {
        if s.is_test[ln] || !code.contains("Ordering::Relaxed") {
            continue;
        }
        if !annotated(&s, ln, "relaxed-ok:") {
            out.push(Violation {
                file: file.to_owned(),
                line: ln + 1,
                rule: Rule::RelaxedOk,
                msg: "`Ordering::Relaxed` without a `// relaxed-ok:` justification".to_owned(),
            });
        }
    }

    // Rule 3: privilege taint.
    if !TAINT_EXEMPT_CRATES.contains(&crate_name) {
        taint_check(&s, file, &mut out);
    }

    // Rule 4: obs call sites must be feature-gated. Item-level gates
    // (`#[cfg(feature = "obs")]` on the enclosing fn/mod/impl) are
    // brace-matched; statement-level and same-line gates are checked by
    // `obs_gated`. Detection runs on the raw view because the scrubber
    // blanks the attribute's `"obs"` string literal.
    if !OBS_EXEMPT_CRATES.contains(&crate_name) {
        let in_gated_item = mark_gated_lines(&s.code, &s.raw, &|a| {
            let flat: String = a.split_whitespace().collect();
            flat.contains("feature=\"obs\"")
        });
        for (ln, code) in s.code.iter().enumerate() {
            if s.is_test[ln] || !OBS_NEEDLES.iter().any(|n| code.contains(n)) {
                continue;
            }
            if in_gated_item[ln] || obs_gated(&s, ln) || annotated(&s, ln, "obs-ok:") {
                continue;
            }
            out.push(Violation {
                file: file.to_owned(),
                line: ln + 1,
                rule: Rule::ObsFeatureGate,
                msg: "tracer call without a `#[cfg(feature = \"obs\")]` gate \
                      (add the attribute or a `// obs-ok:` waiver)"
                    .to_owned(),
            });
        }
    }

    // Rule 5: metric names must be catalogued in METRICS.md.
    if let Some(catalog) = catalog {
        if !METRIC_EXEMPT_CRATES.contains(&crate_name) {
            metric_catalog_check(&s, file, catalog, &mut out);
        }
    }

    out.sort_by_key(|v| v.line);
    out
}

/// Rule 5 body: find every metric-macro call site in non-test code,
/// extract its name literal from the raw view (the scrubber blanks
/// string contents out of the code view) and require it to appear in
/// the catalog — or carry a `// metric-ok:` waiver.
fn metric_catalog_check(
    s: &Scrubbed,
    file: &str,
    catalog: &MetricCatalog,
    out: &mut Vec<Violation>,
) {
    for (ln, code) in s.code.iter().enumerate() {
        if s.is_test[ln] {
            continue;
        }
        for needle in METRIC_NEEDLES {
            let mut pos = 0;
            while let Some(p) = code[pos..].find(needle) {
                let at = pos + p;
                pos = at + needle.len();
                // Token boundary on the left: `counter!(` must not match
                // inside a longer macro name.
                if code[..at]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    continue;
                }
                if annotated(s, ln, "metric-ok:") {
                    continue;
                }
                match metric_name_at(&s.raw, ln, needle) {
                    Some(name) if catalog.contains(&name) => {}
                    Some(name) => out.push(Violation {
                        file: file.to_owned(),
                        line: ln + 1,
                        rule: Rule::MetricCatalog,
                        msg: format!(
                            "metric name \"{name}\" is not catalogued in METRICS.md \
                             (document it there or add a `// metric-ok:` waiver)"
                        ),
                    }),
                    None => out.push(Violation {
                        file: file.to_owned(),
                        line: ln + 1,
                        rule: Rule::MetricCatalog,
                        msg: format!(
                            "`{needle}…)` without a string-literal metric name; exported \
                             names are external API and must be literals catalogued in \
                             METRICS.md (or waived with `// metric-ok:`)"
                        ),
                    }),
                }
            }
        }
    }
}

/// The string literal naming the metric at a macro call site: the first
/// quoted token after `needle` on the raw line, falling back to the next
/// line for calls whose argument wrapped.
fn metric_name_at(raw: &[String], ln: usize, needle: &str) -> Option<String> {
    let start = raw[ln].find(needle)? + needle.len();
    first_quoted(&raw[ln][start..]).or_else(|| raw.get(ln + 1).and_then(|l| first_quoted(l)))
}

fn first_quoted(s: &str) -> Option<String> {
    let open = s.find('"')?;
    let rest = &s[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_owned())
}

/// True when line `ln` sits behind a `#[cfg(feature = "obs")]` gate: the
/// attribute appears on the line itself or in the contiguous run of
/// attribute lines directly above. Works on the raw lines because the
/// scrubber blanks the `"obs"` string literal out of the code view.
fn obs_gated(s: &Scrubbed, ln: usize) -> bool {
    let has_gate = |line: &str| {
        let flat: String = line.split_whitespace().collect();
        flat.contains("feature=\"obs\"")
    };
    if has_gate(&s.raw[ln]) {
        return true;
    }
    let mut i = ln;
    while i > 0 {
        i -= 1;
        let t = s.raw[i].trim_start();
        if t.starts_with("#[") {
            if has_gate(t) {
                return true;
            }
            continue; // stacked attributes
        }
        if t.starts_with("//") {
            continue; // comments may interleave with attributes
        }
        break;
    }
    false
}

/// Needles that constitute a `NestCounters` read.
const TAINT_NEEDLES: &[&str] = &[".counters()", ".counters_arc()"];

fn taint_check(s: &Scrubbed, file: &str, out: &mut Vec<Violation>) {
    let flat: String = s
        .code
        .iter()
        .flat_map(|l| l.chars().chain(std::iter::once('\n')))
        .collect();
    let line_of = |pos: usize| flat[..pos].matches('\n').count();

    let mut search = 0;
    while let Some(rel) = flat[search..].find("fn ") {
        let at = search + rel;
        search = at + 3;
        // Token boundary on the left.
        if at > 0
            && flat[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        let fn_line = line_of(at);
        if s.is_test[fn_line] {
            continue;
        }
        // Public? The declaration line must start with plain `pub`
        // (`pub(crate)`/`pub(super)` are not public API).
        let decl = s.code[fn_line].trim_start();
        let is_pub = decl.starts_with("pub fn")
            || decl.starts_with("pub async fn")
            || decl.starts_with("pub const fn")
            || decl.starts_with("pub unsafe fn");
        if !is_pub {
            continue;
        }
        // Signature: everything up to the body brace (or `;` for decls).
        let Some(body_open) = find_body_open(&flat, at) else {
            continue;
        };
        let signature = &flat[at..body_open];
        let Some(body_close) = match_brace(&flat, body_open) else {
            continue;
        };
        let body = &flat[body_open..body_close];
        if !TAINT_NEEDLES.iter().any(|n| body.contains(n)) {
            continue;
        }
        if signature.contains("PrivilegeToken") {
            continue;
        }
        // No token in the signature: every access site needs a waiver.
        for needle in TAINT_NEEDLES {
            let mut pos = 0;
            while let Some(p) = body[pos..].find(needle) {
                let abs = body_open + pos + p;
                pos += p + needle.len();
                let ln = line_of(abs);
                if !annotated(s, ln, "privilege-ok:") {
                    out.push(Violation {
                        file: file.to_owned(),
                        line: ln + 1,
                        rule: Rule::PrivilegeTaint,
                        msg: format!(
                            "public fn reads NestCounters via `{needle}` without taking \
                             `&PrivilegeToken` (add the parameter or a `// privilege-ok:` waiver)"
                        ),
                    });
                }
            }
        }
        search = body_close;
    }
}

/// Find the `{` opening the body of the fn declared at `at`, or `None` for
/// a bodiless declaration (trait method). Skips braces inside the argument
/// list / return type generics by tracking parens and angle depth coarsely.
fn find_body_open(flat: &str, at: usize) -> Option<usize> {
    let bytes = flat.as_bytes();
    let mut paren = 0i64;
    for (off, &b) in bytes[at..].iter().enumerate() {
        match b {
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b'{' if paren == 0 => return Some(at + off),
            b';' if paren == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Index one past the `}` matching the `{` at `open`.
fn match_brace(flat: &str, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (off, b) in flat.as_bytes()[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`. Walks the root package's
/// `src/` and `examples/` plus every `crates/*/src` (vendored shims and
/// `tests/` trees are out of scope: the former are stand-ins, the latter
/// are test code by definition). Rule 5 reads the workspace `METRICS.md`;
/// a missing catalog is itself a violation, so the rule cannot silently
/// disappear.
pub fn lint_workspace(root: &Path) -> std::io::Result<(usize, Vec<Violation>)> {
    let report = lint_workspace_full(root)?;
    Ok((report.nfiles, report.violations))
}

/// Everything one lint pass over the workspace produced: the file count,
/// all violations (rules 1–7, sorted per rule group), and the waiver
/// inventory (every `*-ok:` annotation found, whether or not anything
/// matched it) for the `--json` report.
pub struct WorkspaceReport {
    pub nfiles: usize,
    pub violations: Vec<Violation>,
    pub waivers: Vec<Waiver>,
}

/// The annotation tags whose uses are inventoried as [`Waiver`]s.
const WAIVER_TAGS: &[&str] = &[
    "relaxed-ok:",
    "privilege-ok:",
    "obs-ok:",
    "metric-ok:",
    "blocking-ok:",
    "lock-ok:",
];

/// Collect every waiver annotation in `s` into [`Waiver`] records.
fn collect_waivers(file: &str, s: &Scrubbed) -> Vec<Waiver> {
    let mut out = Vec::new();
    for (ln, comment) in s.comment.iter().enumerate() {
        for tag in WAIVER_TAGS {
            if let Some(p) = comment.find(tag) {
                out.push(Waiver {
                    file: file.to_owned(),
                    line: ln + 1,
                    tag: tag.trim_end_matches(':').to_owned(),
                    why: comment[p + tag.len()..].trim().to_owned(),
                });
            }
        }
    }
    out
}

/// Full workspace lint: rules 1–5 per file, then the cross-file
/// concurrency rules 6–7 over the [`LOCK_RANK_CRATES`] sources, plus the
/// waiver inventory.
pub fn lint_workspace_full(root: &Path) -> std::io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    walk(&root.join("src"), &mut files)?;
    walk(&root.join("examples"), &mut files)?;
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            walk(&dir.join("src"), &mut files)?;
            walk(&dir.join("examples"), &mut files)?;
        }
    }

    let catalog = std::fs::read_to_string(root.join("METRICS.md"))
        .ok()
        .map(|md| MetricCatalog::parse(&md));

    let mut violations = Vec::new();
    if catalog.is_none() {
        violations.push(Violation {
            file: "METRICS.md".to_owned(),
            line: 1,
            rule: Rule::MetricCatalog,
            msg: "METRICS.md is missing; the metric-name catalog is required".to_owned(),
        });
    }
    let nfiles = files.len();
    let mut waivers = Vec::new();
    let mut conc_files: Vec<(String, String)> = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let crate_name = crate_of(rel);
        let rel_str = rel.display().to_string();
        let source = std::fs::read_to_string(&path)?;
        waivers.extend(collect_waivers(&rel_str, &scrub(&source)));
        violations.extend(lint_source_with_catalog(
            &crate_name,
            &rel_str,
            &source,
            catalog.as_ref(),
        ));
        if LOCK_RANK_CRATES.contains(&crate_name.as_str()) {
            conc_files.push((rel_str, source));
        }
    }
    let (conc_violations, _) = crate::conc::check(&conc_files);
    violations.extend(conc_violations);
    waivers.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(WorkspaceReport {
        nfiles,
        violations,
        waivers,
    })
}

/// Run only the concurrency rules (6–7) over in-memory `(path, source)`
/// pairs — the fixture-test entry point.
pub fn lint_concurrency(files: &[(String, String)]) -> Vec<Violation> {
    crate::conc::check(files).0
}

/// Like [`lint_concurrency`] but also returns the `lock-ok`/`blocking-ok`
/// waivers the pass honoured.
pub fn lint_concurrency_full(files: &[(String, String)]) -> (Vec<Violation>, Vec<Waiver>) {
    crate::conc::check(files)
}

/// Escape `s` for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a [`WorkspaceReport`] as the stable `papi-lint/1` JSON schema:
/// `schema`, `files`, `rules` (the seven rule names in order), a
/// `violations` array (`rule`, `file`, `line`, `msg`, `waiver` — the
/// last reserved, always `null` today: a reported violation is by
/// definition unwaived) and a `waivers` inventory (`tag`, `file`,
/// `line`, `why`).
pub fn render_json(report: &WorkspaceReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"papi-lint/1\",\n");
    out.push_str(&format!("  \"files\": {},\n", report.nfiles));
    out.push_str("  \"rules\": [");
    for (i, name) in RULE_NAMES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{name}\""));
    }
    out.push_str("],\n  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"msg\": \"{}\", \"waiver\": null}}",
            v.rule,
            json_escape(&v.file),
            v.line,
            json_escape(&v.msg)
        ));
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"waivers\": [");
    for (i, w) in report.waivers.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"tag\": \"{}\", \"file\": \"{}\", \"line\": {}, \"why\": \"{}\"}}",
            json_escape(&w.tag),
            json_escape(&w.file),
            w.line,
            json_escape(&w.why)
        ));
    }
    if !report.waivers.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Entry point for `cargo xtask lint --json`: prints the machine-readable
/// report to stdout, returns the violation count.
pub fn run_json(root: &Path) -> std::io::Result<usize> {
    let report = lint_workspace_full(root)?;
    print!("{}", render_json(&report));
    Ok(report.violations.len())
}

/// Crate name of a workspace-relative path (`crates/<name>/…` or the root
/// package).
fn crate_of(rel: &Path) -> String {
    let mut parts = rel.components();
    match parts.next().and_then(|c| c.as_os_str().to_str()) {
        Some("crates") => parts
            .next()
            .and_then(|c| c.as_os_str().to_str())
            .unwrap_or("papi-repro")
            .to_owned(),
        _ => "papi-repro".to_owned(),
    }
}

/// Entry point for `cargo xtask lint`: prints findings, returns the count.
pub fn run(root: &Path) -> std::io::Result<usize> {
    let (nfiles, violations) = lint_workspace(root)?;
    for v in &violations {
        eprintln!("{v}");
    }
    if violations.is_empty() {
        eprintln!("lint clean: {nfiles} files, 7 rules");
    } else {
        eprintln!("{} violation(s) in {nfiles} files", violations.len());
    }
    Ok(violations.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_stripped() {
        let s = scrub("let x = \"panic!\"; // panic! in comment\n");
        assert!(!s.code[0].contains("panic!"));
        assert!(s.comment[0].contains("panic!"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let s = scrub("fn f<'a>(x: &'a str) { x.unwrap() }\n");
        assert!(s.code[0].contains(".unwrap()"));
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap() }\n}\nfn c() {}\n";
        let s = scrub(src);
        assert!(!s.is_test[0]);
        assert!(s.is_test[2]);
        assert!(s.is_test[3]);
        assert!(s.is_test[4]);
        assert!(!s.is_test[5]);
    }

    #[test]
    fn relaxed_annotation_may_precede() {
        let src = "// relaxed-ok: statistics only\nx.load(Ordering::Relaxed);\n";
        assert!(lint_source("memsim", "f.rs", src).is_empty());
        let bad = "x.load(Ordering::Relaxed);\n";
        let v = lint_source("memsim", "f.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RelaxedOk);
    }

    #[test]
    fn obs_gate_rule_accepts_gated_waived_and_exempt_sites() {
        // Statement-level gate directly above the call.
        let gated = "#[cfg(feature = \"obs\")]\nlet _s = obs::span!(\"x\");\n";
        assert!(lint_source("memsim", "f.rs", gated).is_empty());
        // Item-level gate on the enclosing fn (brace-matched).
        let item = "#[cfg(feature = \"obs\")]\nfn f() {\n    obs::instant!(\"x\");\n}\n";
        assert!(lint_source("memsim", "f.rs", item).is_empty());
        // Waiver comment.
        let waived = "// obs-ok: measures the tracer itself\nlet _s = obs::span!(\"x\");\n";
        assert!(lint_source("papi-repro", "f.rs", waived).is_empty());
        // Ungated call: one violation, right line; the obs crate is exempt.
        let bad = "fn f() {\n    let _s = obs::span!(\"x\");\n}\n";
        let v = lint_source("kernels", "f.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ObsFeatureGate);
        assert_eq!(v[0].line, 2);
        assert!(lint_source("obs", "f.rs", bad).is_empty());
    }

    #[test]
    fn metric_catalog_parses_backtick_tokens_and_checks_sites() {
        let cat = MetricCatalog::parse(
            "# Metrics\n\n| `a.count` | counter |\nprose mentions `b.depth` too, \
             but `not a name` has spaces.\n",
        );
        assert_eq!(cat.len(), 2, "{cat:?}");
        assert!(cat.contains("a.count") && cat.contains("b.depth"));
        let ok = "fn f() { obs::counter!(\"a.count\").inc(); }\n";
        assert!(lint_source_with_catalog("kernels", "f.rs", ok, Some(&cat)).is_empty());
        let wrapped = "fn f() {\n    obs::counter!(\n        \"a.count\"\n    ).inc();\n}\n";
        assert!(lint_source_with_catalog("kernels", "f.rs", wrapped, Some(&cat)).is_empty());
        let bad = "fn f() { obs::gauge!(\"rogue.depth\").set(1); }\n";
        let v = lint_source_with_catalog("kernels", "f.rs", bad, Some(&cat));
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::MetricCatalog);
        // A computed name cannot be checked against the catalog, so it
        // is a violation unless waived.
        let dynamic = "fn f(n: &'static str) { obs::counter!(n).inc(); }\n";
        let v = lint_source_with_catalog("kernels", "f.rs", dynamic, Some(&cat));
        assert_eq!(v.len(), 1, "{v:?}");
        let waived = "// metric-ok: name computed per channel\n\
                      fn f(n: &'static str) { obs::counter!(n).inc(); }\n";
        assert!(lint_source_with_catalog("kernels", "f.rs", waived, Some(&cat)).is_empty());
    }

    #[test]
    fn relaxed_annotation_spans_comment_block() {
        // Tag on the first line of a multi-line justification.
        let src = "// relaxed-ok: a long argument that\n// wraps onto a second line.\nx.load(Ordering::Relaxed);\n";
        assert!(lint_source("memsim", "f.rs", src).is_empty());
        // A blank line breaks the block: the tag no longer applies.
        let bad = "// relaxed-ok: detached\n\nx.load(Ordering::Relaxed);\n";
        let v = lint_source("memsim", "f.rs", bad);
        assert_eq!(v.len(), 1);
        // An intervening code line breaks the block too.
        let bad = "// relaxed-ok: for the store\ny.store(1, Ordering::Relaxed);\nx.load(Ordering::Relaxed);\n";
        let v = lint_source("memsim", "f.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }
}
