//! Seeded privilege-taint violations: linted as if it lived in a
//! measurement crate (outside memsim/pcp).

pub struct Shared;
pub struct Counters;
pub struct PrivilegeToken;

impl Shared {
    fn counters(&self) -> Counters {
        Counters
    }
}

pub fn leaky_read(shared: &Shared) -> Counters {
    shared.counters()
}

pub fn tokened_read(shared: &Shared, _token: &PrivilegeToken) -> Counters {
    shared.counters()
}

pub fn waived_read(shared: &Shared) -> Counters {
    // privilege-ok: harness-internal bookkeeping, not a measurement path
    shared.counters()
}

fn private_read(shared: &Shared) -> Counters {
    shared.counters()
}
