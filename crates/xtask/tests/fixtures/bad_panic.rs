//! Seeded no-panic violations: this fixture is linted as if it lived in
//! `crates/pcp-wire/src/`.

pub fn handle_request(frame: Option<&[u8]>) -> u8 {
    let f = frame.unwrap();
    if f.is_empty() {
        panic!("empty frame");
    }
    f.first().copied().expect("nonempty")
}

pub fn fine(frame: Option<&[u8]>) -> u8 {
    frame
        .and_then(|f| f.first().copied())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_allowed() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
