//! Scrubber/test-marking fixture: every unwrap below except the one in
//! `real_code` sits in `#[cfg(test)]`-gated code that line-based
//! detection used to miss — a multi-line attribute, nested test
//! modules, and an attribute sharing its line with the item.

pub fn real_code(v: Option<u32>) -> u32 {
    v.unwrap()
}

#[cfg(all(
    test,
    feature = "extra"
))]
mod gated_multiline {
    pub fn helper(v: Option<u32>) -> u32 {
        v.unwrap()
    }
}

#[cfg(test)]
mod outer {
    fn a(v: Option<u32>) -> u32 {
        v.unwrap()
    }

    mod nested {
        fn b(v: Option<u32>) -> u32 {
            v.unwrap()
        }
    }
}

#[cfg(test)] mod same_line { pub fn c(v: Option<u32>) -> u32 { v.unwrap() } }
