//! Rule 6/7 fixture: a correctly ranked two-lock hierarchy. The
//! analyzer must report nothing here — ordered acquisition, a guard
//! dropped before a blocking call, a guard consumed by `Condvar::wait`,
//! and a waived third-party lock are all clean patterns.

use std::sync::{Condvar, Mutex};

pub struct Engine {
    // lock-rank: demo.1 — outer lock of the fixture hierarchy.
    control: Mutex<u32>,
    // lock-rank: demo.2 — inner lock, only ever taken under `control`.
    data: Mutex<Vec<u8>>,
}

impl Engine {
    pub fn ordered(&self) -> usize {
        let c = self.control.lock().unwrap();
        let d = self.data.lock().unwrap();
        (*c as usize) + d.len()
    }

    pub fn drop_then_wait(&self, rx: &std::sync::mpsc::Receiver<u8>) -> Option<u8> {
        let d = self.data.lock().unwrap();
        let len = d.len();
        drop(d);
        rx.recv().ok().filter(|_| len > 0)
    }

    pub fn consumed_by_wait(&self, cv: &Condvar) -> u32 {
        let c = self.control.lock().unwrap();
        // The guard moves into the wait and is not held across it.
        let after = cv.wait(c).unwrap();
        *after
    }
}

pub struct ExternalHandle {
    // lock-rank: demo.3 — leaf; acquired below through a field name the
    // analyzer cannot tie back to this declaration, hence the waiver.
    pub inner: Mutex<u32>,
}

pub fn external(handle: &ExternalHandle) -> u32 {
    // lock-ok: accessed through a borrowed handle whose field name does
    // not match any ranked declaration; nothing else is held here.
    let g = handle.reborrow.lock().unwrap();
    *g
}
