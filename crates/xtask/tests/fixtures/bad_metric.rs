//! Seeded metric-catalog violations for the lint's own test suite.
//!
//! The test catalog contains exactly `fixture.catalogued.count`; the
//! lint must flag the rogue counter and gauge below (lines 9 and 10),
//! accept the catalogued and waived sites, and skip test code.

pub fn touch() {
    obs::counter!("fixture.catalogued.count").inc();
    obs::counter!("fixture.rogue.count").inc();
    obs::gauge!("fixture.rogue.depth").set(1);
    // metric-ok: fixture site exercising the waiver path
    obs::histogram!("fixture.waived.hist").record(1);
}

pub fn wrapped() {
    obs::counter!(
        "fixture.catalogued.count"
    )
    .inc();
}

#[cfg(test)]
mod tests {
    fn scratch() {
        obs::counter!("fixture.testonly.count").inc();
    }
}
