//! Seeded obs-feature-gate violations. Lines 15 and 24 are the bad ones;
//! everything else shows an accepted form.

#[cfg(feature = "obs")]
fn gated_by_attribute() {
    let _span = obs::span!("fixture.gated");
}

fn gated_inline() {
    #[cfg(feature = "obs")]
    obs::instant!("fixture.inline");
}

fn ungated_span() {
    let _span = obs::span!("fixture.bad"); // seeded violation
}

fn waived() {
    // obs-ok: this binary exists to measure the tracer itself.
    obs::instant!("fixture.waived");
}

fn ungated_instant() {
    obs::instant!("fixture.bad_instant"); // seeded violation
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _span = obs::span!("fixture.test");
    }
}
