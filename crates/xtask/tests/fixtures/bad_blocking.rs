//! Rule 7 fixture: guards held across blocking calls — directly, and
//! transitively through a workspace fn that sleeps — plus the two clean
//! shapes (drop-before-block, explicit waiver).

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

pub struct Hub {
    // lock-rank: hub.1 — fixture lock.
    state: Mutex<u32>,
}

fn settle() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

impl Hub {
    pub fn bad_direct(&self, rx: &Receiver<u32>) -> u32 {
        let g = self.state.lock().unwrap();
        let v = rx.recv().unwrap_or(0);
        *g + v
    }

    pub fn bad_transitive(&self) -> u32 {
        let g = self.state.lock().unwrap();
        settle();
        *g
    }

    pub fn good_dropped(&self, rx: &Receiver<u32>) -> u32 {
        let g = self.state.lock().unwrap();
        let held = *g;
        drop(g);
        rx.recv().unwrap_or(held)
    }

    pub fn waived(&self, rx: &Receiver<u32>) -> u32 {
        let g = self.state.lock().unwrap();
        // blocking-ok: fixture demonstrating the waiver grammar.
        let v = rx.recv().unwrap_or(0);
        *g + v
    }
}
