//! Rule 6 fixture: every finding here is seeded on purpose — a
//! declaration without a rank, a same-namespace rank inversion, and an
//! A→B / B→A cross-namespace acquisition cycle.

use std::sync::Mutex;

static NAKED: Mutex<u32> = Mutex::new(0);

pub struct Demo {
    // lock-rank: demo.1 — documented outer lock.
    alpha: Mutex<u32>,
    // lock-rank: demo.2 — documented inner lock.
    beta: Mutex<u32>,
}

impl Demo {
    pub fn inverted(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *a + *b
    }
}

// lock-rank: x.1 — one half of the seeded A→B / B→A cycle.
static X_SIDE: Mutex<u32> = Mutex::new(0);
// lock-rank: y.1 — the other half.
static Y_SIDE: Mutex<u32> = Mutex::new(0);

pub fn x_then_y() -> u32 {
    let x = X_SIDE.lock().unwrap();
    let y = Y_SIDE.lock().unwrap();
    *x + *y
}

pub fn y_then_x() -> u32 {
    let y = Y_SIDE.lock().unwrap();
    let x = X_SIDE.lock().unwrap();
    *x + *y
}
