//! Seeded relaxed-ok violations.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn unjustified(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

pub fn justified_same_line(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // relaxed-ok: monotonic statistic, staleness tolerated
}

pub fn justified_prev_line(c: &AtomicU64) {
    // relaxed-ok: counter increment, no ordering dependency
    c.fetch_add(1, Ordering::Relaxed);
}
