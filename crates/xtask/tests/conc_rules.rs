//! Rules 6–7 must fire on their seeded fixtures — and stay silent on the
//! clean one.

use xtask::lint::{lint_concurrency, lint_concurrency_full, Rule};

const GOOD_LOCKS: &str = include_str!("fixtures/good_locks.rs");
const BAD_CYCLE: &str = include_str!("fixtures/bad_lock_cycle.rs");
const BAD_BLOCKING: &str = include_str!("fixtures/bad_blocking.rs");

fn one(name: &str, src: &str) -> Vec<(String, String)> {
    vec![(name.to_string(), src.to_string())]
}

#[test]
fn clean_hierarchy_reports_nothing() {
    let (v, w) = lint_concurrency_full(&one("fixtures/good_locks.rs", GOOD_LOCKS));
    assert!(v.is_empty(), "{v:?}");
    // The third-party lock waiver is inventoried.
    assert!(
        w.iter().any(|w| w.tag == "lock-ok"),
        "lock-ok waiver missing from {w:?}"
    );
}

#[test]
fn missing_annotation_inversion_and_cycle_all_fire() {
    let v = lint_concurrency(&one("fixtures/bad_lock_cycle.rs", BAD_CYCLE));
    assert!(
        v.iter().all(|x| x.rule == Rule::LockOrder),
        "all findings are rule 6: {v:?}"
    );

    // The unannotated static.
    assert!(
        v.iter()
            .any(|x| x.line == 7 && x.msg.contains("lacks a lock-rank annotation")),
        "{v:?}"
    );
    // demo.2 held while demo.1 is acquired.
    assert!(
        v.iter().any(|x| x.line == 19
            && x.msg.contains("inversion")
            && x.msg.contains("demo.1")
            && x.msg.contains("demo.2")),
        "{v:?}"
    );
    // The seeded A→B / B→A cycle, with the offending edge path and the
    // full graph rendered into the message.
    let cycle = v
        .iter()
        .find(|x| x.msg.starts_with("lock-acquisition cycle detected"))
        .unwrap_or_else(|| panic!("no cycle finding in {v:?}"));
    assert!(cycle.msg.contains("x.1 -> y.1"), "{}", cycle.msg);
    assert!(cycle.msg.contains("y.1 -> x.1"), "{}", cycle.msg);
    assert!(
        cycle.msg.contains("full lock-acquisition graph:"),
        "{}",
        cycle.msg
    );
    assert_eq!(v.len(), 3, "{v:?}");
}

#[test]
fn guard_across_recv_and_transitive_sleep_fire() {
    let (v, w) = lint_concurrency_full(&one("fixtures/bad_blocking.rs", BAD_BLOCKING));
    let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
    assert_eq!(rules, vec![Rule::BlockingUnderLock; 2], "{v:?}");
    let lines: Vec<_> = v.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![20, 26], "{v:?}");
    // The direct case names the blocking call, the transitive one the
    // callee it reached the sleep through.
    assert!(v[0].msg.contains("recv"), "{v:?}");
    assert!(v[1].msg.contains("settle"), "{v:?}");
    // `good_dropped` and `waived` stay silent; the waiver is inventoried.
    assert!(
        w.iter().any(|w| w.tag == "blocking-ok" && w.line == 39),
        "{w:?}"
    );
}

#[test]
fn call_edges_cross_files() {
    // File A holds its ranked lock while calling into file B, which
    // acquires a lower rank of the same namespace: an inversion the
    // analyzer can only see by following the workspace call.
    let a = r#"
use std::sync::Mutex;
// lock-rank: pair.2 — inner lock held around the cross-file call.
static INNER: Mutex<u32> = Mutex::new(0);
pub fn caller() -> u32 {
    let g = INNER.lock().unwrap();
    reenter();
    *g
}
"#;
    let b = r#"
use std::sync::Mutex;
// lock-rank: pair.1 — outer lock, must never be taken under pair.2.
static OUTER: Mutex<u32> = Mutex::new(0);
pub fn reenter() -> u32 {
    let g = OUTER.lock().unwrap();
    *g
}
"#;
    let v = lint_concurrency(&[
        ("a.rs".to_string(), a.to_string()),
        ("b.rs".to_string(), b.to_string()),
    ]);
    assert!(
        v.iter().any(|x| x.file == "a.rs"
            && x.rule == Rule::LockOrder
            && x.msg.contains("inversion")
            && x.msg.contains("via call")
            && x.msg.contains("reenter")),
        "{v:?}"
    );
}

#[test]
fn reacquisition_of_the_same_lock_is_reported() {
    let src = r#"
use std::sync::Mutex;
// lock-rank: solo.1 — fixture lock.
static ONE: Mutex<u32> = Mutex::new(0);
pub fn twice() -> u32 {
    let a = ONE.lock().unwrap();
    let b = ONE.lock().unwrap();
    *a + *b
}
"#;
    let v = lint_concurrency(&one("re.rs", src));
    assert_eq!(v.len(), 1, "{v:?}");
    assert!(v[0].msg.contains("reacquiring"), "{v:?}");
}

#[test]
fn statement_scoped_guard_does_not_leak() {
    // An unbound `.lock()` lives only to the end of its statement; the
    // blocking call on the next line is clean.
    let src = r#"
use std::sync::Mutex;
// lock-rank: tmp.1 — fixture lock.
static COUNT: Mutex<u32> = Mutex::new(0);
pub fn bump(rx: &std::sync::mpsc::Receiver<u32>) -> u32 {
    *COUNT.lock().unwrap() += 1;
    rx.recv().unwrap_or(0)
}
"#;
    let v = lint_concurrency(&one("stmt.rs", src));
    assert!(v.is_empty(), "{v:?}");
}
