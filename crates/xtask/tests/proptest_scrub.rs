//! Scrubber property tests: whatever text sits inside string literals,
//! raw strings, char literals, or comments must never appear in the
//! scrubbed *code* view — so rules 2–7 can never match inside a
//! literal — and the scrub must preserve the line structure exactly.

use proptest::prelude::*;

/// A sentinel that never occurs in the generated code skeleton; if the
/// scrubber leaks literal contents, this is what leaks.
const SENTINEL: &str = "LEAKME";

/// One fragment of generated source: either plain code, or a literal /
/// comment form wrapping the sentinel.
#[derive(Debug, Clone)]
enum Frag {
    Code(&'static str),
    Str,
    RawStr(usize),
    Char,
    LineComment,
    BlockComment(usize),
}

fn frag() -> impl Strategy<Value = Frag> {
    (0usize..11).prop_map(|k| match k {
        0 => Frag::Code("let x = y;"),
        1 => Frag::Code("fn f(a: u32) -> u32 { a }"),
        2 => Frag::Code("if x > 'a' as u32 {}"),
        3 => Frag::Code("m.lock()"),
        4 => Frag::Code("v.push(1);"),
        5 => Frag::Str,
        6 => Frag::RawStr(1),
        7 => Frag::RawStr(2),
        8 => Frag::Char,
        9 => Frag::LineComment,
        _ => Frag::BlockComment(2),
    })
}

/// Render fragments into one source string; literal forms carry the
/// sentinel, code forms never do.
fn render(frags: &[Frag], newlines: &[bool]) -> String {
    let mut out = String::new();
    for (i, f) in frags.iter().enumerate() {
        match f {
            Frag::Code(c) => out.push_str(c),
            Frag::Str => out.push_str(&format!("let s = \"{SENTINEL} \\\" {SENTINEL}\";")),
            Frag::RawStr(h) => {
                let hashes = "#".repeat(*h);
                out.push_str(&format!(
                    "let r = r{hashes}\"{SENTINEL} \" {SENTINEL}\"{hashes};"
                ));
            }
            // Char literals hold one char; the sentinel leak analogue is
            // a quote-ish payload that must not open a string.
            Frag::Char => out.push_str("let c = '\"';"),
            Frag::LineComment => out.push_str(&format!("// {SENTINEL}")),
            Frag::BlockComment(depth) => {
                let open = "/* ".repeat(*depth);
                let close = " */".repeat(*depth);
                out.push_str(&format!("{open}{SENTINEL}{close}"));
            }
        }
        // A line comment must end its line or it swallows what follows.
        if newlines[i % newlines.len()] || matches!(f, Frag::LineComment) {
            out.push('\n');
        } else {
            out.push(' ');
        }
    }
    out
}

proptest! {
    #[test]
    fn literals_never_leak_into_code_lines(
        frags in prop::collection::vec(frag(), 1..24),
        newlines in prop::collection::vec(any::<bool>(), 1..8),
    ) {
        let src = render(&frags, &newlines);
        let (code, comment) = xtask::lint::scrub_lines(&src);

        // Line structure is preserved 1:1 against the raw source…
        let raw: Vec<&str> = src.lines().collect();
        prop_assert_eq!(code.len(), raw.len());
        prop_assert_eq!(comment.len(), raw.len());
        // …and so is every line's char count (positions stay meaningful
        // across the parallel views).
        for (c, r) in code.iter().zip(&raw) {
            prop_assert_eq!(c.chars().count(), r.chars().count());
        }

        // The payload only ever survives into the comment view.
        for line in &code {
            prop_assert!(
                !line.contains(SENTINEL),
                "literal text leaked into code view: {:?}\nsource:\n{}",
                line,
                src
            );
        }

        // Quotes inside char literals / strings never leave an unclosed
        // string open: `lock()` written as *code* is still visible.
        let probe = format!("{src}\nz.lock();\n");
        let (code2, _) = xtask::lint::scrub_lines(&probe);
        prop_assert!(
            code2.last().is_some_and(|l| l.contains("z.lock()")),
            "trailing code line was swallowed:\n{}",
            probe
        );
    }
}
