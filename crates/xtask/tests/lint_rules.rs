//! The lint must fail on its own seeded-violation fixtures — and only on
//! the seeded lines.

use xtask::lint::{lint_source, lint_source_with_catalog, MetricCatalog, Rule};

const BAD_PANIC: &str = include_str!("fixtures/bad_panic.rs");
const TEST_MARKING: &str = include_str!("fixtures/test_marking.rs");
const BAD_RELAXED: &str = include_str!("fixtures/bad_relaxed.rs");
const BAD_TAINT: &str = include_str!("fixtures/bad_taint.rs");
const BAD_OBS_GATE: &str = include_str!("fixtures/bad_obs_gate.rs");
const BAD_METRIC: &str = include_str!("fixtures/bad_metric.rs");

#[test]
fn no_panic_rule_catches_seeded_violations() {
    let v = lint_source("pcp-wire", "fixtures/bad_panic.rs", BAD_PANIC);
    let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
    assert_eq!(rules, vec![Rule::NoPanic; 3], "{v:?}");
    let lines: Vec<_> = v.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![5, 7, 9], "{v:?}");
}

#[test]
fn no_panic_rule_only_applies_to_server_codec_crates() {
    assert!(lint_source("memsim", "fixtures/bad_panic.rs", BAD_PANIC).is_empty());
    assert!(lint_source("kernels", "fixtures/bad_panic.rs", BAD_PANIC).is_empty());
}

#[test]
fn no_panic_rule_covers_the_storage_engine() {
    // The store crate holds whole archived runs; a panic there loses
    // history, so it is held to the same bar as the daemons.
    let v = lint_source("store", "fixtures/bad_panic.rs", BAD_PANIC);
    let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
    assert_eq!(rules, vec![Rule::NoPanic; 3], "{v:?}");
}

#[test]
fn no_panic_rule_covers_the_tracer_crate() {
    // obs runs on every hot path; a panic there takes the measurement
    // down with it.
    let v = lint_source("obs", "fixtures/bad_panic.rs", BAD_PANIC);
    let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
    assert_eq!(rules, vec![Rule::NoPanic; 3], "{v:?}");
}

#[test]
fn test_marking_handles_multiline_attrs_and_nesting() {
    // Multi-line `#[cfg(all(test, …))]` attributes, nested modules under
    // `#[cfg(test)]`, and an attribute sharing its line with the item are
    // all test code; only the unwrap in `real_code` may be reported.
    let v = lint_source("pcp-wire", "fixtures/test_marking.rs", TEST_MARKING);
    let hits: Vec<_> = v.iter().map(|x| (x.rule, x.line)).collect();
    assert_eq!(hits, vec![(Rule::NoPanic, 7)], "{v:?}");
}

#[test]
fn relaxed_rule_requires_justification() {
    let v = lint_source("memsim", "fixtures/bad_relaxed.rs", BAD_RELAXED);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::RelaxedOk);
    assert_eq!(v[0].line, 6);
}

#[test]
fn taint_rule_requires_token_or_waiver_on_public_fns() {
    let v = lint_source("kernels", "fixtures/bad_taint.rs", BAD_TAINT);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, Rule::PrivilegeTaint);
    assert_eq!(v[0].line, 15);
}

#[test]
fn taint_rule_exempts_boundary_crates() {
    assert!(lint_source("memsim", "fixtures/bad_taint.rs", BAD_TAINT).is_empty());
    assert!(lint_source("pcp", "fixtures/bad_taint.rs", BAD_TAINT).is_empty());
}

#[test]
fn obs_gate_rule_catches_seeded_violations() {
    let v = lint_source("kernels", "fixtures/bad_obs_gate.rs", BAD_OBS_GATE);
    let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
    assert_eq!(rules, vec![Rule::ObsFeatureGate; 2], "{v:?}");
    let lines: Vec<_> = v.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![15, 24], "{v:?}");
}

#[test]
fn obs_gate_rule_exempts_the_tracer_crate() {
    assert!(lint_source("obs", "fixtures/bad_obs_gate.rs", BAD_OBS_GATE).is_empty());
}

#[test]
fn metric_catalog_rule_catches_uncatalogued_names() {
    let catalog = MetricCatalog::parse("| `fixture.catalogued.count` | counter | a test |\n");
    let v = lint_source_with_catalog(
        "kernels",
        "fixtures/bad_metric.rs",
        BAD_METRIC,
        Some(&catalog),
    );
    let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
    assert_eq!(rules, vec![Rule::MetricCatalog; 2], "{v:?}");
    let lines: Vec<_> = v.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![9, 10], "{v:?}");
    assert!(v[0].msg.contains("fixture.rogue.count"), "{v:?}");
    assert!(v[1].msg.contains("fixture.rogue.depth"), "{v:?}");
}

#[test]
fn metric_catalog_rule_needs_a_catalog_and_exempts_the_metrics_crate() {
    // Rules 1-4 only when no catalog is supplied.
    assert!(lint_source("kernels", "fixtures/bad_metric.rs", BAD_METRIC).is_empty());
    // The obs crate implements the macros and is exempt.
    let catalog = MetricCatalog::parse("");
    assert!(
        lint_source_with_catalog("obs", "fixtures/bad_metric.rs", BAD_METRIC, Some(&catalog))
            .is_empty()
    );
}

#[test]
fn workspace_lint_runs_clean() {
    // The real tree must satisfy its own rules: this is the same walk
    // `cargo xtask lint` performs in CI.
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let (nfiles, violations) = xtask::lint::lint_workspace(&root).expect("walk workspace");
    assert!(nfiles > 50, "walked only {nfiles} files");
    assert!(
        violations.is_empty(),
        "workspace has lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
