//! The PMCD serves many unprivileged clients concurrently — on a real
//! system every monitoring tool on the node talks to the same daemon.

use std::sync::Arc;

use p9_memsim::{Direction, SimMachine};
use pcp_sim::{InstanceId, PcpContext, Pmcd, PmcdConfig, Pmns};

#[test]
fn many_clients_fetch_concurrently_and_consistently() {
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 73);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let daemon = Pmcd::spawn_system(pmns.clone(), sockets, PmcdConfig::default());

    // Fixed traffic before any client connects.
    for s in 0..80u64 {
        machine
            .socket_shared(0)
            .counters()
            .record_sector(s, Direction::Read);
    }

    let id = pmns
        .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
        .unwrap();
    let handle = daemon.handle();
    let results: Vec<u64> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..8)
            .map(|_| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let ctx = PcpContext::connect(handle, None);
                    let mut last = 0;
                    for _ in 0..50 {
                        let v = ctx.pm_fetch(&[(id, InstanceId(87))]).unwrap()[0];
                        assert!(v >= last, "counter went backwards");
                        last = v;
                    }
                    last
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    // Channel 0 saw 10 of the 80 sectors: 640 bytes, same for everyone.
    assert!(results.iter().all(|&v| v == 640), "{results:?}");
}

#[test]
fn clients_can_outlive_each_other() {
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 74);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let daemon = Pmcd::spawn_system(pmns.clone(), sockets, PmcdConfig::default());

    let c1 = PcpContext::connect(daemon.handle(), None);
    {
        let c2 = PcpContext::connect(daemon.handle(), None);
        assert!(c2.pm_get_children("perfevent").unwrap().len() == 16);
        drop(c2);
    }
    // First client still works after the second disconnected.
    let id = c1
        .pm_lookup_name("perfevent.hwcounters.nest_mba7_imc.PM_MBA7_WRITE_BYTES.value")
        .unwrap();
    assert_eq!(c1.pm_fetch(&[(id, InstanceId(87))]).unwrap(), vec![0]);
    let _ = Arc::strong_count(&machine.socket_shared(0));
}
