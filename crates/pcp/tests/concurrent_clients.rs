//! The PMCD serves many unprivileged clients concurrently — on a real
//! system every monitoring tool on the node talks to the same daemon.
//!
//! Two daemons are exercised: the in-process channel daemon (`Pmcd`) and
//! the networked TCP server (`pcp_wire::PmcdServer`), including hostile
//! clients — malformed frames and mid-fetch disconnects must cost the
//! offender its connection and nobody else anything.

use std::sync::Arc;

use p9_memsim::{Direction, SimMachine};
use pcp_sim::{InstanceId, PcpContext, PmApi, Pmcd, PmcdConfig, Pmns};
use pcp_wire::{PmcdServer, WireClient, WireConfig};

#[test]
fn many_clients_fetch_concurrently_and_consistently() {
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 73);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let daemon =
        Pmcd::spawn_system(pmns.clone(), sockets, PmcdConfig::default()).expect("spawn pmcd");

    // Fixed traffic before any client connects.
    for s in 0..80u64 {
        machine
            .socket_shared(0)
            .counters()
            .record_sector(s, Direction::Read);
    }

    let id = pmns
        .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
        .unwrap();
    let handle = daemon.handle();
    let results: Vec<u64> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..8)
            .map(|_| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let ctx = PcpContext::connect(handle, None);
                    let mut last = 0;
                    for _ in 0..50 {
                        let v = ctx.pm_fetch(&[(id, InstanceId(87))]).unwrap()[0];
                        assert!(v >= last, "counter went backwards");
                        last = v;
                    }
                    last
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    // Channel 0 saw 10 of the 80 sectors: 640 bytes, same for everyone.
    assert!(results.iter().all(|&v| v == 640), "{results:?}");
}

#[test]
fn clients_can_outlive_each_other() {
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 74);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let daemon =
        Pmcd::spawn_system(pmns.clone(), sockets, PmcdConfig::default()).expect("spawn pmcd");

    let c1 = PcpContext::connect(daemon.handle(), None);
    {
        let c2 = PcpContext::connect(daemon.handle(), None);
        assert!(c2.pm_get_children("perfevent").unwrap().len() == 16);
        drop(c2);
    }
    // First client still works after the second disconnected.
    let id = c1
        .pm_lookup_name("perfevent.hwcounters.nest_mba7_imc.PM_MBA7_WRITE_BYTES.value")
        .unwrap();
    assert_eq!(c1.pm_fetch(&[(id, InstanceId(87))]).unwrap(), vec![0]);
    let _ = Arc::strong_count(&machine.socket_shared(0));
}

/// 16 concurrent TCP clients hammer the wire server while one client
/// sends a deliberately malformed PDU and another disconnects mid-fetch.
/// The server must stay up, the honest clients must see consistent
/// values, and a fresh client must still be served afterwards.
#[test]
fn wire_server_survives_hostile_clients_among_sixteen() {
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 75);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let server = PmcdServer::bind_system(
        "127.0.0.1:0",
        pmns.clone(),
        sockets,
        WireConfig {
            workers: 20,
            ..WireConfig::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();

    // Fixed traffic before any client connects: 80 sectors, 10 of which
    // land on channel 0 -> 640 bytes.
    for s in 0..80u64 {
        machine
            .socket_shared(0)
            .counters()
            .record_sector(s, Direction::Read);
    }
    let id = pmns
        .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
        .unwrap();

    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for i in 0..16 {
            joins.push(scope.spawn(move || match i {
                // Client 0: handshakes, then sends garbage (bad magic).
                0 => {
                    let c = WireClient::connect(addr).unwrap();
                    c.send_raw(&[0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0]).unwrap();
                    // The server must answer with a BadPdu error (or have
                    // already hung up) — never serve garbage silently.
                    assert!(c.pm_fetch(&[(id, InstanceId(87))]).is_err());
                }
                // Client 1: starts a fetch frame, then vanishes mid-frame.
                1 => {
                    let c = WireClient::connect(addr).unwrap();
                    // Header declaring an 84-byte Fetch payload, then only
                    // 4 payload bytes, then drop: a mid-fetch disconnect.
                    let mut partial =
                        vec![0x50, 0x43, pcp_wire::PROTOCOL_VERSION, 0x0b, 0, 0, 0, 84];
                    partial.extend_from_slice(&10u32.to_be_bytes());
                    c.send_raw(&partial).unwrap();
                    drop(c);
                }
                // Everyone else fetches honestly and checks the value.
                _ => {
                    let c = WireClient::connect(addr).unwrap();
                    for _ in 0..30 {
                        let v = c.pm_fetch(&[(id, InstanceId(87))]).unwrap();
                        assert_eq!(v, vec![640]);
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    });

    // The server is still healthy: a fresh client gets served, and the
    // self-metrics recorded the carnage.
    let c = WireClient::connect(addr).unwrap();
    assert_eq!(c.pm_fetch(&[(id, InstanceId(87))]).unwrap(), vec![640]);
    let stats = server.stats();
    assert!(stats.clients_total >= 17, "{stats:?}");
    assert!(stats.pdu_error >= 1, "malformed pdu not counted: {stats:?}");
    assert_eq!(stats.clients_rejected, 0, "{stats:?}");
}

/// The wire server's own operational metrics are fetchable through the
/// same PMNS path as the hardware metrics.
#[test]
fn wire_server_self_metrics_fetchable() {
    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 76);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();
    let server =
        PmcdServer::bind_system("127.0.0.1:0", pmns.clone(), sockets, WireConfig::default())
            .expect("bind server");
    let c = WireClient::connect(server.local_addr()).unwrap();

    // Generate some fetch traffic first.
    let id = pmns
        .lookup("perfevent.hwcounters.nest_mba3_imc.PM_MBA3_READ_BYTES.value")
        .unwrap();
    for _ in 0..5 {
        c.pm_fetch(&[(id, InstanceId(87))]).unwrap();
    }

    let pdu_in = c.pm_lookup_name("pmcd.pdu.in").unwrap();
    let fetches = c.pm_lookup_name("pmcd.fetch.count").unwrap();
    let lt_1ms = c
        .pm_lookup_name("pmcd.fetch.latency_ns.lt_1048576")
        .unwrap();
    let queue_depth = c.pm_lookup_name("pmcd.queue.depth").unwrap();
    let desc = c.pm_get_desc(pdu_in).unwrap();
    assert_eq!(desc.name, "pmcd.pdu.in");
    assert_eq!(desc.units, "count");

    let vals = c
        .pm_fetch(&[
            (pdu_in, InstanceId(0)),
            (fetches, InstanceId(0)),
            (lt_1ms, InstanceId(0)),
            (queue_depth, InstanceId(0)),
        ])
        .unwrap();
    assert!(vals[0] >= 6, "pdu.in {vals:?}"); // creds + lookups + fetches
    assert_eq!(vals[1], 5, "fetch.count {vals:?}");
    assert!(
        vals[2] <= vals[1],
        "histogram bucket exceeds total {vals:?}"
    );
    // One client, served synchronously: nothing is waiting right now.
    assert_eq!(vals[3], 0, "queue.depth {vals:?}");

    // The pmcd subtree appears in children listings alongside perfevent.
    let names = c.pm_get_children("pmcd").unwrap();
    assert!(names.contains(&"pmcd.pdu.in".to_string()));
    assert!(names.contains(&"pmcd.fetch.latency_ns.lt_1048576".to_string()));
    assert!(names.contains(&"pmcd.queue.depth".to_string()));
    // 16 nest metrics + the pmcd subtree. `>=` with containment rather
    // than an exact count: pmcd.obs.* entries may be registered by other
    // tests in this process at any time (the registry is append-only).
    let all = c.pm_get_children("").unwrap();
    assert!(all.len() >= 16 + names.len(), "{} names", all.len());
    for n in &names {
        assert!(all.contains(n), "root listing missing {n}");
    }
}

/// Acceptance check: a metric registered in the global obs registry is
/// fetchable through *both* transports — the in-process client and the
/// TCP wire — with identical ids and values.
#[test]
fn obs_metrics_identical_through_both_transports() {
    obs::registry()
        .counter("transport.parity_counter")
        .add(1234);

    let machine = SimMachine::quiet(p9_arch::Machine::summit(), 99);
    let pmns = Pmns::for_machine(machine.arch());
    let sockets: Vec<_> = (0..machine.num_sockets())
        .map(|s| machine.socket_shared(s))
        .collect();

    let daemon = Pmcd::spawn_system(pmns.clone(), sockets.clone(), PmcdConfig::default())
        .expect("spawn daemon");
    let ctx = PcpContext::connect(daemon.handle(), None);
    let server = PmcdServer::bind_system("127.0.0.1:0", pmns, sockets, WireConfig::default())
        .expect("bind server");
    let wire = WireClient::connect(server.local_addr()).unwrap();

    let name = "pmcd.obs.transport.parity_counter";
    let id_in = ctx.pm_lookup_name(name).expect("in-process lookup");
    let id_wire = wire.pm_lookup_name(name).expect("wire lookup");
    assert_eq!(id_in, id_wire, "same reserved id through both transports");

    let v_in = ctx.pm_fetch(&[(id_in, InstanceId(0))]).unwrap()[0];
    let v_wire = wire.pm_fetch(&[(id_wire, InstanceId(0))]).unwrap()[0];
    assert_eq!(v_in, 1234);
    assert_eq!(v_in, v_wire, "same value through both transports");

    let d_in = ctx.pm_get_desc(id_in).expect("in-process desc");
    let d_wire = wire.pm_get_desc(id_wire).expect("wire desc");
    assert_eq!(d_in.name, name);
    assert_eq!(d_in.name, d_wire.name);
    assert_eq!(d_in.semantics, d_wire.semantics);
}
