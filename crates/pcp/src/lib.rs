//! # pcp-sim — a simulated Performance Co-Pilot
//!
//! On Summit, ordinary users cannot read the nest (uncore) counters; IBM
//! exports them through the Performance Co-Pilot instead. The Performance
//! Metrics Collector Daemon (PMCD) runs **with** the privileges required to
//! program the nest PMU, and clients fetch metric values from the daemon
//! over a request/response protocol without any special permissions.
//!
//! This crate reproduces that architecture:
//!
//! * [`pmns`] — the Performance Metrics Name Space. Nest counters appear
//!   under `perfevent.hwcounters.nest_mba[0-7]_imc.PM_MBA[0-7]_{READ,WRITE}
//!   _BYTES.value`, exactly the names the paper's Table I lists, with a
//!   per-CPU instance domain (the nest metrics are exported on the last
//!   hardware thread of each socket: `cpu87` / `cpu175` on Summit).
//! * [`daemon`] — the PMCD: a real OS thread owning an elevated
//!   [`p9_memsim::PrivilegeToken`] and handles to every socket's counters,
//!   servicing lookup/describe/fetch requests over `std::sync::mpsc`
//!   channels. (The `pcp-wire` crate provides the networked equivalent.)
//! * [`client`] — `PcpContext`, the unprivileged client: `pm_lookup_name`,
//!   `pm_get_desc`, `pm_fetch`.
//! * [`archive`] — the `pmlogger` side: cadence-driven sampling into
//!   replayable archives with counter-rate queries.
//!
//! Because the daemon reads the very same [`p9_memsim::NestCounters`] the
//! direct `perf_uncore` path reads, measurements taken via PCP are exactly
//! as accurate as direct ones — which is the paper's headline conclusion,
//! and here it holds by construction *plus* whatever indirection costs the
//! model adds (fetch latency, per-fetch daemon work).

pub mod archive;
pub mod client;
pub mod daemon;
pub mod pmns;
pub mod selfmetrics;

pub use archive::{Archive, ArchiveRecord, PmLogger};
pub use client::{PcpContext, PcpError, PmApi};
pub use daemon::{Pmcd, PmcdConfig, PmcdError, PmcdHandle};
pub use pmns::{InstanceId, MetricDesc, MetricId, MetricSemantics, Pmns};
pub use selfmetrics::{DaemonStats, OBS_METRIC_BASE, SELF_METRIC_BASE};
