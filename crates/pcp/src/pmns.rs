//! The Performance Metrics Name Space (PMNS).
//!
//! PCP metrics live in a dot-separated hierarchy. The subset exported here
//! is the `perfevent` PMDA's view of the POWER9 nest IMC, which is what the
//! paper's Table I event strings address:
//!
//! ```text
//! perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value
//! perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value
//! ...
//! perfevent.hwcounters.nest_mba7_imc.PM_MBA7_WRITE_BYTES.value
//! ```
//!
//! Each metric has a per-CPU instance domain. On the real machine the nest
//! values are published on the last hardware thread of each socket (cpu 87
//! and cpu 175 on Summit); fetching any other instance returns zero, which
//! is also how the real export behaves for nest events.

use p9_arch::{Machine, MBA_CHANNELS};
use p9_memsim::Direction;

/// Opaque metric identifier (index into the PMNS table).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MetricId(pub u32);

/// Instance within a metric's instance domain. For the nest metrics the
/// instance is an OS CPU number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct InstanceId(pub u32);

/// Value semantics of a metric, following PCP's `PM_SEM_*`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricSemantics {
    /// Monotonically increasing counter.
    Counter,
    /// Instantaneous value.
    Instant,
}

/// Metric descriptor (a trimmed `pmDesc`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricDesc {
    pub id: MetricId,
    pub name: String,
    pub semantics: MetricSemantics,
    pub units: &'static str,
    /// Which MBA channel and direction this metric reads.
    pub channel: usize,
    pub direction: Direction,
}

/// The name space: metric table plus the machine facts needed to resolve
/// CPU instances to sockets.
#[derive(Clone, Debug)]
pub struct Pmns {
    metrics: Vec<MetricDesc>,
    /// `nest_cpu[socket]` = the CPU instance on which that socket's nest
    /// values are published.
    nest_cpu: Vec<u32>,
    /// Total number of CPU instances in the domain.
    num_cpus: u32,
}

impl Pmns {
    /// Build the perfevent nest namespace for `machine`.
    pub fn for_machine(machine: &Machine) -> Self {
        let mut metrics = Vec::with_capacity(MBA_CHANNELS * 2);
        for ch in 0..MBA_CHANNELS {
            for (dir, word) in [(Direction::Read, "READ"), (Direction::Write, "WRITE")] {
                let name =
                    format!("perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_{word}_BYTES.value");
                metrics.push(MetricDesc {
                    id: MetricId(metrics.len() as u32),
                    name,
                    semantics: MetricSemantics::Counter,
                    units: "byte",
                    channel: ch,
                    direction: dir,
                });
            }
        }
        let nest_cpu = (0..machine.node.num_sockets())
            .map(|s| machine.node.nest_cpu_qualifier(p9_arch::SocketId(s)) as u32)
            .collect();
        let num_cpus = machine
            .node
            .sockets
            .iter()
            .map(|s| (s.physical_cores * s.smt) as u32)
            .sum();
        Pmns {
            metrics,
            nest_cpu,
            num_cpus,
        }
    }

    /// Resolve a full metric name to its id.
    pub fn lookup(&self, name: &str) -> Option<MetricId> {
        self.metrics.iter().find(|m| m.name == name).map(|m| m.id)
    }

    /// Descriptor of `id`.
    pub fn desc(&self, id: MetricId) -> Option<&MetricDesc> {
        self.metrics.get(id.0 as usize)
    }

    /// All metric names under a dotted prefix (PMNS tree traversal).
    pub fn children(&self, prefix: &str) -> Vec<&str> {
        self.metrics
            .iter()
            .filter(|m| prefix.is_empty() || m.name.starts_with(prefix))
            .map(|m| m.name.as_str())
            .collect()
    }

    /// Number of metrics in the namespace.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when the namespace is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The socket whose nest values instance `cpu` publishes, if any.
    pub fn socket_of_instance(&self, cpu: InstanceId) -> Option<usize> {
        self.nest_cpu.iter().position(|&c| c == cpu.0)
    }

    /// The publishing CPU instance for `socket`.
    pub fn instance_of_socket(&self, socket: usize) -> InstanceId {
        InstanceId(self.nest_cpu[socket])
    }

    /// Whether `cpu` is a valid instance in the CPU domain.
    pub fn valid_instance(&self, cpu: InstanceId) -> bool {
        cpu.0 < self.num_cpus
    }

    /// Number of CPU instances in the per-CPU instance domain.
    pub fn num_instances(&self) -> u32 {
        self.num_cpus
    }

    /// Publishing CPU instance of every socket, in socket order (the
    /// instance-domain payload of the wire protocol's INSTANCE PDU).
    pub fn nest_cpus(&self) -> &[u32] {
        &self.nest_cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespace_has_all_sixteen_nest_metrics() {
        let pmns = Pmns::for_machine(&Machine::summit());
        assert_eq!(pmns.len(), 16);
        for ch in 0..8 {
            for word in ["READ", "WRITE"] {
                let name =
                    format!("perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_{word}_BYTES.value");
                let id = pmns.lookup(&name).expect("metric must exist");
                let desc = pmns.desc(id).unwrap();
                assert_eq!(desc.channel, ch);
                assert_eq!(desc.units, "byte");
                assert_eq!(desc.semantics, MetricSemantics::Counter);
            }
        }
    }

    #[test]
    fn unknown_names_do_not_resolve() {
        let pmns = Pmns::for_machine(&Machine::summit());
        assert!(pmns.lookup("perfevent.hwcounters.nope").is_none());
        assert!(pmns
            .lookup("perfevent.hwcounters.nest_mba8_imc.PM_MBA8_READ_BYTES.value")
            .is_none());
    }

    #[test]
    fn instances_map_to_sockets_like_summit() {
        let pmns = Pmns::for_machine(&Machine::summit());
        assert_eq!(pmns.instance_of_socket(0), InstanceId(87));
        assert_eq!(pmns.instance_of_socket(1), InstanceId(175));
        assert_eq!(pmns.socket_of_instance(InstanceId(87)), Some(0));
        assert_eq!(pmns.socket_of_instance(InstanceId(175)), Some(1));
        assert_eq!(pmns.socket_of_instance(InstanceId(3)), None);
        assert!(pmns.valid_instance(InstanceId(3)));
        assert!(!pmns.valid_instance(InstanceId(176)));
    }

    #[test]
    fn prefix_listing() {
        let pmns = Pmns::for_machine(&Machine::summit());
        let mba3 = pmns.children("perfevent.hwcounters.nest_mba3_imc");
        assert_eq!(mba3.len(), 2);
        assert_eq!(pmns.children("perfevent").len(), 16);
        assert_eq!(pmns.children("").len(), 16);
    }
}
