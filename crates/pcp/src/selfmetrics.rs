//! `pmcd.*` self-metrics and the `pmcd.obs.*` registry export.
//!
//! Both daemons — the in-process [`crate::daemon::Pmcd`] and the
//! networked `pcp_wire::PmcdServer` — measure themselves with the same
//! `obs` primitives and serve the results through the same PMNS paths
//! as the hardware metrics, in two reserved id ranges:
//!
//! * [`SELF_METRIC_BASE`] — per-daemon operational metrics
//!   (`pmcd.pdu.*`, `pmcd.fetch.*`, and on the wire server
//!   `pmcd.client.*` / `pmcd.queue.*`). Self-metrics exist from daemon
//!   construction: a client can resolve and fetch them before the first
//!   value fetch ever happens, so the first archive sample of a
//!   `pmlogger` schedule already contains the columns.
//! * [`OBS_METRIC_BASE`] — the *process-wide* [`obs::Registry`]
//!   flattened under `pmcd.obs.`. Whatever any crate in the stack
//!   counts (memsim MBA accounting, PDU codec, kernel measurement
//!   loops) becomes fetchable over the wire like any other metric.
//!   The registry is append-only and each entry flattens to a fixed
//!   number of scalars, so `OBS_METRIC_BASE + flattened index` is a
//!   stable metric id.
//!
//! The fetch-latency histogram is an [`obs::Histogram`] (log2 buckets);
//! the exported `lt_*` metrics are cumulative sample counts below
//! power-of-two nanosecond thresholds, named by the exact threshold.

use std::time::Duration;

use crate::pmns::{MetricDesc, MetricId, MetricSemantics};
use p9_memsim::Direction;

/// Base of the reserved id range for per-daemon self-metrics.
pub const SELF_METRIC_BASE: u32 = 0x4000_0000;

/// Base of the reserved id range for the `pmcd.obs.*` registry export.
pub const OBS_METRIC_BASE: u32 = 0x4100_0000;

/// Name prefix under which the global obs registry is exported.
pub const OBS_PREFIX: &str = "pmcd.obs.";

/// Cumulative fetch-latency buckets derived from the log2 histogram:
/// `(k, name)` exports the number of fetches that took `< 2^k` ns.
pub const LATENCY_BUCKETS: [(u32, &str); 5] = [
    (10, "pmcd.fetch.latency_ns.lt_1024"),
    (14, "pmcd.fetch.latency_ns.lt_16384"),
    (17, "pmcd.fetch.latency_ns.lt_131072"),
    (20, "pmcd.fetch.latency_ns.lt_1048576"),
    (24, "pmcd.fetch.latency_ns.lt_16777216"),
];

/// Self-metric table of the in-process daemon: name, units, semantics.
/// Metric id = [`SELF_METRIC_BASE`] + index. (The wire server has a
/// superset table of its own with the same leading layout.)
pub const DAEMON_SELF_METRICS: [(&str, &str, MetricSemantics); 9] = [
    ("pmcd.pdu.in", "count", MetricSemantics::Counter),
    ("pmcd.pdu.out", "count", MetricSemantics::Counter),
    ("pmcd.fetch.count", "count", MetricSemantics::Counter),
    (
        "pmcd.fetch.latency_ns.sum",
        "nanosecond",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_1024",
        "count",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_16384",
        "count",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_131072",
        "count",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_1048576",
        "count",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_16777216",
        "count",
        MetricSemantics::Counter,
    ),
];

/// Build a descriptor for a self/obs metric (channel and direction are
/// meaningless for operational metrics; they read as channel 0 / Read,
/// matching the wire encoding).
pub fn self_desc(
    id: MetricId,
    name: &str,
    units: &'static str,
    semantics: MetricSemantics,
) -> MetricDesc {
    MetricDesc {
        id,
        name: name.to_owned(),
        semantics,
        units,
        channel: 0,
        direction: Direction::Read,
    }
}

/// Operational counters of the in-process daemon, created at
/// construction (before any client exists).
#[derive(Default)]
pub struct DaemonStats {
    pdu_in: obs::Counter,
    pdu_out: obs::Counter,
    fetch_hist: obs::Histogram,
}

impl DaemonStats {
    /// Fresh stats, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one request received (any kind).
    pub fn record_request(&self) {
        self.pdu_in.inc();
    }

    /// Count one reply sent.
    pub fn record_reply(&self) {
        self.pdu_out.inc();
    }

    /// Record one completed fetch and its service time. The in-flight
    /// fetch is *not* included in the values it returns — a fetch of
    /// `pmcd.fetch.count` reports the fetches completed before it.
    pub fn record_fetch(&self, elapsed: Duration) {
        self.fetch_hist
            .record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Snapshot of the fetch service-time histogram.
    pub fn fetch_histogram(&self) -> obs::HistSnapshot {
        self.fetch_hist.snapshot()
    }

    /// Resolve a daemon self-metric name.
    pub fn lookup(name: &str) -> Option<MetricId> {
        DAEMON_SELF_METRICS
            .iter()
            .position(|(n, _, _)| *n == name)
            .map(|idx| MetricId(SELF_METRIC_BASE + idx as u32))
    }

    /// Descriptor for a daemon self-metric id.
    pub fn desc(id: MetricId) -> Option<MetricDesc> {
        let idx = id.0.checked_sub(SELF_METRIC_BASE)? as usize;
        let &(name, units, semantics) = DAEMON_SELF_METRICS.get(idx)?;
        Some(self_desc(id, name, units, semantics))
    }

    /// Value of self-metric `idx` (index into [`DAEMON_SELF_METRICS`]).
    /// Latency buckets read cumulatively from the log2 histogram.
    pub fn value(&self, idx: usize) -> Option<u64> {
        Some(match idx {
            0 => self.pdu_in.get(),
            1 => self.pdu_out.get(),
            2 => self.fetch_hist.snapshot().count(),
            3 => self.fetch_hist.snapshot().sum,
            4..=8 => self
                .fetch_hist
                .snapshot()
                .count_below_pow2(LATENCY_BUCKETS[idx - 4].0),
            _ => return None,
        })
    }

    /// Daemon self-metric names matching a dotted prefix.
    pub fn names_under(prefix: &str) -> Vec<String> {
        DAEMON_SELF_METRICS
            .iter()
            .filter(|(n, _, _)| prefix.is_empty() || n.starts_with(prefix))
            .map(|(n, _, _)| (*n).to_owned())
            .collect()
    }
}

/// Map obs export semantics onto PCP metric semantics.
pub fn obs_semantics(s: obs::metrics::ExportSemantics) -> MetricSemantics {
    match s {
        obs::metrics::ExportSemantics::Counter => MetricSemantics::Counter,
        obs::metrics::ExportSemantics::Instant => MetricSemantics::Instant,
    }
}

/// Resolve a `pmcd.obs.*` name against the global registry.
pub fn obs_lookup(name: &str) -> Option<MetricId> {
    let bare = name.strip_prefix(OBS_PREFIX)?;
    obs::registry()
        .export()
        .iter()
        .position(|e| e.name == bare)
        .map(|idx| MetricId(OBS_METRIC_BASE + idx as u32))
}

/// Descriptor for a `pmcd.obs.*` metric id.
pub fn obs_desc(id: MetricId) -> Option<MetricDesc> {
    let idx = id.0.checked_sub(OBS_METRIC_BASE)? as usize;
    let entry = obs::registry().export().into_iter().nth(idx)?;
    Some(self_desc(
        id,
        &format!("{OBS_PREFIX}{}", entry.name),
        "count",
        obs_semantics(entry.semantics),
    ))
}

/// Current value of a `pmcd.obs.*` metric id (any instance). Takes a
/// fresh registry export per call — callers answering a *batch* of obs
/// ids should export once and use [`obs_value_from`] so every value in
/// the reply comes from one coherent snapshot.
pub fn obs_value(id: MetricId) -> Option<u64> {
    obs_value_from(&obs::registry().export(), id)
}

/// Value of a `pmcd.obs.*` metric id out of a caller-held registry
/// export. Both daemons snapshot once per fetch batch and answer every
/// obs id in the batch from it, so a reply can never mix registry
/// states (e.g. a histogram's `count` advancing between its `count`
/// and `sum` columns).
pub fn obs_value_from(snapshot: &[obs::metrics::Exported], id: MetricId) -> Option<u64> {
    let idx = id.0.checked_sub(OBS_METRIC_BASE)? as usize;
    snapshot.get(idx).map(|e| e.value)
}

/// All `pmcd.obs.*` names matching a dotted prefix.
pub fn obs_children(prefix: &str) -> Vec<String> {
    obs::registry()
        .export()
        .iter()
        .map(|e| format!("{OBS_PREFIX}{}", e.name))
        .filter(|n| prefix.is_empty() || n.starts_with(prefix))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_names_in_table_match_bucket_spec() {
        for (i, (_, name)) in LATENCY_BUCKETS.iter().enumerate() {
            assert_eq!(DAEMON_SELF_METRICS[4 + i].0, *name);
        }
        // The names state the exact power-of-two nanosecond threshold.
        for (k, name) in LATENCY_BUCKETS {
            let threshold: u64 = name
                .rsplit("lt_")
                .next()
                .and_then(|s| s.parse().ok())
                .expect("bucket name ends in its threshold");
            assert_eq!(threshold, 1u64 << k, "{name}");
        }
    }

    #[test]
    fn daemon_stats_values_track_activity() {
        let stats = DaemonStats::new();
        assert_eq!(stats.value(0), Some(0));
        assert_eq!(stats.value(2), Some(0));
        stats.record_request();
        stats.record_reply();
        stats.record_fetch(Duration::from_nanos(900)); // < 1024
        stats.record_fetch(Duration::from_micros(100)); // < 131072
        assert_eq!(stats.value(0), Some(1));
        assert_eq!(stats.value(1), Some(1));
        assert_eq!(stats.value(2), Some(2));
        assert_eq!(stats.value(3), Some(900 + 100_000));
        assert_eq!(stats.value(4), Some(1)); // lt_1024
        assert_eq!(stats.value(6), Some(2)); // lt_131072 (cumulative)
        assert_eq!(stats.value(9), None);
    }

    #[test]
    fn obs_registry_is_exported_under_pmcd_obs() {
        obs::registry().counter("selfmetrics.test_counter").add(17);
        let id = obs_lookup("pmcd.obs.selfmetrics.test_counter").expect("resolves");
        assert!(id.0 >= OBS_METRIC_BASE);
        assert_eq!(obs_value(id), Some(17));
        let desc = obs_desc(id).expect("desc");
        assert_eq!(desc.name, "pmcd.obs.selfmetrics.test_counter");
        assert_eq!(desc.semantics, MetricSemantics::Counter);
        assert!(obs_children("pmcd")
            .iter()
            .any(|n| n == "pmcd.obs.selfmetrics.test_counter"));
        assert!(obs_lookup("pmcd.obs.nope").is_none());
        assert!(obs_lookup("selfmetrics.test_counter").is_none());
    }
}
