//! The Performance Metrics Collector Daemon (PMCD).
//!
//! The daemon is a real OS thread. It is the *only* component on a Summit
//! node holding an elevated privilege token, and therefore the only path by
//! which an unprivileged client can observe the nest counters. Requests
//! arrive over a `std::sync::mpsc` channel; each request carries its own
//! response channel (a bounded rendezvous), mirroring PCP's PDU exchange.
//! (A *real* networked PMCD over TCP lives in the `pcp-wire` crate; this
//! in-process daemon remains the zero-infrastructure fallback.)
//!
//! Two fidelity knobs model the indirection the paper evaluates:
//!
//! * `fetch_latency_s` — wall time one fetch round-trip adds to the
//!   *requesting context's* measured window (daemon scheduling + PDU
//!   encode/decode). The PAPI PCP component accounts this when it reads.
//! * `fetch_touch` — when set, every fetch injects the daemon's own memory
//!   traffic into the socket counters (the daemon runs *on* the measured
//!   socket). Off by default; the PAPI layer injects start/stop overhead
//!   itself.

use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::pmns::{InstanceId, MetricDesc, MetricId, Pmns};
use crate::selfmetrics::{self, DaemonStats, OBS_METRIC_BASE, SELF_METRIC_BASE};
use p9_memsim::machine::SocketShared;
use p9_memsim::{PrivilegeError, PrivilegeToken};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct PmcdConfig {
    /// Seconds of simulated latency added per fetch round-trip.
    ///
    /// This is the *fallback* latency model, used only by the in-process
    /// transport ([`crate::client::PcpContext`]) where there is no real
    /// network hop to measure. The wire transport (`pcp-wire`) pays the
    /// actual socket round-trip instead and ignores this knob.
    pub fetch_latency_s: f64,
    /// Inject daemon memory traffic on each fetch.
    pub fetch_touch: bool,
}

impl Default for PmcdConfig {
    fn default() -> Self {
        PmcdConfig {
            // ~80 µs: a local-socket PDU round trip plus PMDA work.
            fetch_latency_s: 80e-6,
            fetch_touch: false,
        }
    }
}

impl PmcdConfig {
    /// Panic on configurations that would silently corrupt every
    /// measurement window (negative or NaN latency).
    pub fn validate(&self) {
        assert!(
            self.fetch_latency_s.is_finite() && self.fetch_latency_s >= 0.0,
            "PmcdConfig::fetch_latency_s must be finite and non-negative, got {}",
            self.fetch_latency_s
        );
    }
}

/// Requests a client can send (a trimmed PCP PDU set).
#[derive(Debug)]
pub enum Request {
    LookupName {
        name: String,
        reply: SyncSender<Option<MetricId>>,
    },
    Desc {
        id: MetricId,
        reply: SyncSender<Option<MetricDesc>>,
    },
    Children {
        prefix: String,
        reply: SyncSender<Vec<String>>,
    },
    Fetch {
        requests: Vec<(MetricId, InstanceId)>,
        reply: SyncSender<Vec<Option<u64>>>,
    },
    Shutdown,
}

/// A handle for connecting clients and shutting the daemon down.
#[derive(Clone)]
pub struct PmcdHandle {
    tx: Sender<Request>,
    config: PmcdConfig,
}

impl PmcdHandle {
    pub(crate) fn sender(&self) -> Sender<Request> {
        self.tx.clone()
    }

    /// The daemon's configuration (clients read the fetch latency).
    pub fn config(&self) -> &PmcdConfig {
        &self.config
    }
}

/// Why a daemon failed to start.
#[derive(Debug)]
pub enum PmcdError {
    /// The caller's token lacks elevation.
    Privilege(PrivilegeError),
    /// The OS refused to spawn the service thread.
    Spawn(std::io::Error),
}

impl std::fmt::Display for PmcdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmcdError::Privilege(e) => write!(f, "privilege: {e}"),
            PmcdError::Spawn(e) => write!(f, "spawn pmcd thread: {e}"),
        }
    }
}

impl std::error::Error for PmcdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmcdError::Privilege(e) => Some(e),
            PmcdError::Spawn(e) => Some(e),
        }
    }
}

impl From<PrivilegeError> for PmcdError {
    fn from(e: PrivilegeError) -> Self {
        PmcdError::Privilege(e)
    }
}

/// The daemon itself (owns the service thread).
pub struct Pmcd {
    handle: PmcdHandle,
    stats: Arc<DaemonStats>,
    thread: Option<JoinHandle<()>>,
}

impl Pmcd {
    /// Start a PMCD for the given sockets. Requires an elevated token —
    /// exactly like the real daemon, which is started by the system with
    /// the privileges ordinary users lack.
    pub fn spawn(
        pmns: Pmns,
        sockets: Vec<Arc<SocketShared>>,
        token: &PrivilegeToken,
        config: PmcdConfig,
    ) -> Result<Self, PmcdError> {
        token.require_elevated()?;
        config.validate();
        let (tx, rx) = channel::<Request>();
        let cfg = config.clone();
        // Self-metrics exist from construction, not lazily on first
        // fetch: the very first sample of a pmlogger schedule already
        // resolves and records the `pmcd.*` columns.
        let stats = Arc::new(DaemonStats::new());
        let thread_stats = Arc::clone(&stats);
        let thread = std::thread::Builder::new()
            .name("pmcd".into())
            .spawn(move || service_loop(pmns, sockets, cfg, thread_stats, rx))
            .map_err(PmcdError::Spawn)?;
        Ok(Pmcd {
            handle: PmcdHandle { tx, config },
            stats,
            thread: Some(thread),
        })
    }

    /// Start a PMCD as the *system* would: the system boot path mints the
    /// elevated token itself, so this succeeds even on machines where users
    /// are unprivileged. This is how Summit exposes nest counters to
    /// everyone. Privilege cannot fail here; thread spawning still can.
    pub fn spawn_system(
        pmns: Pmns,
        sockets: Vec<Arc<SocketShared>>,
        config: PmcdConfig,
    ) -> Result<Self, PmcdError> {
        Self::spawn(pmns, sockets, &PrivilegeToken::elevated(), config)
    }

    /// Handle for connecting clients.
    pub fn handle(&self) -> PmcdHandle {
        self.handle.clone()
    }

    /// The daemon's own operational counters (also fetchable by any
    /// client under `pmcd.*`).
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }
}

impl Drop for Pmcd {
    fn drop(&mut self) {
        let _ = self.handle.tx.send(Request::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn service_loop(
    pmns: Pmns,
    sockets: Vec<Arc<SocketShared>>,
    config: PmcdConfig,
    stats: Arc<DaemonStats>,
    rx: Receiver<Request>,
) {
    while let Ok(req) = rx.recv() {
        match req {
            Request::LookupName { name, reply } => {
                stats.record_request();
                let found = pmns
                    .lookup(&name)
                    .or_else(|| DaemonStats::lookup(&name))
                    .or_else(|| selfmetrics::obs_lookup(&name));
                let _ = reply.send(found);
                stats.record_reply();
            }
            Request::Desc { id, reply } => {
                stats.record_request();
                let desc = if id.0 >= OBS_METRIC_BASE {
                    selfmetrics::obs_desc(id)
                } else if id.0 >= SELF_METRIC_BASE {
                    DaemonStats::desc(id)
                } else {
                    pmns.desc(id).cloned()
                };
                let _ = reply.send(desc);
                stats.record_reply();
            }
            Request::Children { prefix, reply } => {
                stats.record_request();
                let mut names: Vec<String> = pmns
                    .children(&prefix)
                    .into_iter()
                    .map(str::to_owned)
                    .collect();
                names.extend(DaemonStats::names_under(&prefix));
                names.extend(selfmetrics::obs_children(&prefix));
                let _ = reply.send(names);
                stats.record_reply();
            }
            Request::Fetch { requests, reply } => {
                stats.record_request();
                #[cfg(feature = "obs")]
                let _span = obs::span!("pmcd.fetch", requests.len() as u64);
                let start = Instant::now();
                // One registry snapshot per batch: every `pmcd.obs.*`
                // value in the reply is from the same registry state.
                let mut obs_snap: Option<Vec<obs::metrics::Exported>> = None;
                let values = requests
                    .iter()
                    .map(|&(id, inst)| {
                        fetch_one(&pmns, &sockets, &config, &stats, id, inst, &mut obs_snap)
                    })
                    .collect();
                stats.record_fetch(start.elapsed());
                let _ = reply.send(values);
                stats.record_reply();
            }
            Request::Shutdown => break,
        }
    }
}

fn fetch_one(
    pmns: &Pmns,
    sockets: &[Arc<SocketShared>],
    config: &PmcdConfig,
    stats: &DaemonStats,
    id: MetricId,
    inst: InstanceId,
    obs_snap: &mut Option<Vec<obs::metrics::Exported>>,
) -> Option<u64> {
    // Self-metrics and the obs-registry export are instance-less: any
    // valid instance reads the same value. Obs ids are answered from a
    // registry export taken at most once per fetch batch, so a reply
    // can never mix registry states across its columns.
    if id.0 >= OBS_METRIC_BASE {
        let snap = obs_snap.get_or_insert_with(|| obs::registry().export());
        return selfmetrics::obs_value_from(snap, id);
    }
    if id.0 >= SELF_METRIC_BASE {
        return stats.value((id.0 - SELF_METRIC_BASE) as usize);
    }
    let desc = pmns.desc(id)?;
    if !pmns.valid_instance(inst) {
        return None;
    }
    // Nest values are published on each socket's qualifier CPU; any other
    // CPU instance reads as zero (matching the real perfevent export).
    match pmns.socket_of_instance(inst) {
        Some(socket) => {
            let shared = sockets.get(socket)?;
            if config.fetch_touch {
                shared.measurement_touch();
            }
            Some(shared.counters().channel(desc.channel, desc.direction))
        }
        None => Some(0),
    }
}

/// Create a rendezvous channel for one request/response exchange.
pub(crate) fn oneshot<T>() -> (SyncSender<T>, Receiver<T>) {
    sync_channel(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p9_arch::Machine;
    use p9_memsim::{Direction, SimMachine};

    fn setup() -> (SimMachine, Pmcd) {
        let m = SimMachine::quiet(Machine::summit(), 1);
        let pmns = Pmns::for_machine(m.arch());
        let sockets = (0..m.num_sockets()).map(|s| m.socket_shared(s)).collect();
        let d = Pmcd::spawn_system(pmns, sockets, PmcdConfig::default()).expect("spawn pmcd");
        (m, d)
    }

    fn roundtrip_fetch(d: &Pmcd, id: MetricId, inst: InstanceId) -> Option<u64> {
        let (tx, rx) = oneshot();
        d.handle()
            .sender()
            .send(Request::Fetch {
                requests: vec![(id, inst)],
                reply: tx,
            })
            .unwrap();
        rx.recv().unwrap()[0]
    }

    #[test]
    fn daemon_requires_elevation() {
        let m = SimMachine::quiet(Machine::summit(), 1);
        let pmns = Pmns::for_machine(m.arch());
        let sockets = vec![m.socket_shared(0)];
        let err = Pmcd::spawn(
            pmns,
            sockets,
            &PrivilegeToken::user(),
            PmcdConfig::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn fetch_returns_live_counter_values() {
        let (m, d) = setup();
        let pmns = Pmns::for_machine(m.arch());
        let id = pmns
            .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
            .unwrap();
        let inst = pmns.instance_of_socket(0);
        assert_eq!(roundtrip_fetch(&d, id, inst), Some(0));
        // Generate traffic on channel 0 (sector 0 -> channel 0).
        m.socket_shared(0)
            .counters()
            .record_sector(0, Direction::Read);
        assert_eq!(roundtrip_fetch(&d, id, inst), Some(64));
    }

    #[test]
    fn wrong_instance_reads_zero_and_invalid_is_none() {
        let (m, d) = setup();
        let pmns = Pmns::for_machine(m.arch());
        let id = pmns
            .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
            .unwrap();
        m.socket_shared(0)
            .counters()
            .record_sector(0, Direction::Read);
        // CPU 3 is a valid instance but not a nest publisher -> 0.
        assert_eq!(roundtrip_fetch(&d, id, InstanceId(3)), Some(0));
        // CPU 500 is not a valid instance -> None.
        assert_eq!(roundtrip_fetch(&d, id, InstanceId(500)), None);
    }

    #[test]
    fn sockets_are_independent() {
        let (m, d) = setup();
        let pmns = Pmns::for_machine(m.arch());
        let id = pmns
            .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_WRITE_BYTES.value")
            .unwrap();
        m.socket_shared(1)
            .counters()
            .record_sector(0, Direction::Write);
        assert_eq!(roundtrip_fetch(&d, id, pmns.instance_of_socket(0)), Some(0));
        assert_eq!(
            roundtrip_fetch(&d, id, pmns.instance_of_socket(1)),
            Some(64)
        );
    }

    #[test]
    fn shutdown_on_drop_joins_thread() {
        let (_m, d) = setup();
        drop(d); // must not hang
    }

    /// Self-metrics are registered at daemon construction, so a logger's
    /// *first* sample already resolves and records the `pmcd.*` columns
    /// (previously they would only exist after the first client fetch).
    #[test]
    fn self_metrics_exist_from_construction_and_land_in_first_archive_sample() {
        use crate::archive::PmLogger;
        use crate::client::PcpContext;

        let (m, d) = setup();
        let ctx = PcpContext::connect(d.handle(), None);
        // Resolvable before any fetch has ever happened.
        let fetches = ctx.pm_lookup_name("pmcd.fetch.count").expect("lookup");
        assert!(fetches.0 >= SELF_METRIC_BASE);
        let desc = ctx.pm_get_desc(fetches).expect("desc");
        assert_eq!(desc.name, "pmcd.fetch.count");
        assert!(ctx
            .pm_get_children("pmcd")
            .expect("children")
            .iter()
            .any(|n| n == "pmcd.fetch.latency_ns.lt_1048576"));

        let pmns = Pmns::for_machine(m.arch());
        let nest = pmns
            .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
            .unwrap();
        let inst = pmns.instance_of_socket(0);
        let ctx2 = PcpContext::connect(d.handle(), None);
        let mut logger = PmLogger::new(ctx2, vec![(nest, inst), (fetches, InstanceId(0))], 1.0);
        assert!(logger.poll(0.0).expect("first sample"));
        assert!(logger.poll(1.0).expect("second sample"));
        let archive = logger.close();
        // First sample contains the column (value 0: a fetch reports the
        // fetches completed before it); the second has counted the first.
        assert_eq!(archive.records()[0].values[1], 0);
        assert_eq!(archive.records()[1].values[1], 1);
    }

    /// The global obs registry is fetchable through the in-process
    /// daemon under `pmcd.obs.*`.
    #[test]
    fn obs_registry_fetchable_through_daemon() {
        let (_m, d) = setup();
        obs::registry().counter("daemon.test_counter").add(5);
        let (tx, rx) = oneshot();
        d.handle()
            .sender()
            .send(Request::LookupName {
                name: "pmcd.obs.daemon.test_counter".into(),
                reply: tx,
            })
            .unwrap();
        let id = rx.recv().unwrap().expect("obs metric resolves");
        assert!(id.0 >= OBS_METRIC_BASE);
        assert_eq!(roundtrip_fetch(&d, id, InstanceId(0)), Some(5));
    }

    #[test]
    #[should_panic(expected = "fetch_latency_s")]
    fn negative_latency_rejected_at_construction() {
        let m = SimMachine::quiet(Machine::summit(), 1);
        let pmns = Pmns::for_machine(m.arch());
        let _ = Pmcd::spawn_system(
            pmns,
            vec![m.socket_shared(0)],
            PmcdConfig {
                fetch_latency_s: -1e-6,
                fetch_touch: false,
            },
        );
    }

    #[test]
    #[should_panic(expected = "fetch_latency_s")]
    fn nan_latency_rejected_at_construction() {
        let m = SimMachine::quiet(Machine::summit(), 1);
        let pmns = Pmns::for_machine(m.arch());
        let _ = Pmcd::spawn_system(
            pmns,
            vec![m.socket_shared(0)],
            PmcdConfig {
                fetch_latency_s: f64::NAN,
                fetch_touch: false,
            },
        );
    }
}

#[cfg(test)]
mod touch_tests {
    use super::*;
    use crate::client::PcpContext;
    use p9_arch::Machine;
    use p9_memsim::{NoiseConfig, SimMachine};

    /// With `fetch_touch` enabled, each fetch injects the daemon's own
    /// memory footprint into the measured socket — the "observer effect"
    /// knob of the indirection model.
    #[test]
    fn fetch_touch_injects_daemon_traffic() {
        let m = SimMachine::new(Machine::summit(), NoiseConfig::summit(), 55);
        let pmns = Pmns::for_machine(m.arch());
        let d = Pmcd::spawn_system(
            pmns.clone(),
            vec![m.socket_shared(0)],
            PmcdConfig {
                fetch_latency_s: 0.0,
                fetch_touch: true,
            },
        )
        .expect("spawn pmcd");
        let ctx = PcpContext::connect(d.handle(), None);
        let id = pmns
            .lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
            .unwrap();
        let inst = pmns.instance_of_socket(0);
        let v1 = ctx.pm_fetch(&[(id, inst)]).unwrap()[0];
        let v2 = ctx.pm_fetch(&[(id, inst)]).unwrap()[0];
        assert!(v2 > v1, "each fetch must add daemon traffic: {v1} vs {v2}");
    }
}
