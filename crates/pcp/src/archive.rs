//! Archive logging — the `pmlogger` side of PCP.
//!
//! On production systems PCP does not only serve live fetches: `pmlogger`
//! records metric samples into archives that tools later replay
//! (`pmdumplog`, retrospective pmchart sessions). Summit's system
//! telemetry relies on exactly this. The simulated analogue:
//!
//! * [`PmLogger`] samples a fixed metric set through a [`PcpContext`]
//!   on a simulated-time cadence (the caller pumps it with
//!   [`PmLogger::poll`] as its workload advances the clock — the logger
//!   decides whether a new sample is due).
//! * [`Archive`] stores the samples and supports the queries replay tools
//!   need: exact lookups, nearest-sample lookups, and rate conversion
//!   between consecutive samples (what `pmval -a` prints for counter
//!   semantics).

use crate::client::{PcpError, PmApi};
use crate::pmns::{InstanceId, MetricId};

/// One archived sample row.
#[derive(Clone, Debug, PartialEq)]
pub struct ArchiveRecord {
    /// Simulated timestamp, seconds.
    pub time_s: f64,
    /// Metric values, in the logger's metric order.
    pub values: Vec<u64>,
}

/// A completed (or in-progress) metric archive.
#[derive(Clone, Debug, Default)]
pub struct Archive {
    metrics: Vec<(MetricId, InstanceId)>,
    records: Vec<ArchiveRecord>,
}

impl Archive {
    /// An empty archive for the given metric set. Used by external
    /// recorders (e.g. the `pcp-wire` sampling scheduler) that append via
    /// [`Archive::push`].
    pub fn new(metrics: Vec<(MetricId, InstanceId)>) -> Self {
        Archive {
            metrics,
            records: Vec::new(),
        }
    }

    /// Append a sample row. Records must arrive in non-decreasing time
    /// order; out-of-order rows are rejected so replay queries stay
    /// meaningful.
    pub fn push(&mut self, record: ArchiveRecord) {
        assert_eq!(
            record.values.len(),
            self.metrics.len(),
            "record width must match the archive's metric set"
        );
        if let Some(last) = self.records.last() {
            assert!(
                record.time_s >= last.time_s,
                "archive records must be time-ordered: {} after {}",
                record.time_s,
                last.time_s
            );
        }
        self.records.push(record);
    }

    /// The metric set this archive records.
    pub fn metrics(&self) -> &[(MetricId, InstanceId)] {
        &self.metrics
    }

    /// All records, in time order.
    pub fn records(&self) -> &[ArchiveRecord] {
        &self.records
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record at or immediately before `t` (replay semantics).
    pub fn at(&self, t: f64) -> Option<&ArchiveRecord> {
        self.records.iter().rev().find(|r| r.time_s <= t)
    }

    /// Check that metric column `idx` is monotonically non-decreasing
    /// across the archive — the invariant every counter-semantics metric
    /// must satisfy (the hardware counters are free-running and never
    /// reset mid-archive). Returns the first offending pair of record
    /// indices, or `None` if the column is monotone.
    pub fn counter_monotonic(&self, idx: usize) -> Option<(usize, usize)> {
        self.records
            .windows(2)
            .position(|w| w[1].values[idx] < w[0].values[idx])
            .map(|i| (i, i + 1))
    }

    /// Counter-semantics rate of metric `idx` over the interval ending at
    /// the first sample at or after `t` (units/second), `None` at the
    /// archive edges.
    pub fn rate_at(&self, idx: usize, t: f64) -> Option<f64> {
        let pos = self.records.iter().position(|r| r.time_s >= t)?;
        if pos == 0 {
            return None;
        }
        let (a, b) = (&self.records[pos - 1], &self.records[pos]);
        let dt = b.time_s - a.time_s;
        if dt <= 0.0 {
            return None;
        }
        Some((b.values[idx].wrapping_sub(a.values[idx])) as f64 / dt)
    }
}

/// A sampling logger over one PCP connection (any [`PmApi`] transport:
/// the in-process context or a `pcp-wire` TCP client).
pub struct PmLogger {
    ctx: Box<dyn PmApi>,
    interval_s: f64,
    next_due: f64,
    archive: Archive,
}

impl PmLogger {
    /// Log `metrics` every `interval_s` of simulated time. The first
    /// sample is taken at the first `poll`.
    pub fn new(
        ctx: impl PmApi + 'static,
        metrics: Vec<(MetricId, InstanceId)>,
        interval_s: f64,
    ) -> Self {
        assert!(interval_s > 0.0);
        PmLogger {
            ctx: Box::new(ctx),
            interval_s,
            next_due: 0.0,
            archive: Archive::new(metrics),
        }
    }

    /// Offer the logger a chance to sample at simulated time `now_s`.
    /// Returns whether a sample was recorded. (The caller pumps this from
    /// its progress points; the logger enforces the cadence.)
    pub fn poll(&mut self, now_s: f64) -> Result<bool, PcpError> {
        if now_s < self.next_due {
            return Ok(false);
        }
        let values = self.ctx.pm_fetch(&self.archive.metrics)?;
        self.archive.records.push(ArchiveRecord {
            time_s: now_s,
            values,
        });
        // Fixed cadence anchored at the schedule, not at the poll jitter.
        self.next_due = if self.next_due == 0.0 {
            now_s + self.interval_s
        } else {
            self.next_due + self.interval_s
        };
        Ok(true)
    }

    /// Finish logging and hand over the archive.
    pub fn close(self) -> Archive {
        self.archive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::PcpContext;
    use crate::daemon::{Pmcd, PmcdConfig};
    use crate::pmns::Pmns;
    use p9_arch::Machine;
    use p9_memsim::{Direction, SimMachine};

    fn setup() -> (SimMachine, Pmcd, Pmns) {
        let m = SimMachine::quiet(Machine::summit(), 77);
        let pmns = Pmns::for_machine(m.arch());
        let sockets = (0..m.num_sockets()).map(|s| m.socket_shared(s)).collect();
        let d = Pmcd::spawn_system(
            pmns.clone(),
            sockets,
            PmcdConfig {
                fetch_latency_s: 0.0,
                fetch_touch: false,
            },
        )
        .expect("spawn pmcd");
        (m, d, pmns)
    }

    fn read_metric(pmns: &Pmns) -> (MetricId, InstanceId) {
        (
            pmns.lookup("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
                .unwrap(),
            pmns.instance_of_socket(0),
        )
    }

    #[test]
    fn logger_respects_cadence() {
        let (m, d, pmns) = setup();
        let ctx = PcpContext::connect(d.handle(), None);
        let mut logger = PmLogger::new(ctx, vec![read_metric(&pmns)], 1.0);
        let shared = m.socket_shared(0);
        let mut taken = 0;
        for _ in 0..10 {
            shared.advance_seconds(0.4);
            if logger.poll(shared.now_seconds()).unwrap() {
                taken += 1;
            }
        }
        // Polls at 0.4 s steps, 1 Hz cadence anchored at the first sample
        // (t = 0.4): samples land at 0.4, 1.6, 2.4, 3.6.
        assert_eq!(taken, 4);
        assert_eq!(logger.close().len(), 4);
    }

    #[test]
    fn archive_replay_and_rates() {
        let (m, d, pmns) = setup();
        let ctx = PcpContext::connect(d.handle(), None);
        let mut logger = PmLogger::new(ctx, vec![read_metric(&pmns)], 1.0);
        let shared = m.socket_shared(0);

        // t=0: counter 0.  t=1: 64 B.  t=2: 192 B.
        logger.poll(shared.now_seconds()).unwrap();
        shared.counters().record_sector(0, Direction::Read);
        shared.advance_seconds(1.0);
        logger.poll(shared.now_seconds()).unwrap();
        shared.counters().record_sector(0, Direction::Read);
        shared.counters().record_sector(8, Direction::Read);
        shared.advance_seconds(1.0);
        logger.poll(shared.now_seconds()).unwrap();

        let archive = logger.close();
        assert_eq!(archive.len(), 3);
        assert_eq!(archive.at(0.5).unwrap().values, vec![0]);
        assert_eq!(archive.at(1.5).unwrap().values, vec![64]);
        assert!(archive.at(-0.1).is_none());
        // Rates: 64 B/s over [0,1], 128 B/s over [1,2].
        let r1 = archive.rate_at(0, 1.0).unwrap();
        let r2 = archive.rate_at(0, 2.0).unwrap();
        assert!((r1 - 64.0).abs() < 1.0, "{r1}");
        assert!((r2 - 128.0).abs() < 1.0, "{r2}");
        assert!(archive.rate_at(0, 0.0).is_none(), "no interval before t0");
    }

    #[test]
    fn empty_archive_behaviour() {
        let (_m, d, pmns) = setup();
        let ctx = PcpContext::connect(d.handle(), None);
        let logger = PmLogger::new(ctx, vec![read_metric(&pmns)], 1.0);
        let archive = logger.close();
        assert!(archive.is_empty());
        assert!(archive.at(100.0).is_none());
        assert!(archive.rate_at(0, 1.0).is_none());
    }
}
