//! The unprivileged PCP client context.
//!
//! [`PcpContext`] mirrors the PMAPI calls the PAPI PCP component uses:
//! `pm_lookup_name`, `pm_get_desc`, `pm_get_children`, `pm_fetch`. The
//! client needs no privilege — the entire point of the PCP export — and
//! every fetch charges the daemon round-trip latency to the supplied
//! socket clock, modeling the indirection layer the paper studies.

use std::sync::Arc;

use crate::daemon::{oneshot, PmcdHandle, Request};
use crate::pmns::{InstanceId, MetricDesc, MetricId};
use p9_memsim::machine::SocketShared;

/// Client-visible errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PcpError {
    /// The metric name does not exist in the PMNS.
    NoSuchMetric(String),
    /// The metric id is not valid.
    BadMetricId,
    /// The instance is outside the metric's instance domain.
    BadInstance,
    /// The daemon is gone.
    Disconnected,
    /// The transport misbehaved (malformed PDU, I/O error, timeout).
    /// Produced only by networked transports such as `pcp-wire`.
    Protocol(String),
}

impl std::fmt::Display for PcpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcpError::NoSuchMetric(n) => write!(f, "no such metric: {n}"),
            PcpError::BadMetricId => write!(f, "invalid metric id"),
            PcpError::BadInstance => write!(f, "invalid instance"),
            PcpError::Disconnected => write!(f, "pmcd connection lost"),
            PcpError::Protocol(detail) => write!(f, "pcp protocol error: {detail}"),
        }
    }
}

impl std::error::Error for PcpError {}

/// The PMAPI operations every transport provides.
///
/// Two implementations exist: [`PcpContext`] (in-process daemon reached
/// over channels; charges the configured fallback latency to the
/// simulated clock) and `pcp_wire::WireClient` (a real TCP connection to
/// a `pcp_wire::PmcdServer`; pays the actual socket round-trip instead).
/// The PAPI PCP component is written against this trait so either
/// transport can back it unchanged.
pub trait PmApi: Send + Sync {
    /// Resolve a metric name (`pmLookupName`).
    fn pm_lookup_name(&self, name: &str) -> Result<MetricId, PcpError>;

    /// Metric descriptor (`pmLookupDesc`).
    fn pm_get_desc(&self, id: MetricId) -> Result<MetricDesc, PcpError>;

    /// Names under a prefix (`pmGetChildren`, flattened).
    fn pm_get_children(&self, prefix: &str) -> Result<Vec<String>, PcpError>;

    /// Fetch current values (`pmFetch`), one round trip for the group.
    fn pm_fetch(&self, requests: &[(MetricId, InstanceId)]) -> Result<Vec<u64>, PcpError>;

    /// Simulated seconds this transport charges per fetch round-trip.
    /// Zero for transports that pay a real (wall-clock) cost instead.
    fn fetch_latency_s(&self) -> f64 {
        0.0
    }
}

/// An unprivileged connection to the PMCD.
pub struct PcpContext {
    handle: PmcdHandle,
    /// Socket whose clock pays the fetch latency (the context's host
    /// socket). `None` for latency-free administrative contexts.
    host: Option<Arc<SocketShared>>,
}

impl PcpContext {
    /// Connect to a daemon. `host` is the socket the client process runs
    /// on; fetch latency is charged to its clock.
    pub fn connect(handle: PmcdHandle, host: Option<Arc<SocketShared>>) -> Self {
        PcpContext { handle, host }
    }

    /// Resolve a metric name (`pmLookupName`).
    pub fn pm_lookup_name(&self, name: &str) -> Result<MetricId, PcpError> {
        let (tx, rx) = oneshot();
        self.handle
            .sender()
            .send(Request::LookupName {
                name: name.to_owned(),
                reply: tx,
            })
            .map_err(|_| PcpError::Disconnected)?;
        rx.recv()
            .map_err(|_| PcpError::Disconnected)?
            .ok_or_else(|| PcpError::NoSuchMetric(name.to_owned()))
    }

    /// Metric descriptor (`pmLookupDesc`).
    pub fn pm_get_desc(&self, id: MetricId) -> Result<MetricDesc, PcpError> {
        let (tx, rx) = oneshot();
        self.handle
            .sender()
            .send(Request::Desc { id, reply: tx })
            .map_err(|_| PcpError::Disconnected)?;
        rx.recv()
            .map_err(|_| PcpError::Disconnected)?
            .ok_or(PcpError::BadMetricId)
    }

    /// Names under a prefix (`pmGetChildren`, flattened).
    pub fn pm_get_children(&self, prefix: &str) -> Result<Vec<String>, PcpError> {
        let (tx, rx) = oneshot();
        self.handle
            .sender()
            .send(Request::Children {
                prefix: prefix.to_owned(),
                reply: tx,
            })
            .map_err(|_| PcpError::Disconnected)?;
        rx.recv().map_err(|_| PcpError::Disconnected)
    }

    /// Fetch current values (`pmFetch`). One round trip for the whole
    /// group — PAPI batches all PCP events of an event set into a single
    /// fetch, and the round-trip latency is charged once.
    pub fn pm_fetch(&self, requests: &[(MetricId, InstanceId)]) -> Result<Vec<u64>, PcpError> {
        let (tx, rx) = oneshot();
        self.handle
            .sender()
            .send(Request::Fetch {
                requests: requests.to_vec(),
                reply: tx,
            })
            .map_err(|_| PcpError::Disconnected)?;
        let values = rx.recv().map_err(|_| PcpError::Disconnected)?;
        if let Some(host) = &self.host {
            host.advance_seconds(self.handle.config().fetch_latency_s);
        }
        values
            .into_iter()
            .map(|v| v.ok_or(PcpError::BadInstance))
            .collect()
    }
}

impl PmApi for PcpContext {
    fn pm_lookup_name(&self, name: &str) -> Result<MetricId, PcpError> {
        PcpContext::pm_lookup_name(self, name)
    }

    fn pm_get_desc(&self, id: MetricId) -> Result<MetricDesc, PcpError> {
        PcpContext::pm_get_desc(self, id)
    }

    fn pm_get_children(&self, prefix: &str) -> Result<Vec<String>, PcpError> {
        PcpContext::pm_get_children(self, prefix)
    }

    fn pm_fetch(&self, requests: &[(MetricId, InstanceId)]) -> Result<Vec<u64>, PcpError> {
        PcpContext::pm_fetch(self, requests)
    }

    fn fetch_latency_s(&self) -> f64 {
        self.handle.config().fetch_latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::daemon::{Pmcd, PmcdConfig};
    use crate::pmns::Pmns;
    use p9_arch::Machine;
    use p9_memsim::{Direction, SimMachine};

    fn setup(latency: f64) -> (SimMachine, Pmcd, PcpContext) {
        let m = SimMachine::quiet(Machine::summit(), 1);
        let pmns = Pmns::for_machine(m.arch());
        let sockets: Vec<_> = (0..m.num_sockets()).map(|s| m.socket_shared(s)).collect();
        let d = Pmcd::spawn_system(
            pmns,
            sockets,
            PmcdConfig {
                fetch_latency_s: latency,
                fetch_touch: false,
            },
        )
        .expect("spawn pmcd");
        let ctx = PcpContext::connect(d.handle(), Some(m.socket_shared(0)));
        (m, d, ctx)
    }

    #[test]
    fn lookup_fetch_roundtrip() {
        let (m, _d, ctx) = setup(0.0);
        let id = ctx
            .pm_lookup_name("perfevent.hwcounters.nest_mba2_imc.PM_MBA2_READ_BYTES.value")
            .unwrap();
        let desc = ctx.pm_get_desc(id).unwrap();
        assert_eq!(desc.channel, 2);
        // Sector 2 maps to channel 2.
        m.socket_shared(0)
            .counters()
            .record_sector(2, Direction::Read);
        let vals = ctx.pm_fetch(&[(id, InstanceId(87))]).unwrap();
        assert_eq!(vals, vec![64]);
    }

    #[test]
    fn lookup_failure_is_reported() {
        let (_m, _d, ctx) = setup(0.0);
        match ctx.pm_lookup_name("perfevent.bogus") {
            Err(PcpError::NoSuchMetric(n)) => assert_eq!(n, "perfevent.bogus"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fetch_latency_charged_to_host_clock() {
        let (m, _d, ctx) = setup(1e-3);
        let id = ctx
            .pm_lookup_name("perfevent.hwcounters.nest_mba0_imc.PM_MBA0_READ_BYTES.value")
            .unwrap();
        let t0 = m.socket_shared(0).now_seconds();
        ctx.pm_fetch(&[(id, InstanceId(87))]).unwrap();
        let t1 = m.socket_shared(0).now_seconds();
        assert!(t1 - t0 >= 0.9e-3, "latency not charged: {}", t1 - t0);
    }

    #[test]
    fn children_listing_via_client() {
        let (_m, _d, ctx) = setup(0.0);
        let names = ctx
            .pm_get_children("perfevent.hwcounters.nest_mba5_imc")
            .unwrap();
        assert_eq!(names.len(), 2);
        assert!(names.iter().all(|n| n.contains("MBA5")));
    }

    #[test]
    fn batched_fetch_returns_all_values() {
        let (m, _d, ctx) = setup(0.0);
        let pmns = Pmns::for_machine(m.arch());
        let reqs: Vec<_> = (0..8)
            .map(|ch| {
                let id = pmns
                    .lookup(&format!(
                        "perfevent.hwcounters.nest_mba{ch}_imc.PM_MBA{ch}_READ_BYTES.value"
                    ))
                    .unwrap();
                (id, InstanceId(87))
            })
            .collect();
        for s in 0..16u64 {
            m.socket_shared(0)
                .counters()
                .record_sector(s, Direction::Read);
        }
        let vals = ctx.pm_fetch(&reqs).unwrap();
        assert_eq!(vals, vec![128; 8]);
    }
}
