//! The instrumented three-phase QMC application (Fig. 12).
//!
//! The QMCPACK example problem runs VMC with no drift, VMC with drift,
//! then DMC. Each block of each phase does the *real* Monte Carlo work
//! (`vmc`/`dmc` modules) and drives the simulated hardware with the
//! corresponding activity:
//!
//! * walker-ensemble sweeps read and update the walker/observable arrays
//!   (host memory traffic — more per step for the drifted mover, which
//!   also evaluates the Green's function);
//! * wavefunction evaluations are offloaded as GPU kernels (power signal —
//!   heavier per-step kernels for the drift phase, bursty ones for DMC);
//! * DMC's branching triggers periodic walker-count exchanges with the
//!   other ranks (All2All on the fabric).
//!
//! The phases end up with visibly different signatures on the memory /
//! GPU-power / network timelines — the paper's point that "the different
//! stages in the execution of QMCPACK are distinguishable by monitoring
//! separate hardware components simultaneously".

use std::sync::Arc;

use nvml_sim::{GpuDevice, GpuOp};
use p9_memsim::Region;
use ranksim::ClusterSim;

use crate::dmc::{DmcParams, DmcSampler};
use crate::model::Trial;
use crate::vmc::VmcSampler;

/// Phase names in execution order.
pub const QMC_PHASES: [&str; 3] = ["vmc", "vmc-drift", "dmc"];

/// Per-phase block counts and sizes.
#[derive(Clone, Copy, Debug)]
pub struct QmcConfig {
    pub walkers: usize,
    pub blocks_per_phase: usize,
    pub steps_per_block: usize,
    pub alpha: f64,
    pub seed: u64,
}

impl Default for QmcConfig {
    fn default() -> Self {
        QmcConfig {
            walkers: 512,
            blocks_per_phase: 8,
            steps_per_block: 40,
            alpha: 0.85,
            seed: 2023,
        }
    }
}

/// Result summary of an instrumented run.
#[derive(Clone, Copy, Debug)]
pub struct QmcResult {
    pub vmc_energy: f64,
    pub vmc_drift_energy: f64,
    pub dmc_energy: f64,
}

/// The instrumented application.
pub struct QmcApp {
    cfg: QmcConfig,
    gpu: Arc<GpuDevice>,
    /// Walker ensemble backing store (positions + weights + observables).
    walker_buf: Region,
}

impl QmcApp {
    pub fn new(cluster: &mut ClusterSim, gpu: Arc<GpuDevice>, cfg: QmcConfig) -> Self {
        // 3 coords + energy + weight per walker, double precision, times a
        // generous factor for per-walker wavefunction state.
        let bytes = cfg.walkers as u64 * 8 * 64;
        let walker_buf = cluster.machine_mut().alloc(bytes);
        QmcApp {
            cfg,
            gpu,
            walker_buf,
        }
    }

    /// Emit one block's hardware activity: `passes` ensemble sweeps plus a
    /// GPU evaluation kernel sized by `flops_per_walker_step`. `tick` is
    /// invoked around the kernel so samplers catch the power plateau, not
    /// just the copy edges.
    fn block_activity(
        &self,
        cluster: &mut ClusterSim,
        population: usize,
        passes: u64,
        flops_per_walker_step: f64,
        phase: &str,
        tick: &mut impl FnMut(&str, &mut ClusterSim),
    ) {
        let bytes = (population as u64 * 8 * 64).min(self.walker_buf.len());
        let buf = self.walker_buf;
        cluster.machine_mut().run_single(0, |core| {
            for _ in 0..passes {
                core.load_seq(buf.base(), bytes);
                core.store_seq(buf.base(), bytes);
                core.compute(population as u64 * 50);
            }
        });
        // Walker state shuttles to the GPU for the wavefunction
        // evaluations and back with updated positions/energies — this DMA
        // is the phase's dominant host-memory signal (the walker arrays
        // themselves stay cache-resident between sweeps).
        self.gpu.submit_sync(GpuOp::H2D {
            bytes: bytes * passes,
        });
        tick(phase, cluster);
        self.gpu.submit_sync(GpuOp::Kernel {
            flops: flops_per_walker_step * population as f64 * self.cfg.steps_per_block as f64,
            mem_bytes: bytes * passes,
        });
        tick(phase, cluster);
        self.gpu.submit_sync(GpuOp::D2H { bytes });
    }

    /// Run the three phases, calling `tick(phase)` after every block.
    pub fn run(
        &self,
        cluster: &mut ClusterSim,
        mut tick: impl FnMut(&str, &mut ClusterSim),
    ) -> QmcResult {
        let cfg = self.cfg;
        let trial = Trial::new(cfg.alpha);

        // --- Phase 1: VMC, no drift. -----------------------------------
        let mut vmc = VmcSampler::new(trial, cfg.walkers, 0.3, false, cfg.seed);
        let mut vmc_energy = 0.0;
        for _ in 0..cfg.blocks_per_phase {
            let stats = vmc.run_block(cfg.steps_per_block);
            vmc_energy += stats.energy;
            self.block_activity(cluster, cfg.walkers, 2, 4.0e6, "vmc", &mut tick);
            tick("vmc", cluster);
        }
        vmc_energy /= cfg.blocks_per_phase as f64;

        // --- Phase 2: VMC with drift. ------------------------------------
        let mut vmc_d = VmcSampler::new(trial, cfg.walkers, 0.3, true, cfg.seed + 1);
        // Reuse the equilibrated ensemble.
        vmc_d.walkers.copy_from_slice(&vmc.walkers);
        let mut vmc_drift_energy = 0.0;
        for _ in 0..cfg.blocks_per_phase {
            let stats = vmc_d.run_block(cfg.steps_per_block);
            vmc_drift_energy += stats.energy;
            // Drifted moves evaluate forces and Green's functions: more
            // sweeps and heavier kernels.
            self.block_activity(cluster, cfg.walkers, 4, 9.0e6, "vmc-drift", &mut tick);
            tick("vmc-drift", cluster);
        }
        vmc_drift_energy /= cfg.blocks_per_phase as f64;

        // --- Phase 3: DMC. -------------------------------------------------
        let mut dmc = DmcSampler::new(
            trial,
            vmc_d.walkers.clone(),
            DmcParams {
                timestep: 0.01,
                target_population: cfg.walkers,
                feedback: 1.0,
            },
            cfg.seed + 2,
        );
        let mut dmc_energy = 0.0;
        for _ in 0..cfg.blocks_per_phase {
            let stats = dmc.run_block(cfg.steps_per_block);
            dmc_energy += stats.energy;
            // Branching varies the population; load balancing exchanges
            // walkers across ranks every block.
            self.block_activity(cluster, stats.population, 3, 6.0e6, "dmc", &mut tick);
            cluster.alltoall((stats.population as u64 * 32).max(1024));
            tick("dmc", cluster);
        }
        dmc_energy /= cfg.blocks_per_phase as f64;

        QmcResult {
            vmc_energy,
            vmc_drift_energy,
            dmc_energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvml_sim::GpuParams;
    use p9_arch::Machine;
    use p9_memsim::SimMachine;
    use ranksim::ProcessGrid;

    fn setup() -> (ClusterSim, Arc<GpuDevice>) {
        let m = SimMachine::quiet(Machine::summit(), 71);
        let gpu = Arc::new(GpuDevice::new(0, GpuParams::default(), m.socket_shared(0)));
        let cluster = ClusterSim::new(m, ProcessGrid::new(2, 2), 2);
        (cluster, gpu)
    }

    #[test]
    fn phases_run_in_order_and_produce_sane_energies() {
        let (mut cluster, gpu) = setup();
        let app = QmcApp::new(&mut cluster, gpu, QmcConfig::default());
        let mut seen = Vec::new();
        let result = app.run(&mut cluster, |phase, _| {
            if seen.last().map(String::as_str) != Some(phase) {
                seen.push(phase.to_owned());
            }
        });
        assert_eq!(seen, QMC_PHASES.to_vec());
        // Variational estimates sit at/above the ground state; DMC near it.
        assert!(result.vmc_energy > 1.45 && result.vmc_energy < 1.75);
        assert!(result.vmc_drift_energy > 1.45 && result.vmc_drift_energy < 1.75);
        assert!(
            (result.dmc_energy - 1.5).abs() < 0.1,
            "{}",
            result.dmc_energy
        );
    }

    #[test]
    fn phases_have_distinct_hardware_signatures() {
        let (mut cluster, gpu) = setup();
        let app = QmcApp::new(&mut cluster, gpu, QmcConfig::default());
        let shared = cluster.machine().socket_shared(0);
        let mut per_phase_reads = std::collections::HashMap::<String, u64>::new();
        let mut per_phase_ib = std::collections::HashMap::<String, u64>::new();
        let mut last_r = shared.counters().total_read();
        let mut last_ib = 0u64;
        app.run(&mut cluster, |phase, cl| {
            let r = cl.machine().socket_shared(0).counters().total_read();
            let ib = cl.fabric().node(0).hcas[0].port.recv_data();
            *per_phase_reads.entry(phase.into()).or_default() += r - last_r;
            *per_phase_ib.entry(phase.into()).or_default() += ib - last_ib;
            last_r = r;
            last_ib = ib;
        });
        // Drift phase moves more memory than plain VMC; only DMC talks to
        // the network.
        assert!(per_phase_reads["vmc-drift"] > per_phase_reads["vmc"]);
        assert_eq!(per_phase_ib["vmc"], 0);
        assert_eq!(per_phase_ib["vmc-drift"], 0);
        assert!(per_phase_ib["dmc"] > 0);
    }

    #[test]
    fn gpu_sees_kernel_energy() {
        let (mut cluster, gpu) = setup();
        let app = QmcApp::new(&mut cluster, Arc::clone(&gpu), QmcConfig::default());
        app.run(&mut cluster, |_, _| {});
        assert!(gpu.active_energy_j() > 0.0);
    }
}
