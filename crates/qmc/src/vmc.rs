//! Variational Monte Carlo: Metropolis sampling of `|ψ_α|²`.
//!
//! Two movers, matching the two VMC stages of the QMCPACK example problem:
//!
//! * **No drift**: symmetric Gaussian proposals, plain Metropolis.
//! * **With drift**: Langevin proposals `r' = r + F(r)·τ + χ√τ` and the
//!   Metropolis-Hastings correction with the Green's-function ratio.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr_shim::StandardNormal;

use crate::model::{Trial, R3};

/// Statistics of one VMC block.
#[derive(Clone, Copy, Debug)]
pub struct VmcStats {
    pub energy: f64,
    pub energy_var: f64,
    pub acceptance: f64,
    pub steps: u64,
}

/// A VMC walker-ensemble sampler.
pub struct VmcSampler {
    pub trial: Trial,
    pub walkers: Vec<R3>,
    pub timestep: f64,
    pub drift: bool,
    rng: StdRng,
}

impl VmcSampler {
    /// `walkers` initial positions at the origin-ish; `drift` picks the
    /// mover.
    pub fn new(trial: Trial, n_walkers: usize, timestep: f64, drift: bool, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let walkers = (0..n_walkers)
            .map(|_| {
                [
                    rng.sample::<f64, _>(StandardNormal) * 0.5,
                    rng.sample::<f64, _>(StandardNormal) * 0.5,
                    rng.sample::<f64, _>(StandardNormal) * 0.5,
                ]
            })
            .collect();
        VmcSampler {
            trial,
            walkers,
            timestep,
            drift,
            rng,
        }
    }

    /// Number of walkers.
    pub fn population(&self) -> usize {
        self.walkers.len()
    }

    /// Advance every walker by `steps` Monte Carlo sweeps; returns block
    /// statistics over all post-move samples.
    pub fn run_block(&mut self, steps: usize) -> VmcStats {
        let tau = self.timestep;
        let sqrt_tau = tau.sqrt();
        let mut accepted = 0u64;
        let mut attempts = 0u64;
        let mut e_sum = 0.0;
        let mut e2_sum = 0.0;
        let mut samples = 0u64;

        for _ in 0..steps {
            for w in 0..self.walkers.len() {
                let r = self.walkers[w];
                let chi: R3 = [
                    self.rng.sample::<f64, _>(StandardNormal) * sqrt_tau,
                    self.rng.sample::<f64, _>(StandardNormal) * sqrt_tau,
                    self.rng.sample::<f64, _>(StandardNormal) * sqrt_tau,
                ];
                let (proposal, log_ratio) = if self.drift {
                    let f = self.trial.drift(&r);
                    let rp = [
                        r[0] + f[0] * tau + chi[0],
                        r[1] + f[1] * tau + chi[1],
                        r[2] + f[2] * tau + chi[2],
                    ];
                    // Green's-function ratio G(r|r')/G(r'|r) in log space.
                    let fp = self.trial.drift(&rp);
                    let mut log_g = 0.0;
                    for d in 0..3 {
                        let fwd = rp[d] - r[d] - f[d] * tau;
                        let back = r[d] - rp[d] - fp[d] * tau;
                        log_g += (fwd * fwd - back * back) / (2.0 * tau);
                    }
                    let log_psi = self.trial.log_psi2(&rp) - self.trial.log_psi2(&r);
                    (rp, log_psi + log_g)
                } else {
                    let rp = [r[0] + chi[0], r[1] + chi[1], r[2] + chi[2]];
                    (rp, self.trial.log_psi2(&rp) - self.trial.log_psi2(&r))
                };
                attempts += 1;
                if log_ratio >= 0.0 || self.rng.gen::<f64>() < log_ratio.exp() {
                    self.walkers[w] = proposal;
                    accepted += 1;
                }
                let e = self.trial.local_energy(&self.walkers[w]);
                e_sum += e;
                e2_sum += e * e;
                samples += 1;
            }
        }

        let mean = e_sum / samples as f64;
        VmcStats {
            energy: mean,
            energy_var: (e2_sum / samples as f64 - mean * mean).max(0.0),
            acceptance: accepted as f64 / attempts as f64,
            steps: steps as u64,
        }
    }
}

/// Minimal inline standard-normal sampler so the hot loop does not depend
/// on `rand_distr` (Box–Muller on demand).
mod rand_distr_shim {
    use rand::Rng;

    pub struct StandardNormal;

    impl rand::distributions::Distribution<f64> for StandardNormal {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // Box–Muller; one draw per call keeps the sampler stateless.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn energy_of(alpha: f64, drift: bool) -> VmcStats {
        let mut s = VmcSampler::new(Trial::new(alpha), 256, 0.3, drift, 1234);
        s.run_block(100); // equilibrate
        s.run_block(400)
    }

    #[test]
    fn exact_alpha_gives_exact_energy_zero_variance() {
        for drift in [false, true] {
            let stats = energy_of(1.0, drift);
            assert!(
                (stats.energy - Trial::EXACT_ENERGY).abs() < 1e-9,
                "drift={drift}: {}",
                stats.energy
            );
            assert!(stats.energy_var < 1e-12);
        }
    }

    #[test]
    fn variational_principle_holds_off_optimum() {
        for alpha in [0.7, 1.4] {
            for drift in [false, true] {
                let stats = energy_of(alpha, drift);
                assert!(
                    stats.energy > Trial::EXACT_ENERGY - 0.02,
                    "alpha={alpha} drift={drift}: {}",
                    stats.energy
                );
                // And measurably above for these alphas (E(α) = 3/4·(α + 1/α)).
                let expect = 0.75 * (alpha + 1.0 / alpha);
                assert!(
                    (stats.energy - expect).abs() < 0.1,
                    "alpha={alpha} drift={drift}: {} vs {expect}",
                    stats.energy
                );
            }
        }
    }

    #[test]
    fn acceptance_reasonable_and_drift_differs() {
        let a = energy_of(1.0, false).acceptance;
        let b = energy_of(1.0, true).acceptance;
        assert!(a > 0.3 && a < 1.0, "no-drift acceptance {a}");
        assert!(
            b > a,
            "drifted proposals should be accepted more: {b} vs {a}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut s1 = VmcSampler::new(Trial::new(0.9), 64, 0.3, true, 7);
        let mut s2 = VmcSampler::new(Trial::new(0.9), 64, 0.3, true, 7);
        let a = s1.run_block(50);
        let b = s2.run_block(50);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.acceptance, b.acceptance);
    }
}

/// Variational optimization of the trial parameter: golden-section search
/// over `⟨E_L⟩_α` estimated by short VMC runs. For the harmonic
/// oscillator the analytic curve is `E(α) = ¾(α + 1/α)`, minimized at
/// `α = 1` — which the search must find from VMC estimates alone.
pub fn optimize_alpha(lo: f64, hi: f64, walkers: usize, steps: usize, seed: u64) -> f64 {
    assert!(lo > 0.0 && hi > lo);
    let energy = |alpha: f64| {
        let mut s = VmcSampler::new(crate::model::Trial::new(alpha), walkers, 0.3, true, seed);
        s.run_block(steps / 4); // equilibrate
        s.run_block(steps).energy
    };
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let (mut a, mut b) = (lo, hi);
    let mut c = b - phi * (b - a);
    let mut d = a + phi * (b - a);
    let (mut fc, mut fd) = (energy(c), energy(d));
    for _ in 0..24 {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - phi * (b - a);
            fc = energy(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + phi * (b - a);
            fd = energy(d);
        }
    }
    (a + b) / 2.0
}

#[cfg(test)]
mod optimize_tests {
    use super::*;

    #[test]
    fn golden_section_finds_the_exact_alpha() {
        let best = optimize_alpha(0.4, 2.2, 512, 400, 2024);
        assert!(
            (best - 1.0).abs() < 0.05,
            "variational optimum should be alpha = 1, got {best}"
        );
    }

    #[test]
    fn energy_curve_matches_the_analytic_form() {
        // E(α) = 0.75 (α + 1/α) for the Gaussian trial on the 3-D SHO.
        for alpha in [0.6, 1.0, 1.6] {
            let mut s = VmcSampler::new(crate::model::Trial::new(alpha), 512, 0.3, true, 7);
            s.run_block(150);
            let e = s.run_block(600).energy;
            let expect = 0.75 * (alpha + 1.0 / alpha);
            assert!((e - expect).abs() < 0.05, "alpha {alpha}: {e} vs {expect}");
        }
    }
}
