//! The physical model: 3-D isotropic harmonic oscillator (`ℏ = m = ω = 1`)
//! with a Gaussian trial wavefunction.
//!
//! `ψ_α(r) = exp(−α r² / 2)` gives
//!
//! * local energy `E_L(r) = 3α/2 + r²(1 − α²)/2` — constant `3/2` at the
//!   exact `α = 1`;
//! * drift velocity `F(r) = ∇ln ψ · … = −α·r` (quantum force `/2`).
//!
//! The variational principle guarantees `⟨E_L⟩_α ≥ 3/2`, with equality at
//! `α = 1` — the property the tests lean on.

/// A walker position.
pub type R3 = [f64; 3];

/// The trial wavefunction `ψ_α`.
#[derive(Clone, Copy, Debug)]
pub struct Trial {
    pub alpha: f64,
}

impl Trial {
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0);
        Trial { alpha }
    }

    /// `r²`.
    pub fn r2(r: &R3) -> f64 {
        r[0] * r[0] + r[1] * r[1] + r[2] * r[2]
    }

    /// `ln |ψ(r)|²  = −α r²`.
    pub fn log_psi2(&self, r: &R3) -> f64 {
        -self.alpha * Self::r2(r)
    }

    /// Local energy `E_L(r) = 3α/2 + r²(1 − α²)/2`.
    pub fn local_energy(&self, r: &R3) -> f64 {
        1.5 * self.alpha + Self::r2(r) * (1.0 - self.alpha * self.alpha) / 2.0
    }

    /// Drift (quantum force over 2): `∇ψ/ψ = −α·r`.
    pub fn drift(&self, r: &R3) -> R3 {
        [-self.alpha * r[0], -self.alpha * r[1], -self.alpha * r[2]]
    }

    /// Exact ground-state energy of the system.
    pub const EXACT_ENERGY: f64 = 1.5;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_energy_constant_at_exact_alpha() {
        let t = Trial::new(1.0);
        for r in [[0.0, 0.0, 0.0], [1.0, -2.0, 0.5], [3.0, 3.0, 3.0]] {
            assert!((t.local_energy(&r) - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn local_energy_varies_away_from_exact_alpha() {
        let t = Trial::new(0.8);
        let a = t.local_energy(&[0.0, 0.0, 0.0]);
        let b = t.local_energy(&[2.0, 0.0, 0.0]);
        assert!((a - b).abs() > 0.1);
    }

    #[test]
    fn drift_points_toward_origin() {
        let t = Trial::new(1.0);
        let f = t.drift(&[2.0, -1.0, 0.0]);
        assert_eq!(f, [-2.0, 1.0, 0.0]);
    }

    #[test]
    fn log_psi2_decreases_with_radius() {
        let t = Trial::new(1.2);
        assert!(t.log_psi2(&[0.0; 3]) > t.log_psi2(&[1.0, 1.0, 1.0]));
    }
}
