//! Diffusion Monte Carlo with drift, branching and population control.
//!
//! Walkers drift-diffuse with the trial wavefunction's quantum force and
//! carry branching weights `exp(−τ·(½(E_L(r) + E_L(r')) − E_T))`;
//! stochastic rounding turns weights into copies/deletions, and the trial
//! energy `E_T` is adjusted each block to hold the population near its
//! target. With importance sampling the mixed estimator converges to the
//! exact ground-state energy even for an imperfect trial wavefunction —
//! the property the tests verify.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::{Trial, R3};

/// DMC run parameters.
#[derive(Clone, Copy, Debug)]
pub struct DmcParams {
    pub timestep: f64,
    pub target_population: usize,
    /// Population-control feedback gain.
    pub feedback: f64,
}

impl Default for DmcParams {
    fn default() -> Self {
        DmcParams {
            timestep: 0.01,
            target_population: 512,
            feedback: 1.0,
        }
    }
}

/// Statistics of one DMC block.
#[derive(Clone, Copy, Debug)]
pub struct DmcStats {
    /// Weighted mixed-estimator energy of the block.
    pub energy: f64,
    /// Trial energy at block end.
    pub e_trial: f64,
    /// Population at block end.
    pub population: usize,
}

/// The DMC walker ensemble.
pub struct DmcSampler {
    pub trial: Trial,
    pub params: DmcParams,
    walkers: Vec<R3>,
    e_trial: f64,
    rng: StdRng,
}

impl DmcSampler {
    /// Start from an equilibrated VMC ensemble (or any positions).
    pub fn new(trial: Trial, walkers: Vec<R3>, params: DmcParams, seed: u64) -> Self {
        assert!(!walkers.is_empty());
        let e0 = walkers.iter().map(|r| trial.local_energy(r)).sum::<f64>() / walkers.len() as f64;
        DmcSampler {
            trial,
            params,
            walkers,
            e_trial: e0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn population(&self) -> usize {
        self.walkers.len()
    }

    pub fn e_trial(&self) -> f64 {
        self.e_trial
    }

    fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Advance `steps` DMC generations; returns block statistics.
    pub fn run_block(&mut self, steps: usize) -> DmcStats {
        let tau = self.params.timestep;
        let sqrt_tau = tau.sqrt();
        let mut e_weighted = 0.0;
        let mut w_total = 0.0;

        for _ in 0..steps {
            let mut next: Vec<R3> = Vec::with_capacity(self.walkers.len() + 16);
            let mut e_gen = 0.0;
            let mut w_gen = 0.0;
            for i in 0..self.walkers.len() {
                let r = self.walkers[i];
                let e_old = self.trial.local_energy(&r);
                let f = self.trial.drift(&r);
                let rp = [
                    r[0] + f[0] * tau + self.normal() * sqrt_tau,
                    r[1] + f[1] * tau + self.normal() * sqrt_tau,
                    r[2] + f[2] * tau + self.normal() * sqrt_tau,
                ];
                let e_new = self.trial.local_energy(&rp);
                let weight = (-tau * (0.5 * (e_old + e_new) - self.e_trial)).exp();
                e_gen += weight * e_new;
                w_gen += weight;
                // Stochastic branching: floor(w + u) copies.
                let copies = (weight + self.rng.gen::<f64>()).floor() as usize;
                for _ in 0..copies.min(4) {
                    next.push(rp);
                }
            }
            if next.is_empty() {
                // Ensemble died (pathological parameters): reseed one walker.
                next.push([0.0; 3]);
            }
            e_weighted += e_gen;
            w_total += w_gen;
            self.walkers = next;
            // Population control: pull E_T toward holding the target.
            let ratio = self.walkers.len() as f64 / self.params.target_population as f64;
            let block_e = e_gen / w_gen.max(1e-300);
            self.e_trial = block_e - self.params.feedback / tau * ratio.ln() * tau;
        }

        DmcStats {
            energy: e_weighted / w_total.max(1e-300),
            e_trial: self.e_trial,
            population: self.walkers.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vmc::VmcSampler;

    fn equilibrated_walkers(alpha: f64, n: usize) -> Vec<R3> {
        let mut vmc = VmcSampler::new(Trial::new(alpha), n, 0.3, true, 99);
        vmc.run_block(200);
        vmc.walkers.clone()
    }

    #[test]
    fn dmc_recovers_exact_energy_from_imperfect_trial() {
        // alpha = 0.8: VMC energy would be 0.75*(0.8 + 1.25) = 1.5375;
        // DMC must pull the estimate down toward 1.5.
        let trial = Trial::new(0.8);
        let walkers = equilibrated_walkers(0.8, 512);
        let mut dmc = DmcSampler::new(trial, walkers, DmcParams::default(), 7);
        dmc.run_block(300); // equilibrate
        let mut e = 0.0;
        let blocks = 10;
        for _ in 0..blocks {
            e += dmc.run_block(100).energy;
        }
        e /= blocks as f64;
        assert!(
            (e - Trial::EXACT_ENERGY).abs() < 0.02,
            "DMC energy {e} should be near 1.5"
        );
    }

    #[test]
    fn population_stays_near_target() {
        let trial = Trial::new(0.9);
        let walkers = equilibrated_walkers(0.9, 512);
        let mut dmc = DmcSampler::new(trial, walkers, DmcParams::default(), 11);
        dmc.run_block(200);
        let stats = dmc.run_block(200);
        let ratio = stats.population as f64 / 512.0;
        assert!(
            (0.5..2.0).contains(&ratio),
            "population drifted: {}",
            stats.population
        );
    }

    #[test]
    fn exact_trial_has_flat_weights() {
        // With alpha = 1 the local energy is constant: weights stay ~1 and
        // the energy is exact from the first block.
        let trial = Trial::new(1.0);
        let walkers = equilibrated_walkers(1.0, 256);
        let mut dmc = DmcSampler::new(trial, walkers, DmcParams::default(), 13);
        let stats = dmc.run_block(50);
        assert!((stats.energy - 1.5).abs() < 1e-9, "{}", stats.energy);
    }

    #[test]
    fn deterministic_given_seed() {
        let trial = Trial::new(0.85);
        let w = equilibrated_walkers(0.85, 128);
        let mut a = DmcSampler::new(trial, w.clone(), DmcParams::default(), 21);
        let mut b = DmcSampler::new(trial, w, DmcParams::default(), 21);
        assert_eq!(a.run_block(50).energy, b.run_block(50).energy);
    }
}
