//! # qmc-mini — a QMCPACK-style Quantum Monte Carlo mini-app
//!
//! The paper's second whole-application case study (Fig. 12) profiles
//! QMCPACK's example problem: "the Variational Monte Carlo (VMC) method
//! with no drift, then the VMC method with drift, and finally, a Diffusion
//! Monte Carlo (DMC) method", showing that the three stages are
//! distinguishable purely from simultaneously monitored hardware signals.
//!
//! This crate implements a real (small) QMC code with those three phases —
//! correct enough to be validated physically — and instruments it on the
//! simulated machine:
//!
//! * [`model`] — the physical system: a 3-D isotropic harmonic oscillator
//!   with the Gaussian trial wavefunction `ψ_α(r) = exp(−α r²/2)`; at
//!   `α = 1` the trial function is exact and the energy is `3/2`.
//! * [`vmc`] — Metropolis VMC with symmetric moves (`no drift`) and
//!   Metropolis-Hastings VMC with drifted Langevin moves.
//! * [`dmc`] — drift-diffusion-branching DMC with population control.
//! * [`app`] — the instrumented three-phase application driving Fig. 12.

pub mod app;
pub mod dmc;
pub mod model;
pub mod vmc;

pub use app::{QmcApp, QMC_PHASES};
pub use dmc::{DmcParams, DmcSampler};
pub use model::Trial;
pub use vmc::{optimize_alpha, VmcSampler, VmcStats};
