//! The ring → store spill bridge.
//!
//! [`obs::SeriesStore`] keeps a bounded live ring per series; before
//! this crate existed, a full ring silently discarded its oldest point.
//! [`StoreSpill`] implements [`obs::series::SpillSink`] over a shared
//! [`Store`], so evicted points land in compressed history instead and
//! [`obs::SeriesStore::window`] serves old windows back out of the
//! store transparently — the live [`obs::Monitor`] reads recent points
//! from its ring and anything older from here without knowing the
//! difference.

use std::sync::Arc;

use obs::metrics::ExportSemantics;
use obs::series::{Sample, SpillSink};

use crate::index::{Selector, SeriesKey};
use crate::Store;

/// A [`SpillSink`] that lands evicted ring points in a [`Store`].
#[derive(Clone, Debug)]
pub struct StoreSpill {
    store: Arc<Store>,
    /// Labels attached to every spilled series (e.g. `host`), so fleet
    /// aggregation can tell rings apart.
    labels: Vec<(String, String)>,
}

impl StoreSpill {
    /// Spill into `store` with no extra labels.
    pub fn new(store: Arc<Store>) -> Self {
        StoreSpill {
            store,
            labels: Vec::new(),
        }
    }

    /// Attach a label to every spilled series.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    fn key(&self, name: &str) -> SeriesKey {
        let mut key = SeriesKey::new(name);
        for (k, v) in &self.labels {
            key = key.with_label(k.clone(), v.clone());
        }
        key
    }
}

impl SpillSink for StoreSpill {
    fn spill(&self, name: &str, semantics: ExportSemantics, sample: Sample) {
        // Eviction order is ring order, so out-of-order here can only
        // mean the same point spilled twice (e.g. a cloned store) —
        // dropping it keeps history exactly-once.
        let _ = self
            .store
            .ingest(&self.key(name), semantics, sample.t_ns, sample.value);
    }

    fn read(&self, name: &str, t_from_ns: u64, t_to_ns: u64) -> Vec<Sample> {
        let mut sel = Selector::metric(name);
        for (k, v) in &self.labels {
            sel = sel.with_label(k.clone(), v.clone());
        }
        match self.store.query(&sel, t_from_ns, t_to_ns) {
            Ok(mut data) if !data.is_empty() => std::mem::take(&mut data[0].samples),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreConfig;
    use obs::metrics::Registry;
    use obs::SeriesStore;

    #[test]
    fn evicted_points_spill_and_read_back_transparently() {
        let store = Arc::new(Store::new(StoreConfig {
            chunk_samples: 4,
            segment_bytes: 64,
            retention_ns: None,
        }));
        let mut ring =
            SeriesStore::new(3).with_spill(Arc::new(StoreSpill::new(Arc::clone(&store))));
        let reg = Registry::new();
        let c = reg.counter("spill.test.count");
        for i in 1..=10u64 {
            c.add(2);
            ring.observe(i * 1_000, &reg.export());
        }
        // Ring keeps the newest 3; the 7 older points are in the store.
        assert_eq!(ring.get("spill.test.count").map(|s| s.len()), Some(3));
        assert_eq!(ring.evicted(), 0, "spilled points are not lost points");
        assert_eq!(store.sample_count(), 7);
        // window() merges store history and ring tail transparently.
        let full = ring.window("spill.test.count", 0, u64::MAX);
        assert_eq!(full.len(), 10);
        let ts: Vec<u64> = full.iter().map(|s| s.t_ns).collect();
        assert!(ts.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(full[0].value, 2);
        assert_eq!(full[9].value, 20);
        // An old-only window comes purely from the store.
        let old = ring.window("spill.test.count", 1_000, 5_000);
        assert_eq!(old.len(), 5);
    }

    #[test]
    fn labels_isolate_hosts() {
        let store = Arc::new(Store::default());
        let a = StoreSpill::new(Arc::clone(&store)).with_label("host", "a");
        let b = StoreSpill::new(Arc::clone(&store)).with_label("host", "b");
        let s = Sample {
            t_ns: 1_000,
            value: 5,
        };
        a.spill("m", ExportSemantics::Counter, s);
        b.spill(
            "m",
            ExportSemantics::Counter,
            Sample {
                t_ns: 1_000,
                value: 9,
            },
        );
        assert_eq!(a.read("m", 0, u64::MAX)[0].value, 5);
        assert_eq!(b.read("m", 0, u64::MAX)[0].value, 9);
    }
}
