//! Segment files: the on-"disk" unit of the store.
//!
//! A segment is an immutable file holding many chunks from many series,
//! written once when the ingest staging area fills (or a compaction
//! rewrites history) and read concurrently ever after:
//!
//! ```text
//! segment  = magic("PSEG") u8(version) varint(entry_count) *entry
//! entry    = key semantics(u8) varint(chunk_len) chunk
//! key      = varint(metric_len) metric varint(label_count)
//!            *(varint(klen) k varint(vlen) v)
//! ```
//!
//! Every multi-byte integer is a LEB128 varint (shared with the chunk
//! codec) so the format has no endianness and truncation at any byte
//! offset decodes to a typed [`StoreError`], never a panic. The decoded
//! in-memory form ([`Segment`]) carries each entry's `[min_t, max_t]`
//! bounds — re-derived from the chunk payloads at open, so a corrupt
//! file is rejected at the door rather than at query time.

use std::sync::Arc;

use obs::metrics::ExportSemantics;

use crate::chunk::{get_varint, put_varint, Chunk};
use crate::index::SeriesKey;
use crate::StoreError;

const MAGIC: &[u8; 4] = b"PSEG";
const VERSION: u8 = 1;

/// One chunk of one series inside a segment.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Identity of the series this chunk belongs to.
    pub key: SeriesKey,
    /// Counter or instant semantics, preserved for derivations.
    pub semantics: ExportSemantics,
    /// The compressed samples.
    pub chunk: Chunk,
}

/// A decoded immutable segment. The raw file bytes are kept alive by an
/// `Arc` handle (see [`crate::memfs::MemFs`]), so a segment outlives the
/// removal of its file for as long as any reader holds it.
#[derive(Clone, Debug)]
pub struct Segment {
    /// File name inside the store's [`crate::memfs::MemFs`].
    pub file: String,
    /// Encoded size in bytes.
    pub bytes: usize,
    /// Entries in write order (series are contiguous within a segment).
    pub entries: Vec<Entry>,
}

impl Segment {
    /// Total samples across all entries.
    pub fn samples(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| u64::from(e.chunk.count()))
            .sum()
    }

    /// Newest timestamp in the segment (0 when empty).
    pub fn max_t(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.chunk.max_t())
            .max()
            .unwrap_or(0)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String, StoreError> {
    let len = get_varint(bytes, pos)?;
    let len = usize::try_from(len).map_err(|_| StoreError::Corrupt("string length over usize"))?;
    let end = pos
        .checked_add(len)
        .ok_or(StoreError::Corrupt("string length overflows"))?;
    if end > bytes.len() {
        return Err(StoreError::Corrupt("string runs past end of segment"));
    }
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|_| StoreError::Corrupt("string is not UTF-8"))?;
    *pos = end;
    Ok(s.to_owned())
}

fn semantics_byte(s: ExportSemantics) -> u8 {
    match s {
        ExportSemantics::Counter => 0,
        ExportSemantics::Instant => 1,
    }
}

fn semantics_from(b: u8) -> Result<ExportSemantics, StoreError> {
    match b {
        0 => Ok(ExportSemantics::Counter),
        1 => Ok(ExportSemantics::Instant),
        _ => Err(StoreError::Corrupt("unknown semantics byte")),
    }
}

/// Encode `entries` into segment file bytes.
pub fn encode(entries: &[Entry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * entries.len() + 16);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    put_varint(&mut out, entries.len() as u64);
    for e in entries {
        put_str(&mut out, e.key.metric());
        put_varint(&mut out, e.key.labels().len() as u64);
        for (k, v) in e.key.labels() {
            put_str(&mut out, k);
            put_str(&mut out, v);
        }
        out.push(semantics_byte(e.semantics));
        put_varint(&mut out, e.chunk.bytes().len() as u64);
        out.extend_from_slice(e.chunk.bytes());
    }
    out
}

/// Decode a segment file. Every malformation — bad magic, unknown
/// version, truncation, corrupt chunk payloads — is a typed error.
pub fn decode(file: &str, bytes: &Arc<[u8]>) -> Result<Segment, StoreError> {
    if bytes.len() < MAGIC.len() + 1 || &bytes[..4] != MAGIC {
        return Err(StoreError::Corrupt("segment magic mismatch"));
    }
    if bytes[4] != VERSION {
        return Err(StoreError::Corrupt("unsupported segment version"));
    }
    let mut pos = 5usize;
    let count = get_varint(bytes, &mut pos)?;
    if count > bytes.len() as u64 {
        return Err(StoreError::Corrupt("entry count exceeds file size"));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let metric = get_str(bytes, &mut pos)?;
        let nlabels = get_varint(bytes, &mut pos)?;
        if nlabels > bytes.len() as u64 {
            return Err(StoreError::Corrupt("label count exceeds file size"));
        }
        let mut key = SeriesKey::new(metric);
        for _ in 0..nlabels {
            let k = get_str(bytes, &mut pos)?;
            let v = get_str(bytes, &mut pos)?;
            key = key.with_label(k, v);
        }
        let Some(&sem) = bytes.get(pos) else {
            return Err(StoreError::Corrupt("segment ends inside an entry"));
        };
        pos += 1;
        let semantics = semantics_from(sem)?;
        let clen = get_varint(bytes, &mut pos)?;
        let clen =
            usize::try_from(clen).map_err(|_| StoreError::Corrupt("chunk length over usize"))?;
        let end = pos
            .checked_add(clen)
            .ok_or(StoreError::Corrupt("chunk length overflows"))?;
        if end > bytes.len() {
            return Err(StoreError::Corrupt("chunk runs past end of segment"));
        }
        let chunk = Chunk::from_bytes(bytes[pos..end].to_vec())?;
        pos = end;
        entries.push(Entry {
            key,
            semantics,
            chunk,
        });
    }
    if pos != bytes.len() {
        return Err(StoreError::Corrupt("trailing bytes after last entry"));
    }
    Ok(Segment {
        file: file.to_owned(),
        bytes: bytes.len(),
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::series::Sample;

    fn entry(metric: &str, host: &str, base: u64) -> Entry {
        let samples: Vec<Sample> = (0..100u64)
            .map(|i| Sample {
                t_ns: base + i * 1_000,
                value: i * 3,
            })
            .collect();
        Entry {
            key: SeriesKey::new(metric).with_label("host", host),
            semantics: ExportSemantics::Counter,
            chunk: crate::chunk::encode(&samples).unwrap(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let entries = vec![
            entry("mba.ch0.bytes", "h0", 1_000),
            entry("mba.ch1.bytes", "h1", 5_000),
        ];
        let bytes = encode(&entries);
        let arc: Arc<[u8]> = bytes.into();
        let seg = decode("seg-0", &arc).unwrap();
        assert_eq!(seg.entries.len(), 2);
        assert_eq!(seg.samples(), 200);
        for (a, b) in seg.entries.iter().zip(&entries) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.semantics, b.semantics);
            assert_eq!(a.chunk, b.chunk);
        }
        assert_eq!(seg.max_t(), 5_000 + 99 * 1_000);
    }

    #[test]
    fn truncation_at_every_offset_is_rejected() {
        let bytes = encode(&[entry("m", "h", 10)]);
        for n in 0..bytes.len() {
            let arc: Arc<[u8]> = bytes[..n].to_vec().into();
            assert!(decode("t", &arc).is_err(), "accepted truncation at {n}");
        }
        let arc: Arc<[u8]> = bytes.clone().into();
        assert!(decode("ok", &arc).is_ok());
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = encode(&[entry("m", "h", 10)]);
        bytes[0] = b'X';
        let arc: Arc<[u8]> = bytes.clone().into();
        assert!(decode("t", &arc).is_err());
        bytes[0] = b'P';
        bytes[4] = 99;
        let arc: Arc<[u8]> = bytes.into();
        assert!(decode("t", &arc).is_err());
    }
}
