//! Query results and windowed derivations over stored series.
//!
//! [`SeriesData`] is what a [`Store::query`](crate::Store::query)
//! returns: one decompressed, strictly time-ordered sample run per
//! matched series. Windowed derivations do not reimplement any math —
//! [`SeriesData::series`] rebuilds an [`obs::Series`] and the
//! rate/delta/ewma functions of [`obs::derive`] run on it unchanged, so
//! a rate computed over archived history and a rate computed by the
//! live [`obs::Monitor`] can never disagree on semantics (counter
//! deltas saturate at restarts in both, by construction).

use obs::metrics::ExportSemantics;
use obs::series::{Sample, Series};

use crate::index::SeriesKey;

/// One matched series with its samples inside the query window.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesData {
    /// The series identity.
    pub key: SeriesKey,
    /// Counter or instant semantics (as recorded at first ingest).
    pub semantics: ExportSemantics,
    /// Samples inside the window, oldest first, strictly increasing in
    /// time.
    pub samples: Vec<Sample>,
}

/// A windowed derivation to evaluate over each matched series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Derivation {
    /// Window rate in value/second ([`obs::derive::rate`]).
    Rate,
    /// Window delta ([`obs::derive::delta`]; saturating for counters).
    Delta,
    /// Time-aware EWMA with decay `tau_ns` ([`obs::derive::ewma`]).
    Ewma {
        /// Decay constant in nanoseconds.
        tau_ns: u64,
    },
}

impl SeriesData {
    /// Rebuild an [`obs::Series`] over the window so every
    /// [`obs::derive`] function applies to archived history exactly as
    /// it does to the live ring.
    pub fn series(&self) -> Series {
        Series::from_samples(self.key.to_string(), self.semantics, &self.samples)
    }

    /// Evaluate one derivation over the window (`None` when the window
    /// is too small, matching the live-monitor behaviour).
    pub fn derive(&self, d: Derivation) -> Option<f64> {
        let series = self.series();
        match d {
            Derivation::Rate => obs::derive::rate(&series),
            Derivation::Delta => obs::derive::delta(&series).map(|d| d as f64),
            Derivation::Ewma { tau_ns } => obs::derive::ewma(&series, tau_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(semantics: ExportSemantics, points: &[(u64, u64)]) -> SeriesData {
        SeriesData {
            key: SeriesKey::new("q.test"),
            semantics,
            samples: points
                .iter()
                .map(|(t_ns, value)| Sample {
                    t_ns: *t_ns,
                    value: *value,
                })
                .collect(),
        }
    }

    #[test]
    fn derivations_match_obs_derive() {
        let d = data(
            ExportSemantics::Counter,
            &[(1_000_000_000, 100), (3_000_000_000, 700)],
        );
        assert_eq!(d.derive(Derivation::Delta), Some(600.0));
        let r = d.derive(Derivation::Rate).unwrap();
        assert!((r - 300.0).abs() < 1e-9, "{r}");
        assert!(d.derive(Derivation::Ewma { tau_ns: 1 }).is_some());
    }

    #[test]
    fn counter_reset_saturates_like_the_live_monitor() {
        let d = data(ExportSemantics::Counter, &[(1_000, 500), (2_000, 20)]);
        assert_eq!(d.derive(Derivation::Delta), Some(0.0));
        assert_eq!(d.derive(Derivation::Rate), Some(0.0));
    }

    #[test]
    fn short_windows_yield_none() {
        let d = data(ExportSemantics::Counter, &[(1_000, 5)]);
        assert_eq!(d.derive(Derivation::Rate), None);
        assert_eq!(d.derive(Derivation::Delta), None);
    }
}
