//! The storage engine: ingest heads → sealed chunks → segment files,
//! with retention/compaction that never blocks readers.
//!
//! Write path: every series has a *head* (an uncompressed in-order
//! sample buffer). When a head reaches `chunk_samples` it is sealed
//! into an immutable compressed [`Chunk`](crate::chunk::Chunk) and
//! staged; when the staging area reaches `segment_bytes` the staged
//! entries are encoded into one segment file on the in-memory FS and
//! the segment list is republished. Out-of-order and zero-dt samples
//! are rejected at the door (`store.ingest.out_of_order`), so every
//! structure downstream is strictly time-ordered by construction.
//!
//! Read path: queries clone the current `Arc` segment list (one short
//! lock) and copy the matching head tails (another short lock), then
//! decompress outside any lock. Compaction builds replacement segments
//! off to the side and swaps the list in one lock acquisition —
//! readers holding the old list keep reading the old immutable
//! segments, whose bytes outlive their files (see
//! [`MemFs`](crate::memfs::MemFs)).
//!
//! Retention is chunk-granular: a chunk is dropped only when its whole
//! `[min_t, max_t]` range is older than the cutoff, so a retention pass
//! never truncates a chunk mid-stream and replayed history always
//! starts on a chunk boundary.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use obs::metrics::ExportSemantics;
use obs::series::Sample;

use crate::chunk::{self, RAW_SAMPLE_BYTES};
use crate::index::{Selector, SeriesKey};
use crate::memfs::MemFs;
use crate::query::SeriesData;
use crate::segment::{self, Entry, Segment};
use crate::StoreError;

/// Copied-out live head tail: series identity plus its uncompressed,
/// in-order sample buffer.
type HeadTail = (SeriesKey, ExportSemantics, Vec<Sample>);

/// Engine tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Samples per sealed chunk (heads seal at this size).
    pub chunk_samples: usize,
    /// Staged compressed bytes that trigger a segment flush.
    pub segment_bytes: usize,
    /// Drop chunks wholly older than `now - retention_ns` on
    /// [`Store::compact`]; `None` retains forever.
    pub retention_ns: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            chunk_samples: 240,
            segment_bytes: 64 * 1024,
            retention_ns: None,
        }
    }
}

/// Per-series ingest head: the uncompressed tail of the series.
#[derive(Debug)]
struct Head {
    semantics: ExportSemantics,
    samples: Vec<Sample>,
    /// Newest timestamp ever ingested for this series — survives
    /// seals, so ordering is enforced across chunk boundaries too.
    last_t: Option<u64>,
}

/// Everything the write path mutates, under one lock.
#[derive(Debug, Default)]
struct Ingest {
    heads: BTreeMap<SeriesKey, Head>,
    staging: Vec<Entry>,
    staging_bytes: usize,
    next_seq: u64,
    out_of_order: u64,
}

impl Default for Head {
    fn default() -> Self {
        Head {
            semantics: ExportSemantics::Instant,
            samples: Vec::new(),
            last_t: None,
        }
    }
}

/// What one [`Store::compact`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Chunks whose whole time range fell past retention.
    pub chunks_dropped: u64,
    /// Samples inside those dropped chunks.
    pub samples_dropped: u64,
    /// Chunks rewritten into the replacement segments.
    pub chunks_rewritten: u64,
    /// Segment count before → after.
    pub segments_before: usize,
    /// Segment count after the pass.
    pub segments_after: usize,
}

/// Cumulative ingest-side totals (see also the `store.*` obs metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Samples accepted.
    pub samples: u64,
    /// Samples rejected for non-advancing timestamps.
    pub out_of_order: u64,
    /// Chunks sealed.
    pub chunks_sealed: u64,
    /// Segment files written.
    pub segments_flushed: u64,
    /// Live compressed bytes on the in-memory FS.
    pub compressed_bytes: u64,
}

/// The compressed time-series store.
pub struct Store {
    cfg: StoreConfig,
    fs: MemFs,
    // lock-rank: store.2 — staging buffers; flushing seals chunks into
    // files (store.4) and publishes the list (store.3) while held.
    ingest: Mutex<Ingest>,
    /// The published immutable segment list. Readers clone the `Arc`
    /// and drop the lock; writers replace the whole list.
    // lock-rank: store.3 — held only to clone or swap the Arc list.
    sealed: Mutex<Arc<Vec<Arc<Segment>>>>,
    /// Serialises compaction passes (ingest and queries never wait on
    /// this).
    // lock-rank: store.1 — outermost: a compaction pass flushes ingest
    // (store.2) and republishes (store.3, store.4) while held.
    compacting: Mutex<()>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("cfg", &self.cfg)
            .field("segments", &self.segments().len())
            .finish()
    }
}

impl Default for Store {
    fn default() -> Self {
        Self::new(StoreConfig::default())
    }
}

impl Store {
    /// An empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        Store {
            cfg: StoreConfig {
                chunk_samples: cfg.chunk_samples.max(2),
                segment_bytes: cfg.segment_bytes.max(64),
                retention_ns: cfg.retention_ns,
            },
            fs: MemFs::new(),
            ingest: Mutex::new(Ingest::default()),
            sealed: Mutex::new(Arc::new(Vec::new())),
            compacting: Mutex::new(()),
        }
    }

    /// The engine configuration in effect.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// The underlying in-memory filesystem (segment files).
    pub fn fs(&self) -> &MemFs {
        &self.fs
    }

    /// Append one sample. The first sample of a series fixes its
    /// semantics; a timestamp that does not advance past the series'
    /// newest is rejected as [`StoreError::OutOfOrder`].
    pub fn ingest(
        &self,
        key: &SeriesKey,
        semantics: ExportSemantics,
        t_ns: u64,
        value: u64,
    ) -> Result<(), StoreError> {
        let mut ingest = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        if !ingest.heads.contains_key(key) {
            ingest.heads.insert(
                key.clone(),
                Head {
                    semantics,
                    samples: Vec::new(),
                    last_t: None,
                },
            );
        }
        let Some(head) = ingest.heads.get_mut(key) else {
            return Err(StoreError::Corrupt("freshly inserted head vanished"));
        };
        if let Some(last) = head.last_t {
            if t_ns <= last {
                ingest.out_of_order += 1;
                obs::counter!("store.ingest.out_of_order").inc();
                return Err(StoreError::OutOfOrder {
                    last_t_ns: last,
                    t_ns,
                });
            }
        }
        head.last_t = Some(t_ns);
        head.samples.push(Sample { t_ns, value });
        obs::counter!("store.ingest.samples").inc();
        if head.samples.len() >= self.cfg.chunk_samples {
            let semantics = head.semantics;
            let chunk = chunk::encode(&head.samples)?;
            head.samples.clear();
            obs::counter!("store.chunk.sealed").inc();
            ingest.staging_bytes += chunk.bytes().len();
            ingest.staging.push(Entry {
                key: key.clone(),
                semantics,
                chunk,
            });
            if ingest.staging_bytes >= self.cfg.segment_bytes {
                self.flush_staging(&mut ingest)?;
            }
        }
        Ok(())
    }

    /// Ingest one sample per scalar of a registry snapshot, under
    /// `prefix` + the scalar's exported name, with `labels` attached to
    /// every series. Scalars whose timestamp does not advance are
    /// skipped (counted by `store.ingest.out_of_order`) — the same
    /// policy as [`obs::SeriesStore`], so live ring and store agree.
    pub fn ingest_snapshot(
        &self,
        prefix: &str,
        labels: &[(&str, &str)],
        snap: &obs::snapshot::Snapshot,
    ) -> Result<(), StoreError> {
        for e in &snap.scalars {
            let mut key = SeriesKey::new(format!("{prefix}{}", e.name));
            for (k, v) in labels {
                key = key.with_label(*k, *v);
            }
            match self.ingest(&key, e.semantics, snap.t_ns, e.value) {
                Ok(()) | Err(StoreError::OutOfOrder { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Seal every non-empty head into a chunk and write all staged
    /// chunks out as a segment, making the whole store content
    /// cold-readable. Idempotent when nothing is pending.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut ingest = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let keys: Vec<SeriesKey> = ingest
            .heads
            .iter()
            .filter(|(_, h)| !h.samples.is_empty())
            .map(|(k, _)| k.clone())
            .collect();
        for key in keys {
            let Some(head) = ingest.heads.get_mut(&key) else {
                continue;
            };
            let semantics = head.semantics;
            let chunk = chunk::encode(&head.samples)?;
            head.samples.clear();
            obs::counter!("store.chunk.sealed").inc();
            ingest.staging_bytes += chunk.bytes().len();
            ingest.staging.push(Entry {
                key,
                semantics,
                chunk,
            });
        }
        if !ingest.staging.is_empty() {
            self.flush_staging(&mut ingest)?;
        }
        Ok(())
    }

    /// Write the staged entries as one segment file and publish it.
    fn flush_staging(&self, ingest: &mut Ingest) -> Result<(), StoreError> {
        let entries = std::mem::take(&mut ingest.staging);
        ingest.staging_bytes = 0;
        if entries.is_empty() {
            return Ok(());
        }
        let name = format!("seg-{:08}.pseg", ingest.next_seq);
        ingest.next_seq += 1;
        let bytes = segment::encode(&entries);
        let len = bytes.len();
        self.fs.create(&name, bytes)?;
        let seg = Arc::new(Segment {
            file: name,
            bytes: len,
            entries,
        });
        let mut sealed = self.sealed.lock().unwrap_or_else(|e| e.into_inner());
        let mut list = Vec::with_capacity(sealed.len() + 1);
        list.extend(sealed.iter().cloned());
        list.push(seg);
        *sealed = Arc::new(list);
        drop(sealed);
        obs::counter!("store.segment.flushed").inc();
        obs::gauge!("store.segment.live").set(self.segments().len() as u64);
        obs::gauge!("store.bytes.compressed").set(self.fs.live_bytes());
        Ok(())
    }

    /// The published segment list (a consistent point-in-time view).
    pub fn segments(&self) -> Arc<Vec<Arc<Segment>>> {
        let sealed = self.sealed.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(&sealed)
    }

    /// Cumulative ingest/storage totals.
    pub fn stats(&self) -> StoreStats {
        let segments = self.segments();
        let ingest = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
        let head_samples: u64 = ingest.heads.values().map(|h| h.samples.len() as u64).sum();
        let sealed_samples: u64 = segments.iter().map(|s| s.samples()).sum();
        let staged: u64 = ingest
            .staging
            .iter()
            .map(|e| u64::from(e.chunk.count()))
            .sum();
        StoreStats {
            samples: head_samples + sealed_samples + staged,
            out_of_order: ingest.out_of_order,
            chunks_sealed: segments.iter().map(|s| s.entries.len() as u64).sum::<u64>()
                + ingest.staging.len() as u64,
            segments_flushed: segments.len() as u64,
            compressed_bytes: self.fs.live_bytes(),
        }
    }

    /// Live samples retained (heads + staged + sealed).
    pub fn sample_count(&self) -> u64 {
        self.stats().samples
    }

    /// Compression ratio achieved by the sealed tier: raw sample bytes
    /// over compressed segment-file bytes (`None` until something has
    /// been flushed).
    pub fn compression_ratio(&self) -> Option<f64> {
        let segments = self.segments();
        let raw: u64 = segments
            .iter()
            .map(|s| s.samples() * RAW_SAMPLE_BYTES)
            .sum();
        let compressed: u64 = segments.iter().map(|s| s.bytes as u64).sum();
        (compressed > 0).then(|| raw as f64 / compressed as f64)
    }

    /// Select series and return their samples inside the inclusive
    /// window `[t_from_ns, t_to_ns]`, oldest first, merging sealed
    /// chunks, staged chunks and live heads. Decompression happens
    /// outside every lock.
    pub fn query(
        &self,
        sel: &Selector,
        t_from_ns: u64,
        t_to_ns: u64,
    ) -> Result<Vec<SeriesData>, StoreError> {
        obs::counter!("store.query.count").inc();
        let started = std::time::Instant::now();
        // Copy matching tails (staged chunks are cheap Arc-less clones
        // of compressed bytes; heads are small by construction). This
        // must happen BEFORE the segment list is cloned: a concurrent
        // flush moves staging into a new segment, so tail-then-list can
        // only double-see samples (deduped below), never miss them.
        let (staged, heads): (Vec<Entry>, Vec<HeadTail>) = {
            let ingest = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
            let staged = ingest
                .staging
                .iter()
                .filter(|e| sel.matches(&e.key) && e.chunk.overlaps(t_from_ns, t_to_ns))
                .cloned()
                .collect();
            let heads = ingest
                .heads
                .iter()
                .filter(|(k, h)| sel.matches(k) && !h.samples.is_empty())
                .map(|(k, h)| (k.clone(), h.semantics, h.samples.clone()))
                .collect();
            (staged, heads)
        };
        let segments = self.segments();

        let mut out: BTreeMap<SeriesKey, SeriesData> = BTreeMap::new();
        let mut push = |key: &SeriesKey, semantics: ExportSemantics, samples: &[Sample]| {
            let data = out.entry(key.clone()).or_insert_with(|| SeriesData {
                key: key.clone(),
                semantics,
                samples: Vec::new(),
            });
            for s in samples {
                if s.t_ns >= t_from_ns && s.t_ns <= t_to_ns {
                    data.samples.push(*s);
                }
            }
        };
        for seg in segments.iter() {
            for e in &seg.entries {
                if sel.matches(&e.key) && e.chunk.overlaps(t_from_ns, t_to_ns) {
                    push(&e.key, e.semantics, &e.chunk.samples()?);
                }
            }
        }
        for e in &staged {
            push(&e.key, e.semantics, &e.chunk.samples()?);
        }
        for (key, semantics, samples) in &heads {
            push(key, *semantics, samples);
        }

        let mut result: Vec<SeriesData> = out.into_values().collect();
        for series in &mut result {
            // Segments are written in time order, so this is already
            // sorted in the common case; a compaction racing the segment
            // walk can still interleave epochs, so restore order when
            // (and only when) needed, then drop duplicate timestamps.
            if series.samples.windows(2).any(|w| w[1].t_ns <= w[0].t_ns) {
                series.samples.sort_by_key(|s| s.t_ns);
                series.samples.dedup_by_key(|s| s.t_ns);
            }
        }
        result.retain(|s| !s.samples.is_empty());
        obs::histogram!("store.query.latency_ns").record(started.elapsed().as_nanos() as u64);
        Ok(result)
    }

    /// Retention + compaction: drop chunks wholly older than
    /// `now_ns - retention_ns`, merge surviving chunks per series, and
    /// rewrite them into fresh segment files. Readers are never
    /// blocked — they keep whatever segment list they already cloned —
    /// and ingest continues concurrently; segments flushed while the
    /// pass runs are preserved verbatim.
    pub fn compact(&self, now_ns: u64) -> Result<CompactStats, StoreError> {
        let _serialize = self.compacting.lock().unwrap_or_else(|e| e.into_inner());
        obs::counter!("store.compact.runs").inc();
        let before = self.segments();
        let cutoff = self
            .cfg
            .retention_ns
            .map(|r| now_ns.saturating_sub(r))
            .unwrap_or(0);

        let mut stats = CompactStats {
            segments_before: before.len(),
            ..CompactStats::default()
        };
        // Gather surviving samples per series, in time order (segments
        // are ordered, chunks within a series too).
        let mut survivors: BTreeMap<SeriesKey, (ExportSemantics, Vec<Sample>)> = BTreeMap::new();
        for seg in before.iter() {
            for e in &seg.entries {
                if e.chunk.max_t() < cutoff {
                    stats.chunks_dropped += 1;
                    stats.samples_dropped += u64::from(e.chunk.count());
                    obs::counter!("store.compact.chunks_dropped").inc();
                    continue;
                }
                let (_, samples) = survivors
                    .entry(e.key.clone())
                    .or_insert_with(|| (e.semantics, Vec::new()));
                samples.extend(e.chunk.samples()?);
            }
        }

        // Re-chunk each series into merged chunks (up to 4 input chunks
        // worth of samples each) and pack them into replacement
        // segments.
        let merged_chunk = self.cfg.chunk_samples * 4;
        let mut new_segments: Vec<Arc<Segment>> = Vec::new();
        let mut pending: Vec<Entry> = Vec::new();
        let mut pending_bytes = 0usize;
        let mut next_seq = {
            let ingest = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
            ingest.next_seq
        };
        let flush_pending = |pending: &mut Vec<Entry>,
                             pending_bytes: &mut usize,
                             segments: &mut Vec<Arc<Segment>>,
                             seq: &mut u64|
         -> Result<(), StoreError> {
            if pending.is_empty() {
                return Ok(());
            }
            let entries = std::mem::take(pending);
            *pending_bytes = 0;
            let name = format!("seg-{:08}c.pseg", *seq);
            *seq += 1;
            let bytes = segment::encode(&entries);
            let len = bytes.len();
            self.fs.create(&name, bytes)?;
            segments.push(Arc::new(Segment {
                file: name,
                bytes: len,
                entries,
            }));
            Ok(())
        };
        for (key, (semantics, samples)) in survivors {
            for slice in samples.chunks(merged_chunk.max(2)) {
                let chunk = chunk::encode(slice)?;
                stats.chunks_rewritten += 1;
                pending_bytes += chunk.bytes().len();
                pending.push(Entry {
                    key: key.clone(),
                    semantics,
                    chunk,
                });
                if pending_bytes >= self.cfg.segment_bytes {
                    flush_pending(
                        &mut pending,
                        &mut pending_bytes,
                        &mut new_segments,
                        &mut next_seq,
                    )?;
                }
            }
        }
        flush_pending(
            &mut pending,
            &mut pending_bytes,
            &mut new_segments,
            &mut next_seq,
        )?;

        // Publish: replace the snapshot's segments with the rewrite,
        // preserving any segment flushed after the snapshot was taken.
        let snapshot_files: std::collections::BTreeSet<&str> =
            before.iter().map(|s| s.file.as_str()).collect();
        {
            // Bump the shared sequence past what compaction consumed so
            // future ingest flushes never collide with rewrite names.
            let mut ingest = self.ingest.lock().unwrap_or_else(|e| e.into_inner());
            ingest.next_seq = ingest.next_seq.max(next_seq);
        }
        let mut sealed = self.sealed.lock().unwrap_or_else(|e| e.into_inner());
        let mut list = new_segments;
        for seg in sealed.iter() {
            if !snapshot_files.contains(seg.file.as_str()) {
                list.push(Arc::clone(seg));
            }
        }
        stats.segments_after = list.len();
        *sealed = Arc::new(list);
        drop(sealed);

        // Unlink the superseded files; concurrent readers holding the
        // old list keep their bytes alive through their handles.
        for seg in before.iter() {
            let _ = self.fs.remove(&seg.file);
        }
        obs::gauge!("store.segment.live").set(stats.segments_after as u64);
        obs::gauge!("store.bytes.compressed").set(self.fs.live_bytes());
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(metric: &str) -> SeriesKey {
        SeriesKey::new(metric)
    }

    fn fill(store: &Store, metric: &str, n: u64) {
        let k = key(metric);
        for i in 0..n {
            store
                .ingest(&k, ExportSemantics::Counter, (i + 1) * 1_000, i * 7)
                .unwrap();
        }
    }

    #[test]
    fn ingest_seal_flush_query() {
        let store = Store::new(StoreConfig {
            chunk_samples: 10,
            segment_bytes: 64,
            retention_ns: None,
        });
        fill(&store, "m.a", 35);
        // 3 sealed chunks (30 samples) and a 5-sample head.
        assert_eq!(store.sample_count(), 35);
        let got = store.query(&Selector::metric("m.a"), 0, u64::MAX).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].samples.len(), 35);
        let ts: Vec<u64> = got[0].samples.iter().map(|s| s.t_ns).collect();
        assert!(ts.windows(2).all(|w| w[1] > w[0]));
        // Window query trims to range.
        let win = store
            .query(&Selector::metric("m.a"), 5_000, 12_000)
            .unwrap();
        assert_eq!(win[0].samples.len(), 8);
    }

    #[test]
    fn out_of_order_is_rejected_across_seals() {
        let store = Store::new(StoreConfig {
            chunk_samples: 2,
            segment_bytes: 1 << 20,
            retention_ns: None,
        });
        let k = key("x");
        store.ingest(&k, ExportSemantics::Counter, 10, 1).unwrap();
        store.ingest(&k, ExportSemantics::Counter, 20, 2).unwrap();
        // Head sealed; same timestamp must still be rejected.
        let err = store.ingest(&k, ExportSemantics::Counter, 20, 3);
        assert!(matches!(err, Err(StoreError::OutOfOrder { .. })));
        store.ingest(&k, ExportSemantics::Counter, 21, 3).unwrap();
    }

    #[test]
    fn flush_makes_partial_heads_cold() {
        let store = Store::default();
        fill(&store, "m.b", 5);
        assert!(store.segments().is_empty());
        store.flush().unwrap();
        assert_eq!(store.segments().len(), 1);
        assert!(store.compression_ratio().is_some());
        let got = store.query(&Selector::metric("m.b"), 0, u64::MAX).unwrap();
        assert_eq!(got[0].samples.len(), 5);
        // Flushing again with nothing pending is a no-op.
        store.flush().unwrap();
        assert_eq!(store.segments().len(), 1);
    }

    #[test]
    fn retention_drops_whole_chunks_only() {
        let store = Store::new(StoreConfig {
            chunk_samples: 10,
            segment_bytes: 64,
            retention_ns: Some(20_000),
        });
        fill(&store, "m.c", 40);
        store.flush().unwrap();
        // now = 41_000; cutoff = 21_000. Chunks cover [1k..10k],
        // [11k..20k], [21k..30k], [31k..40k]: first two drop whole.
        let stats = store.compact(41_000).unwrap();
        assert_eq!(stats.chunks_dropped, 2);
        assert_eq!(stats.samples_dropped, 20);
        let got = store.query(&Selector::metric("m.c"), 0, u64::MAX).unwrap();
        assert_eq!(got[0].samples.len(), 20);
        assert_eq!(got[0].samples[0].t_ns, 21_000);
        // Old files are gone from the FS, new ones exist.
        assert!(store.fs().list().iter().all(|f| f.contains('c')));
    }

    #[test]
    fn compaction_merges_chunks_and_preserves_data() {
        let store = Store::new(StoreConfig {
            chunk_samples: 8,
            segment_bytes: 64,
            retention_ns: None,
        });
        fill(&store, "m.d", 64);
        store.flush().unwrap();
        let before = store.query(&Selector::metric("m.d"), 0, u64::MAX).unwrap();
        let stats = store.compact(u64::MAX).unwrap();
        assert_eq!(stats.chunks_dropped, 0);
        assert!(stats.chunks_rewritten < 8, "{stats:?}");
        let after = store.query(&Selector::metric("m.d"), 0, u64::MAX).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn labels_route_queries() {
        let store = Store::default();
        for host in ["h0", "h1"] {
            let k = SeriesKey::new("fetch.count").with_label("host", host);
            for i in 0..4u64 {
                store
                    .ingest(&k, ExportSemantics::Counter, (i + 1) * 100, i)
                    .unwrap();
            }
        }
        let all = store
            .query(&Selector::metric("fetch.*"), 0, u64::MAX)
            .unwrap();
        assert_eq!(all.len(), 2);
        let one = store
            .query(
                &Selector::metric("fetch.*").with_label("host", "h1"),
                0,
                u64::MAX,
            )
            .unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].key.label("host"), Some("h1"));
    }
}
