//! # store — a compressed time-series storage engine
//!
//! The paper's "complete application profiling" holds counter streams
//! over whole application runs; a fleet of simulated hosts multiplies
//! that into millions of series and days of retention. The live ring
//! ([`obs::SeriesStore`]) and the append-only archive
//! ([`pcp_sim::Archive`]-shaped logs) cannot carry that, so this crate
//! is the storage tier underneath both (DESIGN.md §12):
//!
//! * **Chunks** ([`chunk`]): Gorilla-style compression — delta-of-delta
//!   timestamps and XOR/varint values, byte-aligned and exact over the
//!   full `u64` range (values past 2^53 survive bit-for-bit).
//! * **Segments** ([`segment`]) on an in-memory FS ([`memfs`]):
//!   write-once files of many chunks; readers hold `Arc` handles that
//!   outlive file removal, the offline analogue of reading an mmap'd
//!   segment that compaction already unlinked.
//! * **Index** ([`index`]): series are `metric{label=value,…}` keys;
//!   queries select by metric glob + exact label matchers.
//! * **Engine** ([`engine`]): per-series ingest heads seal into chunks,
//!   chunks flush into segments, retention/compaction rewrites history
//!   without ever blocking concurrent readers or ingest.
//! * **Queries** ([`query`]): windowed samples plus rate/delta/ewma
//!   derivations that *reuse* [`obs::derive`], so archived and live
//!   math cannot diverge.
//! * **Spill** ([`spill`]): an [`obs::series::SpillSink`] adapter — the
//!   live ring evicts into the store and serves old windows back out of
//!   it transparently.
//!
//! The engine reports itself through `store.*` obs metrics (METRICS.md)
//! and is held to the workspace no-panic lint: every fallible path
//! returns a [`StoreError`].

pub mod chunk;
pub mod engine;
pub mod index;
pub mod memfs;
pub mod query;
pub mod segment;
pub mod spill;

pub use engine::{CompactStats, Store, StoreConfig, StoreStats};
pub use index::{glob_match, Selector, SeriesKey};
pub use query::{Derivation, SeriesData};
pub use spill::StoreSpill;

/// Typed errors for every fallible store path (the crate is covered by
/// the workspace no-panic lint, like the wire crates).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// A sample's timestamp did not advance past the series' newest.
    OutOfOrder {
        /// Newest timestamp already ingested for the series.
        last_t_ns: u64,
        /// The rejected timestamp.
        t_ns: u64,
    },
    /// Tried to encode a chunk with no samples.
    EmptyChunk,
    /// An encoded payload failed validation.
    Corrupt(&'static str),
    /// A segment file name already exists (files are write-once).
    FileExists(String),
    /// A segment file is missing from the in-memory FS.
    NoSuchFile(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::OutOfOrder { last_t_ns, t_ns } => write!(
                f,
                "sample timestamp {t_ns} does not advance past {last_t_ns}"
            ),
            StoreError::EmptyChunk => write!(f, "cannot encode an empty chunk"),
            StoreError::Corrupt(why) => write!(f, "corrupt payload: {why}"),
            StoreError::FileExists(name) => write!(f, "file {name} already exists"),
            StoreError::NoSuchFile(name) => write!(f, "no such file {name}"),
        }
    }
}

impl std::error::Error for StoreError {}
