//! Series identity and matching: metric name + sorted labels, metric
//! globs and label matchers.
//!
//! A [`SeriesKey`] is the durable identity of one time series: a dotted
//! metric name plus a set of `(key, value)` labels held sorted so two
//! keys constructed in different label orders compare — and hash —
//! equal. Queries select series with a metric *glob* (`*` matches any
//! run of characters, the only metacharacter) and a conjunction of
//! exact label matchers, the subset of a real TSDB's selector language
//! the fleet aggregation in ROADMAP item 1 needs
//! (`mba.ch*.bytes{host="tellico-0017"}`).

/// The identity of one series: metric name plus sorted labels.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    metric: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// A key with no labels.
    pub fn new(metric: impl Into<String>) -> Self {
        SeriesKey {
            metric: metric.into(),
            labels: Vec::new(),
        }
    }

    /// Add (or replace) one label, keeping the set sorted by key.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        let (key, value) = (key.into(), value.into());
        match self.labels.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => self.labels[i].1 = value,
            Err(i) => self.labels.insert(i, (key, value)),
        }
        self
    }

    /// The metric name.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// Labels, sorted by key.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.labels[i].1.as_str())
    }
}

impl std::fmt::Display for SeriesKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.metric)?;
        if !self.labels.is_empty() {
            write!(f, "{{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{k}={v:?}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

/// True when `name` matches `pattern`, where `*` matches any (possibly
/// empty) run of characters and every other character matches itself.
/// Iterative two-pointer matcher — linear in practice, no backtracking
/// blow-up, no allocation.
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p: Vec<char> = pattern.chars().collect();
    let n: Vec<char> = name.chars().collect();
    let (mut pi, mut ni) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((sp, sn)) = star {
            // Backtrack: let the last `*` swallow one more character.
            pi = sp + 1;
            ni = sn + 1;
            star = Some((sp, sn + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

/// A query selector: metric glob plus exact label equalities.
#[derive(Clone, Debug, Default)]
pub struct Selector {
    /// Metric glob (`*` wildcard); empty selects nothing.
    pub metric: String,
    /// Conjunction of exact `label == value` matchers.
    pub labels: Vec<(String, String)>,
}

impl Selector {
    /// Select by metric glob alone.
    pub fn metric(glob: impl Into<String>) -> Self {
        Selector {
            metric: glob.into(),
            labels: Vec::new(),
        }
    }

    /// Require `key == value` on matched series.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.labels.push((key.into(), value.into()));
        self
    }

    /// True when `key` satisfies the metric glob and every label
    /// matcher.
    pub fn matches(&self, key: &SeriesKey) -> bool {
        glob_match(&self.metric, key.metric())
            && self.labels.iter().all(|(k, v)| key.label(k) == Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_sort_and_replace() {
        let a = SeriesKey::new("m")
            .with_label("z", "1")
            .with_label("a", "2");
        let b = SeriesKey::new("m")
            .with_label("a", "2")
            .with_label("z", "1");
        assert_eq!(a, b);
        let c = a.clone().with_label("z", "9");
        assert_eq!(c.label("z"), Some("9"));
        assert_eq!(c.label("a"), Some("2"));
        assert_eq!(c.label("missing"), None);
        assert_eq!(format!("{c}"), "m{a=\"2\",z=\"9\"}");
    }

    #[test]
    fn glob_semantics() {
        assert!(glob_match("mba.ch*.bytes", "mba.ch0.bytes"));
        assert!(glob_match("mba.ch*.bytes", "mba.ch12.bytes"));
        assert!(!glob_match("mba.ch*.bytes", "mba.ch0.other"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("*", ""));
        assert!(glob_match("a*b*c", "a__b__c"));
        assert!(glob_match("a*b*c", "abc"));
        assert!(!glob_match("a*b*c", "acb"));
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("exact", "exact.more"));
        assert!(!glob_match("", "x"));
        assert!(glob_match("", ""));
    }

    #[test]
    fn selector_conjunction() {
        let key = SeriesKey::new("pmcd.fetch.count")
            .with_label("host", "tellico-0017")
            .with_label("group", "nest-1hz");
        let sel = Selector::metric("pmcd.*").with_label("host", "tellico-0017");
        assert!(sel.matches(&key));
        let wrong = Selector::metric("pmcd.*").with_label("host", "tellico-0018");
        assert!(!wrong.matches(&key));
        let missing = Selector::metric("pmcd.*").with_label("rack", "r1");
        assert!(!missing.matches(&key));
    }
}
