//! Gorilla-style chunk compression for one series.
//!
//! A [`Chunk`] is an immutable, byte-aligned encoding of a strictly
//! time-ordered run of `(t_ns, value)` samples:
//!
//! ```text
//! chunk      = varint(count) varint(t0) varint(v0) *delta
//! delta      = varint(zigzag(dod)) varint(value_xor)
//! dod        = (t[i] - t[i-1]) - (t[i-1] - t[i-2])      ; dt[-1] = 0
//! value_xor  = v[i] ^ v[i-1]
//! ```
//!
//! Timestamps compress as delta-of-delta (a fixed cadence costs one
//! byte per sample), values as the varint of the XOR against the
//! previous value (a slowly moving counter keeps only its changed low
//! bytes). Everything is exact `u64` arithmetic end to end, so values
//! beyond 2^53 — where an f64 path would silently round — survive the
//! round trip bit-for-bit.
//!
//! The encoder rejects non-advancing timestamps (`t <= last`): a chunk
//! is strictly increasing in time *by construction*, which is what lets
//! the delta-of-delta stay a signed 64-bit quantity and every reader
//! skip chunks by `[min_t, max_t]` alone.

use crate::StoreError;
use obs::series::Sample;

/// Bytes one sample occupies uncompressed (`u64` timestamp + `u64`
/// value) — the numerator of every compression-ratio figure.
pub const RAW_SAMPLE_BYTES: u64 = 16;

/// Append `v` to `out` as a LEB128 varint (7 bits per byte, high bit =
/// continuation).
#[inline]
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a LEB128 varint at `pos`, advancing it.
#[inline]
pub(crate) fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err(StoreError::Corrupt("varint runs past end of chunk"));
        };
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(StoreError::Corrupt("varint overflows u64"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(StoreError::Corrupt("varint longer than 10 bytes"));
        }
    }
}

/// Map a signed delta-of-delta onto an unsigned varint domain.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// An immutable compressed run of samples from one series.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chunk {
    bytes: Vec<u8>,
    min_t: u64,
    max_t: u64,
    count: u32,
}

impl Chunk {
    /// The encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Timestamp of the first sample.
    pub fn min_t(&self) -> u64 {
        self.min_t
    }

    /// Timestamp of the last sample.
    pub fn max_t(&self) -> u64 {
        self.max_t
    }

    /// Number of samples.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// True when the chunk overlaps the inclusive window `[from, to]`.
    pub fn overlaps(&self, from: u64, to: u64) -> bool {
        self.min_t <= to && self.max_t >= from
    }

    /// Reconstruct a chunk from its encoded bytes (segment decode path).
    /// The header is re-derived by a full decode so a corrupt payload
    /// surfaces as a typed error here rather than at query time.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, StoreError> {
        let samples = decode(&bytes)?;
        let (Some(first), Some(last)) = (samples.first(), samples.last()) else {
            return Err(StoreError::Corrupt("chunk encodes zero samples"));
        };
        let count = u32::try_from(samples.len())
            .map_err(|_| StoreError::Corrupt("chunk sample count overflows u32"))?;
        Ok(Chunk {
            bytes,
            min_t: first.t_ns,
            max_t: last.t_ns,
            count,
        })
    }

    /// Decode every sample, oldest first.
    pub fn samples(&self) -> Result<Vec<Sample>, StoreError> {
        decode(&self.bytes)
    }
}

/// Decode a chunk payload into its samples.
fn decode(bytes: &[u8]) -> Result<Vec<Sample>, StoreError> {
    let mut pos = 0usize;
    let count = get_varint(bytes, &mut pos)?;
    if count == 0 {
        return Err(StoreError::Corrupt("chunk encodes zero samples"));
    }
    if count > bytes.len() as u64 {
        // Each encoded sample costs at least two bytes after the first;
        // a count beyond the payload size is corruption, not data.
        return Err(StoreError::Corrupt("chunk count exceeds payload size"));
    }
    let mut out = Vec::with_capacity(count as usize);
    let mut t = get_varint(bytes, &mut pos)?;
    let mut v = get_varint(bytes, &mut pos)?;
    out.push(Sample { t_ns: t, value: v });
    let mut dt = 0i64;
    for _ in 1..count {
        let dod = unzigzag(get_varint(bytes, &mut pos)?);
        dt = dt.wrapping_add(dod);
        let step =
            u64::try_from(dt).map_err(|_| StoreError::Corrupt("negative timestamp delta"))?;
        if step == 0 {
            return Err(StoreError::Corrupt("zero timestamp delta"));
        }
        t = t
            .checked_add(step)
            .ok_or(StoreError::Corrupt("timestamp overflows u64"))?;
        v ^= get_varint(bytes, &mut pos)?;
        out.push(Sample { t_ns: t, value: v });
    }
    if pos != bytes.len() {
        return Err(StoreError::Corrupt("trailing bytes after last sample"));
    }
    Ok(out)
}

/// Encode `samples` (strictly increasing in time) into one chunk.
pub fn encode(samples: &[Sample]) -> Result<Chunk, StoreError> {
    let (Some(first), Some(last)) = (samples.first(), samples.last()) else {
        return Err(StoreError::EmptyChunk);
    };
    let count =
        u32::try_from(samples.len()).map_err(|_| StoreError::Corrupt("too many samples"))?;
    let mut bytes = Vec::with_capacity(4 + samples.len() * 3);
    put_varint(&mut bytes, u64::from(count));
    put_varint(&mut bytes, first.t_ns);
    put_varint(&mut bytes, first.value);
    let mut prev = *first;
    let mut prev_dt = 0i64;
    for s in &samples[1..] {
        if s.t_ns <= prev.t_ns {
            return Err(StoreError::OutOfOrder {
                last_t_ns: prev.t_ns,
                t_ns: s.t_ns,
            });
        }
        let dt_u = s.t_ns - prev.t_ns;
        let dt = i64::try_from(dt_u).map_err(|_| StoreError::Corrupt("timestamp gap over i64"))?;
        put_varint(&mut bytes, zigzag(dt.wrapping_sub(prev_dt)));
        put_varint(&mut bytes, s.value ^ prev.value);
        prev_dt = dt;
        prev = *s;
    }
    Ok(Chunk {
        bytes,
        min_t: first.t_ns,
        max_t: last.t_ns,
        count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(t_ns: u64, value: u64) -> Sample {
        Sample { t_ns, value }
    }

    #[test]
    fn round_trips_typical_counter_series() {
        let samples: Vec<Sample> = (0..1000u64)
            .map(|i| s(1_000_000 + i * 250_000, 7_000 + i * i))
            .collect();
        let chunk = encode(&samples).unwrap();
        assert_eq!(chunk.count(), 1000);
        assert_eq!(chunk.min_t(), samples[0].t_ns);
        assert_eq!(chunk.max_t(), samples[999].t_ns);
        assert_eq!(chunk.samples().unwrap(), samples);
        // A fixed cadence must compress well below raw size.
        assert!((chunk.bytes().len() as u64) < RAW_SAMPLE_BYTES * 1000 / 3);
    }

    #[test]
    fn round_trips_values_beyond_f64_mantissa() {
        let samples = vec![
            s(10, u64::MAX),
            s(20, u64::MAX - 1),
            s(30, (1 << 53) + 1),
            s(40, 0),
            s(50, 1 << 63),
        ];
        let chunk = encode(&samples).unwrap();
        assert_eq!(chunk.samples().unwrap(), samples);
        let rebuilt = Chunk::from_bytes(chunk.bytes().to_vec()).unwrap();
        assert_eq!(rebuilt, chunk);
    }

    #[test]
    fn rejects_non_advancing_timestamps() {
        let err = encode(&[s(10, 1), s(10, 2)]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::OutOfOrder {
                last_t_ns: 10,
                t_ns: 10
            }
        ));
        assert!(encode(&[s(10, 1), s(5, 2)]).is_err());
        assert!(matches!(encode(&[]), Err(StoreError::EmptyChunk)));
    }

    #[test]
    fn decode_rejects_corruption() {
        let chunk = encode(&[s(1, 2), s(3, 4), s(9, 5)]).unwrap();
        let good = chunk.bytes().to_vec();
        // Truncation at every prefix length must fail, never panic.
        for n in 0..good.len() {
            assert!(Chunk::from_bytes(good[..n].to_vec()).is_err(), "len {n}");
        }
        // Trailing garbage is rejected too.
        let mut long = good.clone();
        long.push(0);
        assert!(Chunk::from_bytes(long).is_err());
        // Zero-count payload.
        assert!(Chunk::from_bytes(vec![0]).is_err());
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 300, u64::MAX, 1 << 63, (1 << 53) + 1] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        // An 11-byte continuation run must be rejected.
        let mut pos = 0;
        assert!(get_varint(&[0x80; 11], &mut pos).is_err());
    }
}
