//! The in-memory segment filesystem.
//!
//! The engine is offline and deterministic, so "disk" is a name →
//! immutable-bytes map with the three operations a log-structured store
//! needs: atomic whole-file create, read, and remove. Files are
//! write-once — a [`MemFs`] models the rename-into-place idiom real
//! TSDBs use, where a segment becomes visible only when complete and is
//! never mutated afterwards.
//!
//! Readers hold `Arc<[u8]>` handles, the in-memory analogue of an mmap
//! over an immutable segment: removing a file drops the directory entry
//! but every open handle keeps its bytes alive, which is exactly what
//! lets compaction delete superseded segments while concurrent queries
//! are still reading them.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::StoreError;

/// A deterministic in-memory file system of immutable files.
#[derive(Debug, Default)]
pub struct MemFs {
    // lock-rank: store.4 — file-name map; a leaf held only for map ops
    // (file contents are immutable Arc<[u8]> handed out by clone).
    files: Mutex<BTreeMap<String, Arc<[u8]>>>,
}

impl MemFs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically create `name` with `bytes`. Files are write-once:
    /// creating an existing name is an error, so a segment can never be
    /// silently overwritten.
    pub fn create(&self, name: &str, bytes: Vec<u8>) -> Result<Arc<[u8]>, StoreError> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        if files.contains_key(name) {
            return Err(StoreError::FileExists(name.to_owned()));
        }
        let data: Arc<[u8]> = bytes.into();
        files.insert(name.to_owned(), Arc::clone(&data));
        Ok(data)
    }

    /// Open `name` for reading. The handle stays valid across a later
    /// [`MemFs::remove`] of the same name.
    pub fn read(&self, name: &str) -> Result<Arc<[u8]>, StoreError> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NoSuchFile(name.to_owned()))
    }

    /// Unlink `name`. Open handles keep their bytes.
    pub fn remove(&self, name: &str) -> Result<(), StoreError> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::NoSuchFile(name.to_owned()))
    }

    /// File names in lexicographic order.
    pub fn list(&self) -> Vec<String> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.keys().cloned().collect()
    }

    /// Total bytes across live (non-removed) files.
    pub fn live_bytes(&self) -> u64 {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.values().map(|f| f.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_read_remove_cycle() {
        let fs = MemFs::new();
        fs.create("seg-0", vec![1, 2, 3]).unwrap();
        assert_eq!(&*fs.read("seg-0").unwrap(), &[1, 2, 3]);
        assert_eq!(fs.list(), vec!["seg-0".to_string()]);
        assert_eq!(fs.live_bytes(), 3);
        fs.remove("seg-0").unwrap();
        assert!(fs.read("seg-0").is_err());
        assert!(fs.remove("seg-0").is_err());
        assert_eq!(fs.live_bytes(), 0);
    }

    #[test]
    fn files_are_write_once() {
        let fs = MemFs::new();
        fs.create("a", vec![1]).unwrap();
        assert!(matches!(
            fs.create("a", vec![2]),
            Err(StoreError::FileExists(_))
        ));
        assert_eq!(&*fs.read("a").unwrap(), &[1]);
    }

    #[test]
    fn open_handles_survive_removal() {
        let fs = MemFs::new();
        fs.create("seg-1", vec![9; 64]).unwrap();
        let handle = fs.read("seg-1").unwrap();
        fs.remove("seg-1").unwrap();
        assert_eq!(handle.len(), 64);
        assert!(handle.iter().all(|b| *b == 9));
    }
}
