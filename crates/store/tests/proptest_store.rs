//! Property-based acceptance tests for the storage engine: the full
//! write→compact→query pipeline must agree with a naive in-memory
//! reference over randomized series, including values past 2^53 (where
//! an f64-based codec would silently round) and counter resets landing
//! mid-chunk.

use proptest::prelude::*;

use obs::metrics::ExportSemantics;
use obs::series::Sample;
use store::{chunk, Selector, SeriesKey, Store, StoreConfig, StoreError};

/// Turn random positive time steps and arbitrary values into a strictly
/// time-ordered sample run.
fn samples_from(steps: &[(u64, u64)]) -> Vec<Sample> {
    let mut t = 0u64;
    steps
        .iter()
        .map(|&(dt, value)| {
            t += dt;
            Sample { t_ns: t, value }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Chunk encode→decode is the identity on any strictly ordered run,
    /// over the full u64 value range — delta-of-delta + XOR varints are
    /// exact, unlike any f64-mediated codec.
    #[test]
    fn chunk_round_trip_is_identity(
        steps in prop::collection::vec((1u64..1_000_000_000, 0u64..=u64::MAX), 1..300)
    ) {
        let samples = samples_from(&steps);
        let c = chunk::encode(&samples).expect("ordered run encodes");
        prop_assert_eq!(c.count() as usize, samples.len());
        prop_assert_eq!(c.min_t(), samples[0].t_ns);
        prop_assert_eq!(c.max_t(), samples[samples.len() - 1].t_ns);
        let back = c.samples().expect("own bytes decode");
        prop_assert_eq!(back, samples);
    }

    /// The full pipeline — ingest through small chunks and segments,
    /// flush, compact, query — returns exactly what a Vec would.
    #[test]
    fn write_compact_query_agrees_with_naive_reference(
        steps in prop::collection::vec((1u64..1_000_000, 0u64..=u64::MAX), 1..400),
        chunk_samples in 2usize..32,
        window in (0u64..500_000_000, 0u64..500_000_000),
    ) {
        let reference = samples_from(&steps);
        let store = Store::new(StoreConfig {
            chunk_samples,
            segment_bytes: 256,
            retention_ns: None,
        });
        let key = SeriesKey::new("prop.series").with_label("host", "h0");
        for s in &reference {
            store.ingest(&key, ExportSemantics::Counter, s.t_ns, s.value).expect("in-order ingest");
        }
        store.flush().expect("flush");
        store.compact(u64::MAX).expect("compact");

        let (from, to) = (window.0.min(window.1), window.0.max(window.1));
        let expected: Vec<Sample> = reference.iter()
            .filter(|s| s.t_ns >= from && s.t_ns <= to)
            .copied()
            .collect();
        let got = store.query(&Selector::metric("prop.*"), from, to).expect("query");
        let got_samples = got.first().map(|d| d.samples.clone()).unwrap_or_default();
        prop_assert_eq!(got_samples, expected);

        // And the whole run survives verbatim.
        let all = store.query(&Selector::metric("prop.series"), 0, u64::MAX).expect("query all");
        prop_assert_eq!(&all[0].samples, &reference);
        prop_assert_eq!(all[0].semantics, ExportSemantics::Counter);
    }

    /// Zero (or negative) time steps are rejected at every layer: the
    /// chunk codec refuses to encode them and ingest refuses to accept
    /// them, so decoded history is strictly ordered by construction.
    #[test]
    fn zero_dt_is_rejected(
        prefix in prop::collection::vec((1u64..1_000, 0u64..1_000), 1..20),
        dup_at in 0usize..20,
    ) {
        let mut samples = samples_from(&prefix);
        let dup = samples[dup_at.min(samples.len() - 1)];
        samples.push(dup); // same timestamp again: zero dt somewhere
        samples.sort_by_key(|s| s.t_ns);
        let rejected = matches!(
            chunk::encode(&samples),
            Err(StoreError::OutOfOrder { .. })
        );
        prop_assert!(rejected, "codec accepted a zero-dt run");

        let store = Store::default();
        let key = SeriesKey::new("dup");
        let last = samples[samples.len() - 1];
        store.ingest(&key, ExportSemantics::Instant, last.t_ns, last.value).expect("first in");
        let again = store.ingest(&key, ExportSemantics::Instant, last.t_ns, 7);
        let rejected = matches!(again, Err(StoreError::OutOfOrder { .. }));
        prop_assert!(rejected, "ingest accepted a non-advancing timestamp");
    }
}

/// Values past 2^53 survive the pipeline bit-for-bit — the explicit
/// regression for codecs that route sample values through f64.
#[test]
fn values_past_2_pow_53_survive_exactly() {
    let big = (1u64 << 53) + 1; // first integer an f64 cannot hold
    let samples = [
        Sample {
            t_ns: 1_000,
            value: big,
        },
        Sample {
            t_ns: 2_000,
            value: u64::MAX - 1,
        },
        Sample {
            t_ns: 3_000,
            value: u64::MAX,
        },
        Sample {
            t_ns: 4_000,
            value: big + 12345,
        },
    ];
    let c = chunk::encode(&samples).expect("encode");
    assert_eq!(c.samples().expect("decode"), samples);

    let store = Store::new(StoreConfig {
        chunk_samples: 2,
        segment_bytes: 64,
        retention_ns: None,
    });
    let key = SeriesKey::new("huge");
    for s in &samples {
        store
            .ingest(&key, ExportSemantics::Counter, s.t_ns, s.value)
            .expect("ingest");
    }
    store.flush().expect("flush");
    let got = store
        .query(&Selector::metric("huge"), 0, u64::MAX)
        .expect("query");
    assert_eq!(got[0].samples, samples);
}

/// A counter reset landing mid-chunk: the XOR codec round-trips the
/// drop exactly, and the reused `obs::derive` delta saturates at zero
/// instead of going negative — same answer the live monitor gives.
#[test]
fn counter_reset_mid_chunk_survives_and_saturates() {
    let mut samples = Vec::new();
    for i in 0..10u64 {
        // Counter climbs, the process restarts at i == 6, counter
        // restarts near zero mid-chunk.
        let value = if i < 6 { 1_000 + i * 500 } else { (i - 6) * 40 };
        samples.push(Sample {
            t_ns: (i + 1) * 1_000_000,
            value,
        });
    }
    let store = Store::new(StoreConfig {
        chunk_samples: 10, // the whole run, reset included, in one chunk
        segment_bytes: 64,
        retention_ns: None,
    });
    let key = SeriesKey::new("resetting.count");
    for s in &samples {
        store
            .ingest(&key, ExportSemantics::Counter, s.t_ns, s.value)
            .expect("ingest");
    }
    store.flush().expect("flush");
    let got = store
        .query(&Selector::metric("resetting.count"), 0, u64::MAX)
        .expect("query");
    assert_eq!(got[0].samples, samples, "reset survives compression");
    // Window spanning the reset: latest (160) < oldest (1000), so the
    // counter delta saturates to zero rather than underflowing.
    assert_eq!(got[0].derive(store::Derivation::Delta), Some(0.0));
    assert_eq!(got[0].derive(store::Derivation::Rate), Some(0.0));
}
