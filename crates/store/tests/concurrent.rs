//! Readers and ingest run concurrently with compaction, and nobody
//! blocks or observes a torn store: every query sees a consistent
//! prefix of one series' history, whatever the compactor is doing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use obs::metrics::ExportSemantics;
use store::{Selector, SeriesKey, Store, StoreConfig};

#[test]
fn queries_and_ingest_run_through_repeated_compactions() {
    let store = Arc::new(Store::new(StoreConfig {
        chunk_samples: 16,
        segment_bytes: 512,
        retention_ns: None,
    }));
    let key = SeriesKey::new("conc.count").with_label("host", "h0");
    let stop = Arc::new(AtomicBool::new(false));
    const TOTAL: u64 = 20_000;

    std::thread::scope(|scope| {
        // Writer: one strictly ordered counter series, value == t / 10,
        // so any prefix is self-checking.
        {
            let store = Arc::clone(&store);
            let key = key.clone();
            scope.spawn(move || {
                for i in 1..=TOTAL {
                    store
                        .ingest(&key, ExportSemantics::Counter, i * 10, i)
                        .expect("in-order ingest never fails");
                    if i % 64 == 0 {
                        std::thread::yield_now();
                    }
                }
            });
        }

        // Compactor: rewrite history continuously while both writer and
        // readers run. Each pass must preserve every flushed sample.
        {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    store.flush().expect("flush");
                    store.compact(u64::MAX).expect("compact");
                    std::thread::yield_now();
                }
            });
        }

        // Readers: every query must return a dense prefix-consistent
        // window — strictly increasing timestamps, value == t/10, no
        // holes — no matter how it interleaves with the compactor.
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut seen_nonempty = false;
                    while !stop.load(Ordering::Relaxed) {
                        let got = store
                            .query(&Selector::metric("conc.*"), 0, u64::MAX)
                            .expect("query");
                        if let Some(series) = got.first() {
                            seen_nonempty = true;
                            let s = &series.samples;
                            assert!(!s.is_empty());
                            for w in s.windows(2) {
                                assert!(
                                    w[1].t_ns == w[0].t_ns + 10,
                                    "hole or disorder: {} then {}",
                                    w[0].t_ns,
                                    w[1].t_ns
                                );
                            }
                            for p in s {
                                assert_eq!(p.value, p.t_ns / 10);
                            }
                        }
                    }
                    seen_nonempty
                })
            })
            .collect();

        // Let the writer finish, then wind everything down.
        while store.stats().samples < TOTAL {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader"), "reader never saw data");
        }
    });

    // After the dust settles the full history is intact.
    store.flush().expect("final flush");
    let got = store
        .query(&Selector::metric("conc.count"), 0, u64::MAX)
        .expect("final query");
    assert_eq!(got[0].samples.len() as u64, TOTAL);
    assert_eq!(got[0].samples[0].t_ns, 10);
    assert_eq!(got[0].samples[TOTAL as usize - 1].value, TOTAL);

    // Readers holding pre-compaction segment lists kept their bytes
    // alive; once dropped, only the live files remain.
    assert!(store.fs().live_bytes() > 0);
}
