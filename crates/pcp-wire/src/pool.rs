//! The worker-pool connection queue: a bounded MPMC queue with explicit
//! Busy rejection and graceful close.
//!
//! This replaces `std::sync::mpsc::sync_channel` in the server so the
//! accept/shutdown path is built from primitives the loom models in
//! `tests/loom_pool.rs` can schedule: under `--cfg loom` the mutex and
//! condvar come from the vendored loom shim, which injects preemption
//! points around every acquisition.
//!
//! Semantics mirror the server's backpressure story:
//!
//! * [`BoundedQueue::try_push`] never blocks — a full queue returns the
//!   item back as [`PushError::Full`] so the accept loop can shed load at
//!   the door (`Error{Busy}`).
//! * [`BoundedQueue::pop_timeout`] blocks a worker until an item arrives,
//!   the timeout tick elapses (so the worker can notice the shutdown
//!   flag), or the queue is closed *and drained* — already-accepted
//!   connections are still served during a graceful shutdown.

use std::collections::VecDeque;
use std::time::Duration;

#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex};

/// Why a [`BoundedQueue::try_push`] did not enqueue; the item is handed
/// back in both cases.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — shed load.
    Full(T),
    /// The queue was closed — the server is shutting down.
    Closed(T),
}

/// Outcome of a [`BoundedQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The tick elapsed with the queue open but empty.
    TimedOut,
    /// The queue is closed and fully drained — the worker should exit.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    // lock-rank: wire.3 — queue state; a leaf guarding only the VecDeque
    // and the condvar protocol.
    state: Mutex<State<T>>,
    cond: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking. On success one waiting consumer is woken.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.cond.notify_one();
        Ok(())
    }

    /// Dequeue, waiting up to `timeout` for an item. A closed queue still
    /// yields its remaining items before reporting [`Pop::Closed`].
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = s.items.pop_front() {
                return Pop::Item(item);
            }
            if s.closed {
                return Pop::Closed;
            }
            let (guard, result) = self
                .cond
                .wait_timeout(s, timeout)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
            if result.timed_out() {
                // One more non-blocking look: the notify may have raced
                // with the timeout.
                return match s.items.pop_front() {
                    Some(item) => Pop::Item(item),
                    None if s.closed => Pop::Closed,
                    None => Pop::TimedOut,
                };
            }
        }
    }

    /// Close the queue: further pushes fail, and consumers see
    /// [`Pop::Closed`] once the backlog drains. Idempotent.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.closed = true;
        drop(s);
        self.cond.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_round_trip() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("push 1");
        q.try_push(2).expect("push 2");
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(2));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::TimedOut);
    }

    #[test]
    fn close_drains_backlog_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.try_push(7).expect("push");
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Item(7));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop_timeout(Duration::from_secs(30)))
            })
            .collect();
        // Give the consumers a moment to block, then close.
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().expect("join consumer"), Pop::Closed);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(8));
        let total = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                let total = Arc::clone(&total);
                std::thread::spawn(move || loop {
                    match q.pop_timeout(Duration::from_millis(200)) {
                        Pop::Item(v) => {
                            // relaxed-ok: test tally, read after joins.
                            total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        }
                        Pop::TimedOut => {}
                        Pop::Closed => return,
                    }
                })
            })
            .collect();
        let mut pushed = 0u64;
        for v in 1..=100u64 {
            loop {
                match q.try_push(v) {
                    Ok(()) => {
                        pushed += v;
                        break;
                    }
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!("queue not closed"),
                }
            }
        }
        q.close();
        for c in consumers {
            c.join().expect("join consumer");
        }
        // relaxed-ok: read after every consumer joined.
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), pushed);
    }
}
