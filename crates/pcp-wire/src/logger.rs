//! The sampling scheduler — `pmlogger` against a live server.
//!
//! `pcp_sim::PmLogger` is pumped by its caller on *simulated* time. A
//! networked PMCD has real wall-clock clients, so this scheduler runs a
//! background thread that fetches each configured metric set on its own
//! fixed wall-clock cadence and appends the samples to a
//! [`pcp_sim::Archive`] per schedule. Multiple schedules at different
//! intervals share one connection (one thread, one [`PmApi`] handle),
//! exactly like one `pmlogger` process recording several logging groups.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pcp_sim::pmns::{InstanceId, MetricId};
use pcp_sim::{Archive, ArchiveRecord, PcpError, PmApi};
use store::{Selector, SeriesKey, Store, StoreError};

/// One logging group: a named metric set sampled at a fixed cadence.
#[derive(Clone, Debug)]
pub struct ScheduleSpec {
    /// Archive name (e.g. `"nest-1hz"`).
    pub name: String,
    /// Metrics to fetch, one batched round trip per sample.
    pub metrics: Vec<(MetricId, InstanceId)>,
    /// Wall-clock sampling interval.
    pub interval: Duration,
}

struct Group {
    name: String,
    archive: Archive,
    interval: Duration,
    next_due: Duration,
    /// First error that stopped this group, if any.
    error: Option<PcpError>,
}

/// A running sampler. Dropping it stops the thread; [`stop`] returns the
/// recorded archives.
///
/// [`stop`]: SamplingScheduler::stop
pub struct SamplingScheduler {
    stop: Arc<AtomicBool>,
    // lock-rank: wire.1 — sampler group list, the outermost lock: the
    // sample loop fetches and ingests (store.*, obs.*) while holding it.
    groups: Arc<Mutex<Vec<Group>>>,
    thread: Option<JoinHandle<()>>,
}

impl SamplingScheduler {
    /// Start sampling `specs` through `ctx`. Each group takes its first
    /// sample immediately, then every `interval` thereafter. Fails only
    /// if the OS refuses to spawn the sampling thread.
    pub fn start(
        ctx: impl PmApi + 'static,
        specs: Vec<ScheduleSpec>,
    ) -> Result<Self, std::io::Error> {
        Self::launch(ctx, specs, None)
    }

    /// [`start`](Self::start), with every sample *also* ingested into
    /// `store` as it is appended to the archive. Both writes share one
    /// timestamp (`time_s = t_ns / 1e9`, computed once per fetch), so
    /// the store-backed record stream is sample-identical to the log —
    /// see [`archive_from_store`].
    pub fn start_with_store(
        ctx: impl PmApi + 'static,
        specs: Vec<ScheduleSpec>,
        store: Arc<Store>,
    ) -> Result<Self, std::io::Error> {
        Self::launch(ctx, specs, Some(store))
    }

    fn launch(
        ctx: impl PmApi + 'static,
        specs: Vec<ScheduleSpec>,
        store: Option<Arc<Store>>,
    ) -> Result<Self, std::io::Error> {
        assert!(!specs.is_empty(), "scheduler needs at least one group");
        for s in &specs {
            assert!(
                s.interval > Duration::ZERO,
                "schedule {:?} must have a positive interval",
                s.name
            );
        }
        let groups: Vec<Group> = specs
            .into_iter()
            .map(|s| Group {
                name: s.name,
                archive: Archive::new(s.metrics),
                interval: s.interval,
                next_due: Duration::ZERO,
                error: None,
            })
            .collect();
        let groups = Arc::new(Mutex::new(groups));
        let stop = Arc::new(AtomicBool::new(false));

        let t_groups = Arc::clone(&groups);
        let t_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("pmlogger".into())
            .spawn(move || sample_loop(Box::new(ctx), t_groups, t_stop, store))?;

        Ok(SamplingScheduler {
            stop,
            groups,
            thread: Some(thread),
        })
    }

    /// Stop sampling and hand over the archives, in schedule order. The
    /// second element carries the error that halted a group early, if any
    /// (its archive keeps the samples recorded before the failure).
    pub fn stop(mut self) -> Vec<(String, Archive, Option<PcpError>)> {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        let mut groups = self.groups.lock().unwrap_or_else(|e| e.into_inner());
        groups
            .drain(..)
            .map(|g| (g.name, g.archive, g.error))
            .collect()
    }

    /// Number of samples recorded so far per group (for progress checks
    /// while the sampler runs).
    pub fn sample_counts(&self) -> Vec<(String, usize)> {
        let groups = self.groups.lock().unwrap_or_else(|e| e.into_inner());
        groups
            .iter()
            .map(|g| (g.name.clone(), g.archive.len()))
            .collect()
    }
}

impl Drop for SamplingScheduler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The store key for one column of a logging group's archive: the
/// group is the metric name, the PMNS identity rides in labels.
fn series_key(group: &str, id: MetricId, inst: InstanceId) -> SeriesKey {
    SeriesKey::new(group)
        .with_label("metric", id.0.to_string())
        .with_label("inst", inst.0.to_string())
}

fn sample_loop(
    ctx: Box<dyn PmApi>,
    // lock-rank: wire.1 — the SamplingScheduler group list.
    groups: Arc<Mutex<Vec<Group>>>,
    stop: Arc<AtomicBool>,
    store: Option<Arc<Store>>,
) {
    let epoch = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        let now = epoch.elapsed();
        let mut next_wake = now + Duration::from_millis(50);
        {
            let mut groups = groups.lock().unwrap_or_else(|e| e.into_inner());
            for g in groups.iter_mut() {
                if g.error.is_some() {
                    continue;
                }
                if now >= g.next_due {
                    // One timestamp per fetch, shared verbatim by the
                    // archive record and the store ingest, so the two
                    // histories agree by construction.
                    let t_ns = now.as_nanos() as u64;
                    match ctx.pm_fetch(g.archive.metrics()) {
                        Ok(values) => {
                            if let Some(store) = &store {
                                for ((id, inst), v) in g.archive.metrics().iter().zip(&values) {
                                    let _ = store.ingest(
                                        &series_key(&g.name, *id, *inst),
                                        obs::metrics::ExportSemantics::Counter,
                                        t_ns,
                                        *v,
                                    );
                                }
                            }
                            g.archive.push(ArchiveRecord {
                                time_s: t_ns as f64 / 1e9,
                                values,
                            });
                        }
                        Err(e) => {
                            g.error = Some(e);
                            continue;
                        }
                    }
                    // Cadence anchored at the schedule, not at poll
                    // jitter — same policy as PmLogger.
                    g.next_due += g.interval;
                    if g.next_due <= now {
                        // Fell behind (slow fetch): resynchronise rather
                        // than burst-sample to catch up.
                        g.next_due = now + g.interval;
                    }
                }
                next_wake = next_wake.min(g.next_due);
            }
        }
        let now = epoch.elapsed();
        if next_wake > now {
            // Short bounded sleeps keep stop() responsive.
            std::thread::sleep((next_wake - now).min(Duration::from_millis(20)));
        }
    }
}

/// Rebuild a logging group's [`Archive`] out of the compressed store.
///
/// With [`SamplingScheduler::start_with_store`] every fetch lands in
/// both histories under one timestamp, so the rebuilt archive is
/// *sample-identical* to the wall-clock log: same record count, same
/// `time_s` (bit-for-bit — both sides compute `t_ns as f64 / 1e9`),
/// same values in the same column order.
pub fn archive_from_store(
    store: &Store,
    group: &str,
    metrics: Vec<(MetricId, InstanceId)>,
) -> Result<Archive, StoreError> {
    let mut columns: Vec<Vec<store::SeriesData>> = Vec::with_capacity(metrics.len());
    for (id, inst) in &metrics {
        let key = series_key(group, *id, *inst);
        let sel = Selector::metric(key.metric())
            .with_label("metric", id.0.to_string())
            .with_label("inst", inst.0.to_string());
        columns.push(store.query(&sel, 0, u64::MAX)?);
    }
    let rows = columns
        .first()
        .and_then(|c| c.first())
        .map_or(0, |d| d.samples.len());
    let mut archive = Archive::new(metrics);
    for row in 0..rows {
        let mut t_ns = None;
        let mut values = Vec::with_capacity(columns.len());
        for col in &columns {
            let Some(sample) = col.first().and_then(|d| d.samples.get(row)) else {
                return Err(StoreError::Corrupt("store columns have unequal lengths"));
            };
            if *t_ns.get_or_insert(sample.t_ns) != sample.t_ns {
                return Err(StoreError::Corrupt("store columns disagree on timestamps"));
            }
            values.push(sample.value);
        }
        archive.push(ArchiveRecord {
            time_s: t_ns.unwrap_or(0) as f64 / 1e9,
            values,
        });
    }
    Ok(archive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcp_sim::pmns::MetricDesc;

    /// A PmApi stub counting fetches; value = fetch ordinal.
    struct Stub {
        calls: std::sync::atomic::AtomicU64,
        fail_after: u64,
    }

    impl PmApi for Stub {
        fn pm_lookup_name(&self, name: &str) -> Result<MetricId, PcpError> {
            Err(PcpError::NoSuchMetric(name.into()))
        }
        fn pm_get_desc(&self, _id: MetricId) -> Result<MetricDesc, PcpError> {
            Err(PcpError::BadMetricId)
        }
        fn pm_get_children(&self, _prefix: &str) -> Result<Vec<String>, PcpError> {
            Ok(vec![])
        }
        fn pm_fetch(&self, requests: &[(MetricId, InstanceId)]) -> Result<Vec<u64>, PcpError> {
            let n = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
            if n > self.fail_after {
                return Err(PcpError::Disconnected);
            }
            Ok(vec![n; requests.len()])
        }
    }

    fn spec(name: &str, ms: u64) -> ScheduleSpec {
        ScheduleSpec {
            name: name.into(),
            metrics: vec![(MetricId(0), InstanceId(87))],
            interval: Duration::from_millis(ms),
        }
    }

    #[test]
    fn samples_on_cadence_and_stops_cleanly() {
        let stub = Stub {
            calls: 0.into(),
            fail_after: u64::MAX,
        };
        let sched = SamplingScheduler::start(stub, vec![spec("fast", 10)]).expect("start");
        std::thread::sleep(Duration::from_millis(120));
        let mut out = sched.stop();
        let (name, archive, err) = out.remove(0);
        assert_eq!(name, "fast");
        assert!(err.is_none());
        // ~12 samples expected in 120 ms at 10 ms cadence; be generous to
        // scheduler jitter but require real progress and monotonic time.
        assert!(archive.len() >= 4, "only {} samples", archive.len());
        let times: Vec<f64> = archive.records().iter().map(|r| r.time_s).collect();
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn independent_cadences_per_group() {
        let stub = Stub {
            calls: 0.into(),
            fail_after: u64::MAX,
        };
        let sched = SamplingScheduler::start(stub, vec![spec("fast", 10), spec("slow", 1000)])
            .expect("start");
        std::thread::sleep(Duration::from_millis(150));
        let out = sched.stop();
        let fast = out.iter().find(|(n, _, _)| n == "fast").unwrap();
        let slow = out.iter().find(|(n, _, _)| n == "slow").unwrap();
        assert!(fast.1.len() > slow.1.len());
        assert_eq!(slow.1.len(), 1, "slow group samples once at t=0");
    }

    #[test]
    fn fetch_failure_halts_group_but_keeps_archive() {
        let stub = Stub {
            calls: 0.into(),
            fail_after: 3,
        };
        let sched = SamplingScheduler::start(stub, vec![spec("flaky", 5)]).expect("start");
        std::thread::sleep(Duration::from_millis(100));
        let mut out = sched.stop();
        let (_, archive, err) = out.remove(0);
        assert_eq!(archive.len(), 3);
        assert_eq!(err, Some(PcpError::Disconnected));
    }

    #[test]
    fn store_backed_archive_is_sample_identical_to_the_log() {
        let stub = Stub {
            calls: 0.into(),
            fail_after: u64::MAX,
        };
        let store = Arc::new(Store::default());
        let metrics = vec![(MetricId(3), InstanceId(0)), (MetricId(9), InstanceId(4))];
        let sched = SamplingScheduler::start_with_store(
            stub,
            vec![ScheduleSpec {
                name: "dual".into(),
                metrics: metrics.clone(),
                interval: Duration::from_millis(10),
            }],
            Arc::clone(&store),
        )
        .expect("start");
        std::thread::sleep(Duration::from_millis(120));
        let mut out = sched.stop();
        let (_, logged, err) = out.remove(0);
        assert!(err.is_none());
        assert!(logged.len() >= 4, "only {} samples", logged.len());

        let rebuilt = archive_from_store(&store, "dual", metrics).expect("rebuild");
        assert_eq!(rebuilt.len(), logged.len());
        for (a, b) in rebuilt.records().iter().zip(logged.records()) {
            // Bit-identical timestamps: both sides compute t_ns / 1e9
            // from the same u64, so exact f64 equality is required.
            assert_eq!(a.time_s.to_bits(), b.time_s.to_bits());
            assert_eq!(a.values, b.values);
        }
    }

    #[test]
    fn drop_without_stop_joins_thread() {
        let stub = Stub {
            calls: 0.into(),
            fail_after: u64::MAX,
        };
        let sched = SamplingScheduler::start(stub, vec![spec("g", 10)]).expect("start");
        drop(sched); // must not hang or leak the thread
    }
}
