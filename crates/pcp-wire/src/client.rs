//! [`WireClient`] — the TCP transport behind `pcp_sim::PmApi`.
//!
//! A `WireClient` is one connection to a [`crate::PmcdServer`]. It does
//! the CREDS handshake on connect and then issues one request/response
//! exchange per PMAPI call, serialised by an internal mutex (the real
//! `libpcp` context is likewise single-threaded per handle). Because it
//! implements [`PmApi`], the PAPI PCP component runs against it unchanged
//! — the only difference from the in-process [`pcp_sim::PcpContext`] is
//! that the round-trip cost is *real* wall-clock socket time, so
//! [`PmApi::fetch_latency_s`] reports zero simulated seconds.

use std::io::Write as _;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

use pcp_sim::pmns::{InstanceId, MetricDesc, MetricId};
use pcp_sim::{PcpError, PmApi};

use crate::pdu::{
    read_pdu, write_pdu, ErrorCode, Pdu, WireError, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::server::{decode_direction, decode_semantics};

/// Default per-call I/O timeout: long enough for a loaded loopback
/// server, short enough that a dead server fails the call instead of
/// wedging the measurement.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// An unprivileged TCP connection to a networked PMCD.
pub struct WireClient {
    // lock-rank: wire.2 — serialises whole PDU exchanges on the socket;
    // may record obs metrics (obs.*) but never takes wire.1 or store.*.
    stream: Mutex<TcpStream>,
    max_payload: u32,
    client_id: u64,
    peer: SocketAddr,
}

impl WireClient {
    /// Connect and complete the CREDS handshake.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, PcpError> {
        Self::connect_with_timeout(addr, DEFAULT_IO_TIMEOUT)
    }

    /// Connect with a specific per-call read/write timeout.
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        io_timeout: Duration,
    ) -> Result<Self, PcpError> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        stream.set_read_timeout(Some(io_timeout)).map_err(io_err)?;
        stream.set_write_timeout(Some(io_timeout)).map_err(io_err)?;
        let peer = stream.peer_addr().map_err(io_err)?;
        let client = WireClient {
            stream: Mutex::new(stream),
            max_payload: crate::pdu::DEFAULT_MAX_PAYLOAD,
            client_id: 0,
            peer,
        };
        match client.call(&Pdu::Creds {
            version: PROTOCOL_VERSION,
        })? {
            Pdu::CredsAck { version, client_id }
                if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
            {
                Ok(WireClient {
                    client_id,
                    ..client
                })
            }
            Pdu::CredsAck { version, .. } => Err(PcpError::Protocol(format!(
                "server answered with unsupported version {version}"
            ))),
            other => Err(unexpected(&other)),
        }
    }

    /// The server-assigned client id from the CREDS exchange.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Address of the server this client is connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// One request/response round trip.
    fn call(&self, request: &Pdu) -> Result<Pdu, PcpError> {
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        // blocking-ok: the stream mutex exists precisely to serialise whole
        // PDU exchanges on this socket; both directions run under the
        // connection's read/write timeouts, so a dead peer errors out
        // instead of wedging other locks (wire.2 is below wire.1 and
        // nothing else is held here).
        write_pdu(&mut *stream, request).map_err(wire_err)?;
        // blocking-ok: second half of the same serialised exchange.
        read_pdu(&mut *stream, self.max_payload).map_err(wire_err)
    }

    /// Write raw bytes onto the connection, bypassing the codec. Exists
    /// for robustness tests that must send deliberately malformed frames;
    /// a correct client never needs it.
    pub fn send_raw(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        // blocking-ok: test-only raw frame write under the per-exchange
        // stream mutex; socket write timeout bounds the stall.
        stream.write_all(bytes)?;
        // blocking-ok: flush of the same timeout-bounded raw write.
        stream.flush()
    }

    /// Read one PDU off the connection, bypassing the request path. Pairs
    /// with [`WireClient::send_raw`] in tests.
    pub fn recv_pdu(&self) -> Result<Pdu, PcpError> {
        let mut stream = self.stream.lock().unwrap_or_else(|e| e.into_inner());
        // blocking-ok: test-only receive half of a serialised exchange;
        // bounded by the connection read timeout.
        read_pdu(&mut *stream, self.max_payload).map_err(wire_err)
    }

    /// Fetch the server's OpenMetrics text exposition over the PDU
    /// channel (the same document the HTTP scrape listener serves).
    pub fn scrape_exposition(&self) -> Result<String, PcpError> {
        self.scrape_exposition_traced(0)
    }

    /// Traced scrape: a non-zero `trace_id` rides the `Exposition`
    /// frame (protocol v3) and is echoed as the arg of the server's
    /// render span, so a fleet aggregator's per-host child id stitches
    /// the client and server sides into one `obs::stitch::FanoutTrace`.
    pub fn scrape_exposition_traced(&self, trace_id: u64) -> Result<String, PcpError> {
        #[cfg(feature = "obs")]
        let _span = (trace_id != 0).then(|| obs::span!(obs::stitch::CLIENT_SCRAPE_SPAN, trace_id));
        match self.call(&Pdu::Exposition { trace_id })? {
            Pdu::ExpositionResult { text } => Ok(text),
            Pdu::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected(&other)),
        }
    }
}

fn io_err(e: std::io::Error) -> PcpError {
    PcpError::Protocol(format!("i/o error: {e}"))
}

fn wire_err(e: WireError) -> PcpError {
    match e {
        WireError::Closed => PcpError::Disconnected,
        WireError::Io(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => PcpError::Disconnected,
        other => PcpError::Protocol(other.to_string()),
    }
}

fn unexpected(pdu: &Pdu) -> PcpError {
    PcpError::Protocol(format!("unexpected reply pdu: {pdu:?}"))
}

/// Map a server-side Error PDU onto the client error a `PcpContext`
/// caller would have seen in the same situation.
fn server_error(code: ErrorCode, detail: String) -> PcpError {
    match code {
        ErrorCode::NoSuchMetric => PcpError::NoSuchMetric(detail),
        ErrorCode::BadMetricId => PcpError::BadMetricId,
        ErrorCode::BadInstance => PcpError::BadInstance,
        ErrorCode::BadPdu
        | ErrorCode::BadVersion
        | ErrorCode::Busy
        | ErrorCode::TooLarge
        | ErrorCode::Internal => PcpError::Protocol(format!("{code:?}: {detail}")),
    }
}

/// Units interning: `MetricDesc.units` is `&'static str`; the handful of
/// unit names in this system are known, so unknown strings (which can
/// only come from a newer server) are leaked once each.
fn intern_units(units: String) -> &'static str {
    match units.as_str() {
        "byte" => "byte",
        "count" => "count",
        "second" => "second",
        "nanosecond" => "nanosecond",
        _ => Box::leak(units.into_boxed_str()),
    }
}

impl PmApi for WireClient {
    fn pm_lookup_name(&self, name: &str) -> Result<MetricId, PcpError> {
        match self.call(&Pdu::Lookup { name: name.into() })? {
            Pdu::LookupResult { id } => Ok(MetricId(id)),
            Pdu::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected(&other)),
        }
    }

    fn pm_get_desc(&self, id: MetricId) -> Result<MetricDesc, PcpError> {
        match self.call(&Pdu::Desc { id: id.0 })? {
            Pdu::DescResult {
                id,
                semantics,
                channel,
                direction,
                units,
                name,
            } => Ok(MetricDesc {
                id: MetricId(id),
                name,
                semantics: decode_semantics(semantics)
                    .ok_or_else(|| PcpError::Protocol(format!("bad semantics byte {semantics}")))?,
                units: intern_units(units),
                channel: channel as usize,
                direction: decode_direction(direction)
                    .ok_or_else(|| PcpError::Protocol(format!("bad direction byte {direction}")))?,
            }),
            Pdu::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected(&other)),
        }
    }

    fn pm_get_children(&self, prefix: &str) -> Result<Vec<String>, PcpError> {
        match self.call(&Pdu::Children {
            prefix: prefix.into(),
        })? {
            Pdu::ChildrenResult { names } => Ok(names),
            Pdu::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected(&other)),
        }
    }

    fn pm_fetch(&self, requests: &[(MetricId, InstanceId)]) -> Result<Vec<u64>, PcpError> {
        let wire_reqs: Vec<(u32, u32)> = requests.iter().map(|&(m, i)| (m.0, i.0)).collect();
        // The trace id rides the fetch PDU so the server's handling span
        // can be stitched to this client span (obs::stitch). Id handout
        // is a plain atomic and stays on even in unprofiled builds.
        let trace_id = obs::trace::next_trace_id();
        #[cfg(feature = "obs")]
        let _span = obs::span!(obs::stitch::CLIENT_FETCH_SPAN, trace_id);
        match self.call(&Pdu::Fetch {
            trace_id,
            requests: wire_reqs,
        })? {
            Pdu::FetchResult { values } => {
                if values.len() != requests.len() {
                    return Err(PcpError::Protocol(format!(
                        "fetch result width {} for {} requests",
                        values.len(),
                        requests.len()
                    )));
                }
                // None marks an invalid instance — same surface behaviour
                // as PcpContext::pm_fetch.
                values
                    .into_iter()
                    .map(|v| v.ok_or(PcpError::BadInstance))
                    .collect()
            }
            Pdu::Error { code, detail } => Err(server_error(code, detail)),
            other => Err(unexpected(&other)),
        }
    }

    // Wire fetches cost real wall-clock time, not simulated seconds, so
    // the default fetch_latency_s() of 0.0 is correct here.
}
