//! HTTP scrape sidecar: `GET /metrics` → OpenMetrics text.
//!
//! A [`ScrapeListener`] rides alongside a [`crate::PmcdServer`] and
//! serves the *same* exposition document the server answers to
//! `Pdu::Exposition` — one renderer, two transports, so `curl` and a
//! Prometheus scraper can watch the daemon without speaking the PDU
//! protocol (README "Watching it run").
//!
//! The HTTP surface is deliberately tiny: one request per connection,
//! `GET /metrics` (or `/`) answered with `200` and
//! `application/openmetrics-text`, unknown paths with `404`, non-GET
//! methods with `405`, a malformed request line with `400`, always
//! `Connection: close`. Backpressure reuses the same [`BoundedQueue`]
//! discipline as the PDU server: accepted sockets queue for a small
//! worker pool, and when the queue is full the connection is shed at
//! the door with `503` (counted by `wire.scrape.shed`).
//!
//! [`ScrapeListener::bind_handler`] generalises the route table: a
//! handler maps request-targets to [`HttpResponse`]s, which is how the
//! fleet aggregator hangs its `/debug/*` diagnostics plane (DESIGN.md
//! §16) off the same transport. Served `/debug/*` responses are
//! tallied by `wire.debug.requests` / `wire.debug.bytes`.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::pool::{BoundedQueue, Pop, PushError};
use crate::server::{exposition_text, unix_ns, PmcdServer};

/// OpenMetrics content type served with every `200`.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// What a listener serves on `GET /metrics`: any callable producing the
/// current exposition text. [`ScrapeListener::bind`] wires this to a
/// [`PmcdServer`]'s renderer; the fleet aggregator passes its merged
/// fleet document instead.
pub type ExpositionProvider = Arc<dyn Fn() -> String + Send + Sync>;

/// A route table: maps a request-target (path plus any `?query`) to a
/// response, or `None` for 404. Handlers run on listener workers, so
/// they must be cheap and must never block on locks held across I/O.
pub type RequestHandler = Arc<dyn Fn(&str) -> Option<HttpResponse> + Send + Sync>;

/// One response as produced by a [`RequestHandler`]; the listener owns
/// status-line/header framing (byte-exact `Content-Length`,
/// `Connection: close`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (`200`, `404`, ...).
    pub status: u16,
    /// Reason phrase on the status line.
    pub reason: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        HttpResponse {
            status: 200,
            reason: "OK",
            content_type,
            body,
        }
    }

    /// A plain-text response with an arbitrary status.
    pub fn text(status: u16, reason: &'static str, body: String) -> Self {
        HttpResponse {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body,
        }
    }
}

/// Largest request head (request line + headers) read before answering;
/// anything longer is malformed for this endpoint.
const MAX_REQUEST_BYTES: usize = 4096;

/// Per-connection read/write timeout — a stalled scraper must not wedge
/// a worker.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The HTTP sidecar serving a PMCD's exposition.
pub struct ScrapeListener {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<TcpStream>>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ScrapeListener {
    /// Bind next to `server` with a small default pool (2 workers, 16
    /// pending connections) — scrapes are periodic, not a fleet.
    pub fn bind<A: ToSocketAddrs>(addr: A, server: &PmcdServer) -> std::io::Result<Self> {
        Self::bind_with(addr, server, 2, 16)
    }

    /// Bind with explicit worker and pending-queue sizes.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        server: &PmcdServer,
        workers: usize,
        pending: usize,
    ) -> std::io::Result<Self> {
        let shared = server.shared();
        let provider: ExpositionProvider = Arc::new(move || exposition_text(&shared, unix_ns()));
        Self::bind_provider(addr, provider, workers, pending)
    }

    /// Bind serving an arbitrary exposition provider — the transport
    /// (accept loop, bounded queue, shed-at-the-door 503, HTTP framing)
    /// without the PMCD coupling, on the canonical `/metrics` + `/`
    /// route table.
    pub fn bind_provider<A: ToSocketAddrs>(
        addr: A,
        provider: ExpositionProvider,
        workers: usize,
        pending: usize,
    ) -> std::io::Result<Self> {
        let handler: RequestHandler = Arc::new(move |target: &str| {
            let path = target.split('?').next().unwrap_or(target);
            (path == "/metrics" || path == "/").then(|| HttpResponse::ok(CONTENT_TYPE, provider()))
        });
        Self::bind_handler(addr, handler, workers, pending)
    }

    /// Bind serving an arbitrary route table. The fleet tier serves its
    /// merged document *and* the `/debug/*` diagnostics plane through
    /// one of these.
    pub fn bind_handler<A: ToSocketAddrs>(
        addr: A,
        handler: RequestHandler,
        workers: usize,
        pending: usize,
    ) -> std::io::Result<Self> {
        assert!(workers >= 1, "scrape listener needs at least one worker");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(pending.max(1)));

        let mut out = ScrapeListener {
            local_addr,
            shutdown: Arc::clone(&shutdown),
            queue: Arc::clone(&queue),
            accept_thread: None,
            workers: Vec::with_capacity(workers),
        };
        for i in 0..workers {
            let handler = Arc::clone(&handler);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let handle = std::thread::Builder::new()
                .name(format!("pmcd-scrape-{i}"))
                .spawn(move || worker_loop(&handler, &queue, &shutdown));
            match handle {
                Ok(h) => out.workers.push(h),
                Err(e) => return Err(e),
            }
        }
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_queue = Arc::clone(&queue);
        out.accept_thread = Some(
            std::thread::Builder::new()
                .name("pmcd-scrape-accept".into())
                .spawn(move || accept_loop(listener, &accept_queue, &accept_shutdown))?,
        );
        Ok(out)
    }

    /// The address to point `curl`/Prometheus at.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, drain queued connections, join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ScrapeListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, queue: &BoundedQueue<TcpStream>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                obs::counter!("wire.scrape.requests").inc();
                match queue.try_push(stream) {
                    Ok(()) => {}
                    Err(PushError::Full(stream)) => shed(stream),
                    Err(PushError::Closed(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Queue full: answer 503 and close, mirroring the PDU server's
/// shed-at-the-door policy.
fn shed(mut stream: TcpStream) {
    obs::counter!("wire.scrape.shed").inc();
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ =
        stream.write_all(response(503, "Service Unavailable", "scraper at capacity\n").as_bytes());
}

fn worker_loop(handler: &RequestHandler, queue: &BoundedQueue<TcpStream>, shutdown: &AtomicBool) {
    loop {
        match queue.pop_timeout(Duration::from_millis(50)) {
            Pop::Item(stream) => serve_scrape(handler, stream),
            Pop::TimedOut => {
                if shutdown.load(Ordering::SeqCst) && queue.is_empty() {
                    return;
                }
            }
            Pop::Closed => return,
        }
    }
}

/// Read one request head and answer it. Never panics on client
/// misbehaviour; every path ends with the connection closed.
fn serve_scrape(handler: &RequestHandler, mut stream: TcpStream) {
    if stream.set_read_timeout(Some(IO_TIMEOUT)).is_err()
        || stream.set_write_timeout(Some(IO_TIMEOUT)).is_err()
    {
        return;
    }
    let reply = match read_request_line(&mut stream) {
        RequestLine::Get(target) => match handler(&target) {
            Some(r) => {
                if target
                    .split('?')
                    .next()
                    .unwrap_or("")
                    .starts_with("/debug/")
                {
                    obs::counter!("wire.debug.requests").inc();
                    obs::counter!("wire.debug.bytes").add(r.body.len() as u64);
                }
                frame(&r)
            }
            None => frame(&HttpResponse::text(
                404,
                "Not Found",
                format!("no route {target}\n"),
            )),
        },
        RequestLine::BadMethod(method) => frame(&HttpResponse::text(
            405,
            "Method Not Allowed",
            format!("method {method} not allowed; this endpoint is GET-only\n"),
        )),
        RequestLine::Malformed => frame(&HttpResponse::text(
            400,
            "Bad Request",
            "malformed request\n".into(),
        )),
    };
    let _ = stream.write_all(reply.as_bytes());
}

/// A classified HTTP request line.
enum RequestLine {
    /// A well-formed `GET <target> HTTP/1.x`.
    Get(String),
    /// A well-formed request line with a recognisable non-GET method
    /// token — answered `405`, not `400`, so a probing client learns
    /// the endpoint exists but is read-only.
    BadMethod(String),
    /// Anything else (truncated head, oversized head, not HTTP).
    Malformed,
}

/// Read up to the end of the request head and classify the request
/// line.
fn read_request_line(stream: &mut TcpStream) -> RequestLine {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() >= MAX_REQUEST_BYTES {
            return RequestLine::Malformed;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return RequestLine::Malformed,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let Some(request_line) = head.lines().next() else {
        return RequestLine::Malformed;
    };
    let mut parts = request_line.split(' ');
    match (parts.next(), parts.next(), parts.next()) {
        (Some("GET"), Some(path), Some(version)) if version.starts_with("HTTP/1.") => {
            RequestLine::Get(path.to_owned())
        }
        (Some(method), Some(_), Some(version))
            if version.starts_with("HTTP/1.")
                && !method.is_empty()
                && method.bytes().all(|b| b.is_ascii_uppercase()) =>
        {
            RequestLine::BadMethod(method.to_owned())
        }
        _ => RequestLine::Malformed,
    }
}

/// Frame a response on the wire: status line, headers with a byte-exact
/// `Content-Length`, and `Connection: close` (every exchange is
/// single-shot).
fn frame(r: &HttpResponse) -> String {
    format!(
        "HTTP/1.1 {} {}\r\n\
         Content-Type: {}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {}",
        r.status,
        r.reason,
        r.content_type,
        r.body.len(),
        r.body
    )
}

/// Assemble one `HTTP/1.1` response with the body and `Connection:
/// close`; 200s carry the OpenMetrics content type.
fn response(status: u16, reason: &'static str, body: &str) -> String {
    if status == 200 {
        frame(&HttpResponse::ok(CONTENT_TYPE, body.to_owned()))
    } else {
        frame(&HttpResponse::text(status, reason, body.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_frames_the_body() {
        let r = response(200, "OK", "# EOF\n");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 6\r\n"));
        assert!(r.contains(CONTENT_TYPE));
        assert!(r.ends_with("\r\n\r\n# EOF\n"));
        let nf = response(404, "Not Found", "no route /x\n");
        assert!(nf.contains("text/plain"));
    }

    #[test]
    fn content_length_counts_bytes_not_chars() {
        // A label value can carry multi-byte UTF-8; the frame must
        // advertise the byte length or a strict client truncates.
        let body = "x{k=\"h\u{00e9}\"} 1\n"; // é is 2 bytes
        let r = response(200, "OK", body);
        let expected = format!("Content-Length: {}\r\n", body.len());
        assert!(body.len() > body.chars().count());
        assert!(r.contains(&expected), "frame was: {r}");
    }

    /// One-shot HTTP GET against a real listener socket, returning
    /// (status, headers, body).
    fn http_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect scrape listener");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("send request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn listener_routes_and_frames_over_a_real_socket() {
        let provider: ExpositionProvider = Arc::new(|| "# EOF\n".to_string());
        let listener =
            ScrapeListener::bind_provider("127.0.0.1:0", provider, 1, 4).expect("bind provider");
        let addr = listener.local_addr();

        let (status, head, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        assert_eq!(body, "# EOF\n");
        assert!(head.contains(&format!("Content-Length: {}", body.len())));

        // Unknown paths are 404, not a misrouted exposition, and the
        // advertised Content-Length matches the actual body bytes.
        let (status, head, body) = http_get(addr, "/unknown/path");
        assert_eq!(status, 404);
        assert!(!body.contains("# EOF"));
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
    }

    /// One-shot request with an arbitrary request line.
    fn http_raw(addr: SocketAddr, request_line: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect scrape listener");
        stream
            .write_all(format!("{request_line}\r\nHost: t\r\n\r\n").as_bytes())
            .expect("send request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn non_get_methods_get_405_not_400() {
        let provider: ExpositionProvider = Arc::new(|| "# EOF\n".to_string());
        let listener =
            ScrapeListener::bind_provider("127.0.0.1:0", provider, 1, 4).expect("bind provider");
        let addr = listener.local_addr();

        for method in ["POST", "PUT", "DELETE", "HEAD", "OPTIONS"] {
            let (status, _, body) = http_raw(addr, &format!("{method} /metrics HTTP/1.1"));
            assert_eq!(status, 405, "{method} must be rejected as a method");
            assert!(body.contains(method), "{method} named in the 405 body");
        }
        // Garbage that isn't a plausible method token stays 400.
        let (status, _, _) = http_raw(addr, "get /metrics HTTP/1.1");
        assert_eq!(status, 400);
        let (status, _, _) = http_raw(addr, "TOTALLY BOGUS");
        assert_eq!(status, 400);
    }

    #[test]
    fn handler_routes_debug_endpoints_with_byte_exact_content_length() {
        // A /debug body with multi-byte UTF-8: the advertised
        // Content-Length must count bytes, or strict clients truncate.
        let debug_body = "pass 1: stragg\u{00e9}r tellico-0007 \u{2014} 42 ns\n";
        assert!(debug_body.len() > debug_body.chars().count());
        let routed = debug_body.to_string();
        let handler: RequestHandler = Arc::new(move |target: &str| match target {
            "/metrics" => Some(HttpResponse::ok(CONTENT_TYPE, "# EOF\n".into())),
            "/debug/passes" => Some(HttpResponse::text(200, "OK", routed.clone())),
            _ => None,
        });
        let listener =
            ScrapeListener::bind_handler("127.0.0.1:0", handler, 1, 4).expect("bind handler");
        let addr = listener.local_addr();

        let (status, head, body) = http_get(addr, "/debug/passes");
        assert_eq!(status, 200);
        assert_eq!(body, debug_body);
        assert!(
            head.contains(&format!("Content-Length: {}\r", debug_body.len())),
            "byte-exact Content-Length missing from: {head}"
        );

        let (status, _, _) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        let (status, _, _) = http_get(addr, "/debug/unknown");
        assert_eq!(status, 404);
    }
}
