//! HTTP scrape sidecar: `GET /metrics` → OpenMetrics text.
//!
//! A [`ScrapeListener`] rides alongside a [`crate::PmcdServer`] and
//! serves the *same* exposition document the server answers to
//! `Pdu::Exposition` — one renderer, two transports, so `curl` and a
//! Prometheus scraper can watch the daemon without speaking the PDU
//! protocol (README "Watching it run").
//!
//! The HTTP surface is deliberately tiny: one request per connection,
//! `GET /metrics` (or `/`) answered with `200` and
//! `application/openmetrics-text`, anything else with `404`, a
//! malformed request line with `400`, always `Connection: close`.
//! Backpressure reuses the same [`BoundedQueue`] discipline as the PDU
//! server: accepted sockets queue for a small worker pool, and when the
//! queue is full the connection is shed at the door with `503` (counted
//! by `wire.scrape.shed`).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::pool::{BoundedQueue, Pop, PushError};
use crate::server::{exposition_text, unix_ns, PmcdServer};

/// OpenMetrics content type served with every `200`.
pub const CONTENT_TYPE: &str = "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// What a listener serves on `GET /metrics`: any callable producing the
/// current exposition text. [`ScrapeListener::bind`] wires this to a
/// [`PmcdServer`]'s renderer; the fleet aggregator passes its merged
/// fleet document instead.
pub type ExpositionProvider = Arc<dyn Fn() -> String + Send + Sync>;

/// Largest request head (request line + headers) read before answering;
/// anything longer is malformed for this endpoint.
const MAX_REQUEST_BYTES: usize = 4096;

/// Per-connection read/write timeout — a stalled scraper must not wedge
/// a worker.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// The HTTP sidecar serving a PMCD's exposition.
pub struct ScrapeListener {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<TcpStream>>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ScrapeListener {
    /// Bind next to `server` with a small default pool (2 workers, 16
    /// pending connections) — scrapes are periodic, not a fleet.
    pub fn bind<A: ToSocketAddrs>(addr: A, server: &PmcdServer) -> std::io::Result<Self> {
        Self::bind_with(addr, server, 2, 16)
    }

    /// Bind with explicit worker and pending-queue sizes.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        server: &PmcdServer,
        workers: usize,
        pending: usize,
    ) -> std::io::Result<Self> {
        let shared = server.shared();
        let provider: ExpositionProvider = Arc::new(move || exposition_text(&shared, unix_ns()));
        Self::bind_provider(addr, provider, workers, pending)
    }

    /// Bind serving an arbitrary exposition provider — the transport
    /// (accept loop, bounded queue, shed-at-the-door 503, HTTP framing)
    /// without the PMCD coupling. The fleet tier serves its merged
    /// document through this.
    pub fn bind_provider<A: ToSocketAddrs>(
        addr: A,
        provider: ExpositionProvider,
        workers: usize,
        pending: usize,
    ) -> std::io::Result<Self> {
        assert!(workers >= 1, "scrape listener needs at least one worker");
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(pending.max(1)));

        let mut out = ScrapeListener {
            local_addr,
            shutdown: Arc::clone(&shutdown),
            queue: Arc::clone(&queue),
            accept_thread: None,
            workers: Vec::with_capacity(workers),
        };
        for i in 0..workers {
            let provider = Arc::clone(&provider);
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let handle = std::thread::Builder::new()
                .name(format!("pmcd-scrape-{i}"))
                .spawn(move || worker_loop(&provider, &queue, &shutdown));
            match handle {
                Ok(h) => out.workers.push(h),
                Err(e) => return Err(e),
            }
        }
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_queue = Arc::clone(&queue);
        out.accept_thread = Some(
            std::thread::Builder::new()
                .name("pmcd-scrape-accept".into())
                .spawn(move || accept_loop(listener, &accept_queue, &accept_shutdown))?,
        );
        Ok(out)
    }

    /// The address to point `curl`/Prometheus at.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, drain queued connections, join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ScrapeListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, queue: &BoundedQueue<TcpStream>, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                obs::counter!("wire.scrape.requests").inc();
                match queue.try_push(stream) {
                    Ok(()) => {}
                    Err(PushError::Full(stream)) => shed(stream),
                    Err(PushError::Closed(_)) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Queue full: answer 503 and close, mirroring the PDU server's
/// shed-at-the-door policy.
fn shed(mut stream: TcpStream) {
    obs::counter!("wire.scrape.shed").inc();
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let _ =
        stream.write_all(response(503, "Service Unavailable", "scraper at capacity\n").as_bytes());
}

fn worker_loop(
    provider: &ExpositionProvider,
    queue: &BoundedQueue<TcpStream>,
    shutdown: &AtomicBool,
) {
    loop {
        match queue.pop_timeout(Duration::from_millis(50)) {
            Pop::Item(stream) => serve_scrape(provider, stream),
            Pop::TimedOut => {
                if shutdown.load(Ordering::SeqCst) && queue.is_empty() {
                    return;
                }
            }
            Pop::Closed => return,
        }
    }
}

/// Read one request head and answer it. Never panics on client
/// misbehaviour; every path ends with the connection closed.
fn serve_scrape(provider: &ExpositionProvider, mut stream: TcpStream) {
    if stream.set_read_timeout(Some(IO_TIMEOUT)).is_err()
        || stream.set_write_timeout(Some(IO_TIMEOUT)).is_err()
    {
        return;
    }
    let reply = match read_request_path(&mut stream) {
        Some(path) if path == "/metrics" || path == "/" => {
            let body = provider();
            response(200, "OK", &body)
        }
        Some(path) => response(404, "Not Found", &format!("no route {path}\n")),
        None => response(400, "Bad Request", "malformed request\n"),
    };
    let _ = stream.write_all(reply.as_bytes());
}

/// Read up to the end of the request head and return the request-target
/// of a well-formed `GET`; `None` for anything else.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() >= MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split(' ');
    match (parts.next(), parts.next(), parts.next()) {
        (Some("GET"), Some(path), Some(version)) if version.starts_with("HTTP/1.") => {
            Some(path.to_owned())
        }
        _ => None,
    }
}

/// Assemble one `HTTP/1.1` response with the body and `Connection:
/// close` (every exchange is single-shot).
fn response(status: u16, reason: &str, body: &str) -> String {
    let content_type = if status == 200 {
        CONTENT_TYPE
    } else {
        "text/plain; charset=utf-8"
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_frames_the_body() {
        let r = response(200, "OK", "# EOF\n");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 6\r\n"));
        assert!(r.contains(CONTENT_TYPE));
        assert!(r.ends_with("\r\n\r\n# EOF\n"));
        let nf = response(404, "Not Found", "no route /x\n");
        assert!(nf.contains("text/plain"));
    }

    #[test]
    fn content_length_counts_bytes_not_chars() {
        // A label value can carry multi-byte UTF-8; the frame must
        // advertise the byte length or a strict client truncates.
        let body = "x{k=\"h\u{00e9}\"} 1\n"; // é is 2 bytes
        let r = response(200, "OK", body);
        let expected = format!("Content-Length: {}\r\n", body.len());
        assert!(body.len() > body.chars().count());
        assert!(r.contains(&expected), "frame was: {r}");
    }

    /// One-shot HTTP GET against a real listener socket, returning
    /// (status, headers, body).
    fn http_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect scrape listener");
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
            .expect("send request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
        let status: u16 = head
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        (status, head.to_string(), body.to_string())
    }

    #[test]
    fn listener_routes_and_frames_over_a_real_socket() {
        let provider: ExpositionProvider = Arc::new(|| "# EOF\n".to_string());
        let listener =
            ScrapeListener::bind_provider("127.0.0.1:0", provider, 1, 4).expect("bind provider");
        let addr = listener.local_addr();

        let (status, head, body) = http_get(addr, "/metrics");
        assert_eq!(status, 200);
        assert_eq!(body, "# EOF\n");
        assert!(head.contains(&format!("Content-Length: {}", body.len())));

        // Unknown paths are 404, not a misrouted exposition, and the
        // advertised Content-Length matches the actual body bytes.
        let (status, head, body) = http_get(addr, "/unknown/path");
        assert_eq!(status, 404);
        assert!(!body.contains("# EOF"));
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
    }
}
