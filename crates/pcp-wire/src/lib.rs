//! # pcp-wire — a real networked PMCD
//!
//! The in-process daemon of `pcp-sim` models PCP's indirection with a
//! constant latency knob. This crate makes the indirection *real*: the
//! Performance Metrics Collector Daemon becomes a TCP server speaking a
//! length-prefixed binary PDU protocol (a trimmed mirror of PCP's
//! CREDS/LOOKUP/DESC/INSTANCE/FETCH/ERROR PDU set), and clients pay an
//! actual socket round-trip per fetch instead of an assumed 80 µs.
//!
//! * [`pdu`] — the versioned frame codec. Decoding is defensive: frames
//!   with a bad magic, unknown version, oversized length, or truncated
//!   payload are rejected with an error, never a panic or an unbounded
//!   allocation.
//! * [`server`] — [`PmcdServer`]: accepts on a `TcpListener`, serves each
//!   client from a bounded worker pool with read/write timeouts and
//!   per-fetch batch limits (backpressure), survives malformed input and
//!   mid-request disconnects, shuts down gracefully, and exports its own
//!   operational counters (`pmcd.*`) through the same PMNS it serves —
//!   the daemon profiles itself.
//! * [`pool`] — [`BoundedQueue`]: the worker-pool connection queue. Its
//!   mutex/condvar come from the vendored loom shim under `--cfg loom`,
//!   so `tests/loom_pool.rs` can model-check the accept/shutdown path
//!   (bounded Busy rejection, graceful drain-then-join).
//! * [`scrape`] — [`ScrapeListener`]: an HTTP sidecar serving the same
//!   OpenMetrics exposition as `Pdu::Exposition`, so `curl` and
//!   Prometheus can watch the daemon without speaking PDUs.
//! * [`client`] — [`WireClient`]: implements `pcp_sim::PmApi`, so the
//!   PAPI PCP component runs against either transport unchanged.
//! * [`logger`] — [`SamplingScheduler`]: the `pmlogger` analogue. A
//!   background thread snapshots configured metric sets at fixed
//!   wall-clock cadences into `pcp_sim::Archive`s.
//!
//! Everything is `std`-only (threads + `std::net`); the crate builds and
//! tests hermetically with no external dependencies and no tokio.

pub mod client;
pub mod logger;
pub mod pdu;
pub mod pool;
pub mod scrape;
pub mod server;

pub use client::WireClient;
pub use logger::{SamplingScheduler, ScheduleSpec};
pub use pdu::{ErrorCode, Pdu, PduError, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
pub use pool::BoundedQueue;
pub use scrape::ScrapeListener;
pub use server::{PmcdServer, ServerError, StatsSnapshot, WireConfig};
