//! The networked PMCD: a multi-client TCP server over the PDU protocol.
//!
//! Architecture (std only, no async runtime):
//!
//! * an **accept thread** runs a nonblocking `TcpListener` poll loop. New
//!   connections go into a bounded queue; when every worker is busy and
//!   the queue is full the server answers `Error{Busy}` and closes — load
//!   is shed at the door instead of queueing unboundedly.
//! * a **bounded worker pool** (default 32 threads) pulls connections off
//!   the queue. One worker serves one client at a time, request by
//!   request, so each client has at most one fetch in flight; batch size
//!   is additionally capped by [`WireConfig::max_fetch_batch`]. That pair
//!   of bounds is the backpressure story.
//! * every socket read carries a **timeout tick** so workers notice the
//!   shutdown flag promptly; [`PmcdServer::shutdown`] stops the accept
//!   loop, drains the workers, and joins every thread.
//! * a malformed PDU earns the offending client an `Error{BadPdu}` and a
//!   closed connection — other clients are unaffected, the server stays
//!   up. Disconnects mid-request are absorbed the same way.
//!
//! The server also measures *itself*: PDU counts, client counts, and a
//! fetch-latency histogram are exported as `pmcd.*` metrics through the
//! same lookup/fetch path as the nest counters (ids in a reserved high
//! range so they cannot collide with the PMNS table).

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use p9_memsim::machine::SocketShared;
use p9_memsim::{Direction, PrivilegeError, PrivilegeToken};
use pcp_sim::pmns::{InstanceId, MetricId, MetricSemantics, Pmns};
use pcp_sim::selfmetrics::{self, LATENCY_BUCKETS};

use crate::pdu::{
    read_pdu, write_pdu, ErrorCode, Pdu, WireError, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use crate::pool::{BoundedQueue, Pop, PushError};

/// Base of the reserved id range for the server's self-metrics. The PMNS
/// table indexes from zero, so anything at or above this base is a
/// `pmcd.*` operational metric. (Shared with the in-process daemon.)
pub const SELF_METRIC_BASE: u32 = selfmetrics::SELF_METRIC_BASE;

/// Base of the reserved id range for the `pmcd.obs.*` export of the
/// process-wide obs metric registry.
pub const OBS_METRIC_BASE: u32 = selfmetrics::OBS_METRIC_BASE;

/// Self-metric table: name, units, semantics. The fetch-latency `lt_*`
/// entries are cumulative counts below power-of-two nanosecond
/// thresholds, read out of the log2 histogram
/// (`pcp_sim::selfmetrics::LATENCY_BUCKETS` — a test pins agreement).
const SELF_METRICS: [(&str, &str, MetricSemantics); 15] = [
    ("pmcd.pdu.in", "count", MetricSemantics::Counter),
    ("pmcd.pdu.out", "count", MetricSemantics::Counter),
    ("pmcd.pdu.error", "count", MetricSemantics::Counter),
    ("pmcd.client.current", "count", MetricSemantics::Instant),
    ("pmcd.client.total", "count", MetricSemantics::Counter),
    ("pmcd.client.rejected", "count", MetricSemantics::Counter),
    ("pmcd.fetch.count", "count", MetricSemantics::Counter),
    (
        "pmcd.fetch.latency_ns.sum",
        "nanosecond",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_1024",
        "count",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_16384",
        "count",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_131072",
        "count",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_1048576",
        "count",
        MetricSemantics::Counter,
    ),
    (
        "pmcd.fetch.latency_ns.lt_16777216",
        "count",
        MetricSemantics::Counter,
    ),
    ("pmcd.queue.depth", "count", MetricSemantics::Instant),
    ("pmcd.queue.shed", "count", MetricSemantics::Counter),
];
// `pmcd.fetch.count` doubles as the +inf bucket: every fetch lands in it.

/// [`SELF_METRICS`] index of the first latency bucket.
const LATENCY_BUCKET_IDX: usize = 8;
/// [`SELF_METRICS`] index of `pmcd.queue.depth` (answered from the
/// connection queue, not from [`ServerStats`]).
const QUEUE_DEPTH_IDX: usize = 13;
/// [`SELF_METRICS`] index of `pmcd.queue.shed`.
const QUEUE_SHED_IDX: usize = 14;

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct WireConfig {
    /// Worker threads — the maximum number of simultaneously served
    /// clients.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// server starts answering `Error{Busy}`.
    pub pending: usize,
    /// Per-read timeout tick. Bounds how long a worker can ignore the
    /// shutdown flag; not an idle-disconnect timeout.
    pub read_timeout: Duration,
    /// Per-write timeout; a client that stops draining its socket is
    /// disconnected rather than wedging a worker.
    pub write_timeout: Duration,
    /// Largest PDU payload accepted from a client.
    pub max_payload: u32,
    /// Largest number of `(metric, instance)` pairs in one fetch.
    pub max_fetch_batch: usize,
    /// Inject daemon memory traffic on each nest-counter fetch (the
    /// observer-effect knob, as in `pcp_sim::PmcdConfig`).
    pub fetch_touch: bool,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            workers: 32,
            pending: 64,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(2),
            max_payload: crate::pdu::DEFAULT_MAX_PAYLOAD,
            max_fetch_batch: 1024,
            fetch_touch: false,
        }
    }
}

/// Operational counters, updated lock-free by the workers.
#[derive(Default)]
struct ServerStats {
    pdu_in: AtomicU64,
    pdu_out: AtomicU64,
    pdu_err: AtomicU64,
    clients_current: AtomicU64,
    clients_total: AtomicU64,
    clients_rejected: AtomicU64,
    /// Fetch service times, log2-bucketed. Count and sum are read from
    /// the histogram — there are no separate counters to drift from it.
    fetch_hist: obs::Histogram,
}

/// Increment one operational counter, returning the previous value.
#[inline]
fn bump(counter: &AtomicU64) -> u64 {
    // relaxed-ok: operational statistics; readers tolerate staleness and
    // no other memory is published through these counters.
    counter.fetch_add(1, Ordering::Relaxed)
}

/// Read one operational counter.
#[inline]
fn peek(counter: &AtomicU64) -> u64 {
    // relaxed-ok: statistic read; consumers expect free-running values.
    counter.load(Ordering::Relaxed)
}

impl ServerStats {
    fn record_fetch(&self, elapsed: Duration) {
        self.fetch_hist
            .record(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Value of self-metric `idx` (index into [`SELF_METRICS`]).
    /// Latency buckets read cumulatively from the log2 histogram.
    /// The queue metrics (13/14) are answered in `fetch_one`, which can
    /// see the connection queue.
    fn value(&self, idx: usize) -> Option<u64> {
        Some(match idx {
            0 => peek(&self.pdu_in),
            1 => peek(&self.pdu_out),
            2 => peek(&self.pdu_err),
            3 => peek(&self.clients_current),
            4 => peek(&self.clients_total),
            5 => peek(&self.clients_rejected),
            6 => self.fetch_hist.snapshot().count(),
            7 => self.fetch_hist.snapshot().sum,
            8..=12 => self
                .fetch_hist
                .snapshot()
                .count_below_pow2(LATENCY_BUCKETS[idx - LATENCY_BUCKET_IDX].0),
            _ => return None,
        })
    }

    fn snapshot(&self) -> StatsSnapshot {
        let fetch_latency = self.fetch_hist.snapshot();
        StatsSnapshot {
            pdu_in: peek(&self.pdu_in),
            pdu_out: peek(&self.pdu_out),
            pdu_error: peek(&self.pdu_err),
            clients_current: peek(&self.clients_current),
            clients_total: peek(&self.clients_total),
            clients_rejected: peek(&self.clients_rejected),
            fetch_count: fetch_latency.count(),
            fetch_latency_ns_sum: fetch_latency.sum,
            fetch_latency,
        }
    }
}

/// A point-in-time copy of the server's operational counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub pdu_in: u64,
    pub pdu_out: u64,
    pub pdu_error: u64,
    pub clients_current: u64,
    pub clients_total: u64,
    pub clients_rejected: u64,
    pub fetch_count: u64,
    pub fetch_latency_ns_sum: u64,
    /// Full log2-bucket fetch service-time distribution. Mergeable
    /// across servers; quantiles via [`obs::HistSnapshot::quantile`].
    pub fetch_latency: obs::HistSnapshot,
}

/// Everything a worker needs to answer requests.
pub(crate) struct Shared {
    pmns: Pmns,
    sockets: Vec<Arc<SocketShared>>,
    config: WireConfig,
    stats: ServerStats,
    /// The accept queue, visible to workers so `pmcd.queue.depth` can be
    /// fetched like any other metric.
    queue: Arc<BoundedQueue<TcpStream>>,
    /// Registry exported as `pmcd.obs.*`: the process-global one by
    /// default, or a private registry when many servers share one
    /// process (the fleet simulator gives each host its own so host
    /// expositions stay independent and deterministic).
    registry: Option<Arc<obs::Registry>>,
    shutdown: AtomicBool,
}

impl Shared {
    /// Snapshot whichever obs registry this server exports.
    fn obs_snapshot(&self, t_ns: u64) -> obs::Snapshot {
        match &self.registry {
            Some(reg) => obs::Snapshot::take(reg, t_ns),
            None => obs::Snapshot::take_global(t_ns),
        }
    }
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServerError {
    /// The caller's token lacks elevation — binding the PMCD is the
    /// privileged side of the export.
    Privilege(PrivilegeError),
    /// Binding the listener or spawning a thread failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Privilege(e) => write!(f, "privilege: {e}"),
            ServerError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Privilege(e) => Some(e),
            ServerError::Io(e) => Some(e),
        }
    }
}

impl From<PrivilegeError> for ServerError {
    fn from(e: PrivilegeError) -> Self {
        ServerError::Privilege(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

/// The networked PMCD. Binding requires elevation, exactly like spawning
/// the in-process daemon — the server is the privileged side of the
/// export.
pub struct PmcdServer {
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<TcpStream>>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl PmcdServer {
    /// Bind and start serving. `addr` is typically `127.0.0.1:0` (the
    /// chosen port is available from [`PmcdServer::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        pmns: Pmns,
        sockets: Vec<Arc<SocketShared>>,
        token: &PrivilegeToken,
        config: WireConfig,
    ) -> Result<Self, ServerError> {
        Self::bind_with_registry(addr, pmns, sockets, token, config, None)
    }

    /// [`PmcdServer::bind`], but exporting `registry` as `pmcd.obs.*`
    /// instead of the process-global obs registry. The fleet simulator
    /// runs hundreds of servers in one process; a private registry per
    /// server keeps each host's exposition independent of its
    /// neighbours (and of the test harness's own instrumentation).
    pub fn bind_with_registry<A: ToSocketAddrs>(
        addr: A,
        pmns: Pmns,
        sockets: Vec<Arc<SocketShared>>,
        token: &PrivilegeToken,
        config: WireConfig,
        registry: Option<Arc<obs::Registry>>,
    ) -> Result<Self, ServerError> {
        token.require_elevated()?;
        assert!(config.workers >= 1, "server needs at least one worker");
        assert!(config.max_fetch_batch >= 1);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let queue = Arc::new(BoundedQueue::new(config.pending));
        let shared = Arc::new(Shared {
            pmns,
            sockets,
            config: config.clone(),
            stats: ServerStats::default(),
            queue: Arc::clone(&queue),
            registry,
            shutdown: AtomicBool::new(false),
        });

        let mut server = PmcdServer {
            shared: Arc::clone(&shared),
            queue: Arc::clone(&queue),
            local_addr,
            accept_thread: None,
            workers: Vec::with_capacity(config.workers),
        };

        for i in 0..config.workers {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&queue);
            let handle = std::thread::Builder::new()
                .name(format!("pmcd-worker-{i}"))
                .spawn(move || worker_loop(shared, queue));
            match handle {
                Ok(h) => server.workers.push(h),
                // Partial construction: `server` drops here, which joins
                // the workers already spawned.
                Err(e) => return Err(ServerError::Io(e)),
            }
        }

        let accept_shared = Arc::clone(&shared);
        let accept_queue = Arc::clone(&queue);
        let accept_thread = std::thread::Builder::new()
            .name("pmcd-accept".into())
            .spawn(move || accept_loop(listener, accept_shared, accept_queue))
            .map_err(ServerError::Io)?;
        server.accept_thread = Some(accept_thread);

        Ok(server)
    }

    /// Bind as the *system* would (mints the elevated token itself) —
    /// mirrors `Pmcd::spawn_system`. Privilege cannot fail here, but the
    /// bind or thread spawns still can.
    pub fn bind_system<A: ToSocketAddrs>(
        addr: A,
        pmns: Pmns,
        sockets: Vec<Arc<SocketShared>>,
        config: WireConfig,
    ) -> Result<Self, ServerError> {
        Self::bind(addr, pmns, sockets, &PrivilegeToken::elevated(), config)
    }

    /// [`PmcdServer::bind_system`] with a private obs registry (see
    /// [`PmcdServer::bind_with_registry`]).
    pub fn bind_system_with_registry<A: ToSocketAddrs>(
        addr: A,
        pmns: Pmns,
        sockets: Vec<Arc<SocketShared>>,
        config: WireConfig,
        registry: Option<Arc<obs::Registry>>,
    ) -> Result<Self, ServerError> {
        Self::bind_with_registry(
            addr,
            pmns,
            sockets,
            &PrivilegeToken::elevated(),
            config,
            registry,
        )
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current operational counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Connections currently waiting for a free worker (also fetchable
    /// by any client as `pmcd.queue.depth`).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The OpenMetrics exposition this server would serve right now —
    /// the same renderer that answers `Pdu::Exposition` and the HTTP
    /// scrape listener, so an in-process call and a TCP scrape agree
    /// byte for byte modulo the `# scrape_ts_ns` header.
    pub fn exposition(&self) -> String {
        exposition_text(&self.shared, unix_ns())
    }

    /// Shared state handle for sidecar listeners (see
    /// [`crate::scrape::ScrapeListener`]).
    pub(crate) fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Stop accepting, finish in-flight requests, join every thread.
    /// Already-queued connections are still served (graceful drain).
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // With the accept loop gone nothing produces any more; closing
        // lets workers drain the backlog and then exit.
        self.queue.close();
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for PmcdServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, queue: Arc<BoundedQueue<TcpStream>>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => match queue.try_push(stream) {
                Ok(()) => {}
                Err(PushError::Full(stream)) => reject_busy(&shared, stream),
                Err(PushError::Closed(_)) => break,
            },
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Shed load at the door: tell the client we are saturated and close.
fn reject_busy(shared: &Shared, mut stream: TcpStream) {
    bump(&shared.stats.clients_rejected);
    #[cfg(feature = "obs")]
    obs::instant!("pmcd.shed", shared.queue.len() as u64);
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let frame = Pdu::Error {
        code: ErrorCode::Busy,
        detail: "server at capacity".into(),
    }
    .encode();
    let _ = stream.write_all(&frame);
}

fn worker_loop(shared: Arc<Shared>, queue: Arc<BoundedQueue<TcpStream>>) {
    loop {
        match queue.pop_timeout(Duration::from_millis(50)) {
            Pop::Item(stream) => serve_client(&shared, stream),
            Pop::TimedOut => {
                if shared.shutdown.load(Ordering::SeqCst) && queue.is_empty() {
                    return;
                }
            }
            Pop::Closed => return,
        }
    }
}

/// Serve one client connection to completion. Never panics on client
/// misbehaviour: malformed frames, oversized lengths, and mid-request
/// disconnects all end *this* connection only.
fn serve_client(shared: &Shared, stream: TcpStream) {
    let stats = &shared.stats;
    bump(&stats.clients_current);
    let client_id = bump(&stats.clients_total) + 1;
    #[cfg(feature = "obs")]
    let _client_span = obs::span!("pmcd.client", client_id);
    serve_client_inner(shared, stream, client_id);
    // relaxed-ok: statistic decrement, pairs with the bump above.
    stats.clients_current.fetch_sub(1, Ordering::Relaxed);
}

fn serve_client_inner(shared: &Shared, mut stream: TcpStream, client_id: u64) {
    let cfg = &shared.config;
    let stats = &shared.stats;
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
        || stream.set_nodelay(true).is_err()
    {
        return;
    }

    let mut handshaken = false;
    loop {
        let pdu = match read_pdu(&mut stream, cfg.max_payload) {
            Ok(pdu) => pdu,
            Err(WireError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(WireError::Closed) | Err(WireError::Io(_)) => return,
            Err(WireError::Stalled) => {
                // Half a frame then silence: the stream cannot be
                // resynchronised, and the worker must not stay wedged.
                bump(&stats.pdu_err);
                let _ = write_pdu(
                    &mut stream,
                    &Pdu::Error {
                        code: ErrorCode::BadPdu,
                        detail: "stalled mid-frame".into(),
                    },
                );
                return;
            }
            Err(WireError::Pdu(e)) => {
                // Malformed input: tell the client why, then hang up.
                bump(&stats.pdu_err);
                let _ = write_pdu(
                    &mut stream,
                    &Pdu::Error {
                        code: ErrorCode::BadPdu,
                        detail: e.to_string(),
                    },
                );
                return;
            }
        };
        bump(&stats.pdu_in);
        // One span per served request: read to reply written. Dropped at
        // the bottom of this loop iteration, before the next blocking
        // read (which would otherwise dominate every trace).
        #[cfg(feature = "obs")]
        let _request_span = obs::span!("pmcd.request", client_id);

        // The CREDS exchange must come first and exactly once.
        let reply = if !handshaken {
            match pdu {
                Pdu::Creds { version }
                    if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
                {
                    handshaken = true;
                    // Echo the client's version: a v2 peer keeps
                    // speaking v2 (v3 only adds an optional trailing
                    // field, so no downgrade logic is needed).
                    Pdu::CredsAck { version, client_id }
                }
                Pdu::Creds { version } => Pdu::Error {
                    code: ErrorCode::BadVersion,
                    detail: format!(
                        "server speaks versions {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}, \
                         client sent {version}"
                    ),
                },
                _ => Pdu::Error {
                    code: ErrorCode::BadPdu,
                    detail: "first pdu must be CREDS".into(),
                },
            }
        } else {
            handle_request(shared, pdu)
        };

        let fatal = matches!(
            reply,
            Pdu::Error {
                code: ErrorCode::BadPdu | ErrorCode::BadVersion,
                ..
            }
        );
        if matches!(reply, Pdu::Error { .. }) {
            bump(&stats.pdu_err);
        }
        if write_pdu(&mut stream, &reply).is_err() {
            return; // client went away mid-reply
        }
        bump(&stats.pdu_out);
        if fatal {
            return;
        }
    }
}

/// Answer one post-handshake request.
fn handle_request(shared: &Shared, pdu: Pdu) -> Pdu {
    let pmns = &shared.pmns;
    match pdu {
        Pdu::Lookup { name } => {
            if let Some(id) = pmns.lookup(&name) {
                Pdu::LookupResult { id: id.0 }
            } else if let Some(idx) = SELF_METRICS.iter().position(|(n, _, _)| *n == name) {
                Pdu::LookupResult {
                    id: SELF_METRIC_BASE + idx as u32,
                }
            } else if let Some(id) = selfmetrics::obs_lookup(&name) {
                Pdu::LookupResult { id: id.0 }
            } else {
                Pdu::Error {
                    code: ErrorCode::NoSuchMetric,
                    detail: name,
                }
            }
        }
        Pdu::Desc { id } => {
            if id >= OBS_METRIC_BASE {
                match selfmetrics::obs_desc(MetricId(id)) {
                    Some(desc) => Pdu::DescResult {
                        id,
                        semantics: encode_semantics(desc.semantics),
                        channel: 0,
                        direction: 0,
                        units: desc.units.into(),
                        name: desc.name,
                    },
                    None => bad_metric(id),
                }
            } else if id >= SELF_METRIC_BASE {
                let idx = (id - SELF_METRIC_BASE) as usize;
                match SELF_METRICS.get(idx) {
                    Some(&(name, units, semantics)) => Pdu::DescResult {
                        id,
                        semantics: encode_semantics(semantics),
                        channel: 0,
                        direction: 0,
                        units: units.into(),
                        name: name.into(),
                    },
                    None => bad_metric(id),
                }
            } else {
                match pmns.desc(MetricId(id)) {
                    Some(desc) => Pdu::DescResult {
                        id,
                        semantics: encode_semantics(desc.semantics),
                        channel: desc.channel as u32,
                        direction: encode_direction(desc.direction),
                        units: desc.units.into(),
                        name: desc.name.clone(),
                    },
                    None => bad_metric(id),
                }
            }
        }
        Pdu::Children { prefix } => {
            let mut names: Vec<String> = pmns
                .children(&prefix)
                .into_iter()
                .map(str::to_owned)
                .collect();
            names.extend(
                SELF_METRICS
                    .iter()
                    .filter(|(n, _, _)| prefix.is_empty() || n.starts_with(prefix.as_str()))
                    .map(|(n, _, _)| (*n).to_owned()),
            );
            names.extend(selfmetrics::obs_children(&prefix));
            Pdu::ChildrenResult { names }
        }
        Pdu::Instance => Pdu::InstanceResult {
            num_cpus: pmns.num_instances(),
            nest_cpus: pmns.nest_cpus().to_vec(),
        },
        Pdu::Fetch { trace_id, requests } => {
            // Echo the client's trace id as the span argument so the
            // drained rings stitch into one cross-process critical path
            // (obs::stitch matches client/server spans by this arg).
            #[cfg(feature = "obs")]
            let _server_span = obs::span!(obs::stitch::SERVER_FETCH_SPAN, trace_id);
            #[cfg(not(feature = "obs"))]
            let _ = trace_id;
            if requests.len() > shared.config.max_fetch_batch {
                return Pdu::Error {
                    code: ErrorCode::TooLarge,
                    detail: format!(
                        "fetch batch of {} exceeds limit {}",
                        requests.len(),
                        shared.config.max_fetch_batch
                    ),
                };
            }
            let start = Instant::now();
            // One registry snapshot answers every `pmcd.obs.*` id in the
            // batch: re-exporting per request would let counters advance
            // mid-fetch and return torn batches (count moved, sum not).
            let mut obs_snap: Option<obs::Snapshot> = None;
            let values = {
                #[cfg(feature = "obs")]
                let _fetch_span = obs::span!("pmcd.fetch", requests.len());
                requests
                    .iter()
                    .map(|&(id, inst)| fetch_one(shared, id, inst, &mut obs_snap))
                    .collect()
            };
            shared.stats.record_fetch(start.elapsed());
            Pdu::FetchResult { values }
        }
        Pdu::Exposition { trace_id } => {
            // Echo the scrape's fan-out child id as the render span's
            // arg so an aggregator's FanoutTrace charges this host's
            // server-side render time to the right slot (matched by
            // arg, so per-host clock skew cannot break the stitch).
            #[cfg(feature = "obs")]
            let _render_span =
                (trace_id != 0).then(|| obs::span!(obs::stitch::SERVER_SCRAPE_SPAN, trace_id));
            #[cfg(not(feature = "obs"))]
            let _ = trace_id;
            Pdu::ExpositionResult {
                text: exposition_text(shared, unix_ns()),
            }
        }
        // Anything else is a server-to-client PDU arriving backwards.
        other => Pdu::Error {
            code: ErrorCode::BadPdu,
            detail: format!("unexpected pdu {other:?}"),
        },
    }
}

fn bad_metric(id: u32) -> Pdu {
    Pdu::Error {
        code: ErrorCode::BadMetricId,
        detail: format!("metric id {id}"),
    }
}

/// Wall-clock nanoseconds since the Unix epoch, for the scrape
/// timestamp header.
pub(crate) fn unix_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Render the server's merged OpenMetrics exposition: the wire
/// self-metric table (queue gauges answered live from the accept
/// queue), then the process-wide obs registry under `pmcd.obs.`.
/// Exactly the document served to `Pdu::Exposition` and to the HTTP
/// scrape listener, so in-process and over-the-wire scrapes are
/// byte-identical modulo the `# scrape_ts_ns` header.
pub(crate) fn exposition_text(shared: &Shared, scrape_ts_ns: u64) -> String {
    use obs::openmetrics::{sanitize, MetricKind, OmSample, Value};
    // One Snapshot pairs the scalars with the scrape timestamp — the
    // same snapshot→samples path the store ingest and the archive
    // scheduler use, so every consumer stamps a registry read the same
    // way by construction.
    let snap = shared.obs_snapshot(scrape_ts_ns);
    let export = snap.scalars;
    let mut samples: Vec<OmSample> = Vec::with_capacity(SELF_METRICS.len() + export.len());
    for (idx, &(name, _units, semantics)) in SELF_METRICS.iter().enumerate() {
        let value = match idx {
            QUEUE_DEPTH_IDX => shared.queue.len() as u64,
            QUEUE_SHED_IDX => peek(&shared.stats.clients_rejected),
            _ => shared.stats.value(idx).unwrap_or(0),
        };
        samples.push(OmSample::new(
            sanitize(name),
            match semantics {
                MetricSemantics::Counter => MetricKind::Counter,
                MetricSemantics::Instant => MetricKind::Gauge,
            },
            Value::Int(value),
        ));
    }
    for e in &export {
        samples.push(OmSample::new(
            sanitize(&format!("{}{}", selfmetrics::OBS_PREFIX, e.name)),
            match e.semantics {
                obs::metrics::ExportSemantics::Counter => MetricKind::Counter,
                obs::metrics::ExportSemantics::Instant => MetricKind::Gauge,
            },
            Value::Int(e.value),
        ));
    }
    obs::openmetrics::render(&samples, Some(scrape_ts_ns))
}

/// Mirror of the in-process daemon's fetch: nest values appear on each
/// socket's publisher CPU, other valid CPUs read zero, invalid instances
/// read `None`. Self-metrics accept any instance. `pmcd.obs.*` ids are
/// answered from `obs_snap`, a registry export taken at most once per
/// fetch batch so every obs value in a reply is from one coherent
/// snapshot.
fn fetch_one(
    shared: &Shared,
    id: u32,
    inst: u32,
    obs_snap: &mut Option<obs::Snapshot>,
) -> Option<u64> {
    if id >= OBS_METRIC_BASE {
        let snap = obs_snap.get_or_insert_with(|| shared.obs_snapshot(unix_ns()));
        return selfmetrics::obs_value_from(&snap.scalars, MetricId(id));
    }
    if id >= SELF_METRIC_BASE {
        return match (id - SELF_METRIC_BASE) as usize {
            QUEUE_DEPTH_IDX => Some(shared.queue.len() as u64),
            QUEUE_SHED_IDX => Some(peek(&shared.stats.clients_rejected)),
            idx => shared.stats.value(idx),
        };
    }
    let pmns = &shared.pmns;
    let desc = pmns.desc(MetricId(id))?;
    if !pmns.valid_instance(InstanceId(inst)) {
        return None;
    }
    match pmns.socket_of_instance(InstanceId(inst)) {
        Some(socket) => {
            let shared_sock = shared.sockets.get(socket)?;
            if shared.config.fetch_touch {
                shared_sock.measurement_touch();
            }
            Some(shared_sock.counters().channel(desc.channel, desc.direction))
        }
        None => Some(0),
    }
}

/// Wire encoding of [`MetricSemantics`]: 0 = counter, 1 = instant.
pub fn encode_semantics(s: MetricSemantics) -> u8 {
    match s {
        MetricSemantics::Counter => 0,
        MetricSemantics::Instant => 1,
    }
}

/// Inverse of [`encode_semantics`].
pub fn decode_semantics(v: u8) -> Option<MetricSemantics> {
    match v {
        0 => Some(MetricSemantics::Counter),
        1 => Some(MetricSemantics::Instant),
        _ => None,
    }
}

/// Wire encoding of [`Direction`]: 0 = read, 1 = write.
pub fn encode_direction(d: Direction) -> u8 {
    match d {
        Direction::Read => 0,
        Direction::Write => 1,
    }
}

/// Inverse of [`encode_direction`].
pub fn decode_direction(v: u8) -> Option<Direction> {
    match v {
        0 => Some(Direction::Read),
        1 => Some(Direction::Write),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p9_arch::Machine;
    use p9_memsim::SimMachine;

    fn start_server(config: WireConfig) -> (SimMachine, PmcdServer) {
        let m = SimMachine::quiet(Machine::summit(), 1);
        let pmns = Pmns::for_machine(m.arch());
        let sockets = (0..m.num_sockets()).map(|s| m.socket_shared(s)).collect();
        let server =
            PmcdServer::bind_system("127.0.0.1:0", pmns, sockets, config).expect("bind server");
        (m, server)
    }

    #[test]
    fn bind_requires_elevation() {
        let m = SimMachine::quiet(Machine::summit(), 1);
        let pmns = Pmns::for_machine(m.arch());
        let sockets = vec![m.socket_shared(0)];
        let err = PmcdServer::bind(
            "127.0.0.1:0",
            pmns,
            sockets,
            &PrivilegeToken::user(),
            WireConfig::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let (_m, mut server) = start_server(WireConfig::default());
        server.shutdown();
        server.shutdown(); // idempotent
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let (_m, server) = start_server(WireConfig {
            workers: 2,
            ..WireConfig::default()
        });
        drop(server); // must not hang
    }

    #[test]
    fn self_metric_table_indexes_are_stable() {
        // The histogram arithmetic in ServerStats::value depends on this
        // ordering; lock it down.
        assert_eq!(SELF_METRICS[0].0, "pmcd.pdu.in");
        assert_eq!(SELF_METRICS[6].0, "pmcd.fetch.count");
        assert_eq!(
            SELF_METRICS[LATENCY_BUCKET_IDX].0,
            "pmcd.fetch.latency_ns.lt_1024"
        );
        assert_eq!(SELF_METRICS[12].0, "pmcd.fetch.latency_ns.lt_16777216");
        assert_eq!(SELF_METRICS[QUEUE_DEPTH_IDX].0, "pmcd.queue.depth");
        assert_eq!(SELF_METRICS[QUEUE_SHED_IDX].0, "pmcd.queue.shed");
        assert_eq!(SELF_METRICS.len(), 15);
        // The wire table's bucket entries are the shared spec's, in order.
        for (i, (_, name)) in LATENCY_BUCKETS.iter().enumerate() {
            assert_eq!(SELF_METRICS[LATENCY_BUCKET_IDX + i].0, *name);
        }
    }

    #[test]
    fn latency_histogram_buckets_cumulate() {
        let stats = ServerStats::default();
        stats.record_fetch(Duration::from_nanos(900)); // < 1024
        stats.record_fetch(Duration::from_nanos(60_000)); // < 131072
        stats.record_fetch(Duration::from_millis(100)); // above all buckets
        assert_eq!(stats.value(8), Some(1)); // lt_1024
        assert_eq!(stats.value(9), Some(1)); // lt_16384 (cumulative)
        assert_eq!(stats.value(10), Some(2)); // lt_131072
        assert_eq!(stats.value(12), Some(2)); // lt_16777216
        assert_eq!(stats.value(6), Some(3)); // fetch.count = +inf
        assert_eq!(stats.value(7), Some(900 + 60_000 + 100_000_000));
        assert_eq!(stats.value(99), None);
        // The snapshot's distribution agrees with the scalar export.
        let snap = stats.snapshot();
        assert_eq!(snap.fetch_count, 3);
        assert_eq!(snap.fetch_latency.count(), 3);
        assert_eq!(snap.fetch_latency.count_below_pow2(17), 2);
    }
}
